"""Intel Attestation Service (IAS) simulator — the Fig. 4 baseline.

The traditional SGX attestation flow uploads each quote to Intel's
hosted service over the WAN and waits for a signed verification report.
The paper measures ~280 ms for this verification step and ~325 ms for
attestation end-to-end, versus <1 ms / ~17 ms with the local CAS.

Verification logic is identical to CAS's (:class:`AttestationVerifier`);
the difference — and the entire point — is the two WAN round trips
(submit + report retrieval) plus backend processing charged here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro._sim.clock import SimClock
from repro._sim.trace import EventTrace
from repro.crypto.ed25519 import Ed25519PublicKey
from repro.enclave.attestation import AttestationVerifier, Quote, Report
from repro.enclave.cost_model import CostModel
from repro.errors import AttestationError


@dataclass
class IasStats:
    requests: int = 0
    rejected: int = 0


class IntelAttestationService:
    """WAN-hosted quote verification."""

    def __init__(
        self,
        provisioning_root: Ed25519PublicKey,
        cost_model: CostModel,
        clock: SimClock,
        trace: Optional[EventTrace] = None,
    ) -> None:
        self._verifier = AttestationVerifier(provisioning_root)
        self._model = cost_model
        self._clock = clock
        self._trace = trace
        self.stats = IasStats()

    def verify_quote(self, quote: Quote, accept_debug: bool = False) -> Report:
        """Submit a quote for verification over the WAN.

        Charges: one WAN round trip to submit the quote and receive the
        attestation verification report, one further round trip for the
        report-signing certificate chain fetch (the EPID flow's second
        exchange), plus backend processing.
        """
        self.stats.requests += 1
        wan_time = 2 * self._model.wan_rtt + self._quote_transfer_time(quote)
        backend = self._model.ias_backend_cost + self._model.quote_verification_cost
        duration = wan_time + backend
        self._clock.advance(duration)
        if self._trace is not None:
            self._trace.record("ias.verification", duration)
        try:
            return self._verifier.verify(quote, accept_debug=accept_debug)
        except AttestationError:
            self.stats.rejected += 1
            raise

    def _quote_transfer_time(self, quote: Quote) -> float:
        return len(quote.to_bytes()) / self._model.wan_bandwidth
