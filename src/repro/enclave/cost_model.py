"""Calibrated cost model for the SGX + cluster simulation.

All constants that turn *work* (FLOPs, bytes, pages, messages) into
*simulated time* live here, in one dataclass, so that:

- benchmarks across figures share a single consistent machine model
  (the paper's Xeon E3-1280 v6 cluster, §5.1), and
- ablation benchmarks can perturb one constant at a time.

Calibration anchors (paper + public SGX literature):

- EPC usable capacity ≈ 93.5 MiB (paper repeats "~94MB" throughout).
- EPC page fault (EWB + ELDU, both with AES-CTR + MAC, plus kernel
  involvement) ≈ 12 µs per 4 KiB page — mid-range of the published
  ~12k-40k cycle figures at 3.9 GHz for the streaming patterns these
  workloads generate.
- Synchronous enclave transition ≈ 4 µs round-trip (~8k cycles×2);
  SCONE's asynchronous syscalls cost ≈ 1.3 µs effective (paper §3.3.3,
  SCONE OSDI'16).
- File-system shield cryptography at 4 GB/s (paper §5.3 #2 quotes the
  AES-NI figure directly).
- IAS quote verification needs WAN round trips: the paper measures
  ~280 ms for verification and ~325 ms end-to-end; CAS does the same
  verification locally in <1 ms and ~17 ms end-to-end (Fig. 4).
- Cluster: 3 nodes, 4 cores + HT at 3.9 GHz, 1 Gb/s network (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro._sim.units import Gbps, KiB, MiB, microseconds, milliseconds


@dataclass(frozen=True)
class CostModel:
    """Every latency/bandwidth constant used by the simulation."""

    # --- CPU compute -----------------------------------------------------
    #: Effective FLOP/s of one core running the full-TensorFlow interpreter.
    flops_per_second_full_tf: float = 9.0e9
    #: Effective FLOP/s of one core running the Lite interpreter (mobile-
    #: optimized interpreter, smaller dispatch overhead).
    flops_per_second_lite: float = 11.0e9
    #: Multiplicative efficiency loss per extra thread (contention).
    parallel_efficiency: float = 0.96
    #: Cores per node (E3-1280 v6: 4 cores, 8 hyperthreads).
    cores_per_node: int = 4
    hyperthreads_per_core: int = 2
    #: Hyperthreads add only fractional throughput.
    hyperthread_yield: float = 0.30

    # --- Memory ----------------------------------------------------------
    #: Native (unencrypted) memory bandwidth seen by one core.
    native_memory_bandwidth: float = 18.0e9
    #: Enclave memory bandwidth through the MEE (encrypt/decrypt + MAC).
    enclave_memory_bandwidth: float = 7.5e9
    #: Multiplier on in-enclave compute: MEE latency on LLC misses and
    #: the wider cache footprint slow even EPC-resident execution.
    enclave_compute_factor: float = 1.10
    page_size: int = 4 * KiB

    # --- EPC -------------------------------------------------------------
    epc_capacity_bytes: int = int(93.5 * MiB)
    #: Cost of one EPC page fault (EWB of a victim + ELDU of the target,
    #: including the kernel path; mid-range of published measurements for
    #: mostly-sequential streams — pathological random 4 KiB thrash is
    #: worse on real hardware).
    epc_page_fault_cost: float = 12.0 * microseconds
    #: Cost of EADD+EEXTEND per page at enclave build time (measurement).
    eadd_eextend_cost_per_page: float = 1.6 * microseconds
    #: Fixed enclave creation cost (ECREATE, EINIT, launch token).
    enclave_create_cost: float = 9.0 * milliseconds

    # --- Transitions and system calls -------------------------------------
    sync_transition_cost: float = 4.0 * microseconds
    async_syscall_cost: float = 1.3 * microseconds
    #: In-kernel service time of a typical syscall (native component).
    syscall_kernel_cost: float = 0.9 * microseconds
    #: Native trap entry/exit (syscall instruction + kernel prologue).
    syscall_trap_cost: float = 0.3 * microseconds
    #: Writing one request descriptor into the shared-memory submission
    #: ring (SCONE's lock-free queue: a cache-line store + doorbell).
    ring_slot_cost: float = 0.15 * microseconds
    #: How long an idle syscall-handler thread spins on the ring before
    #: going to sleep on a futex; waking it costs a real transition.
    handler_spin_time: float = 40.0 * microseconds
    #: User-level scheduler context switch between application threads.
    userlevel_switch_cost: float = 0.25 * microseconds
    #: OS-level thread context switch (native threading baseline).
    os_switch_cost: float = 2.2 * microseconds

    # --- libc flavours (relative compute factors, see Fig. 5 discussion) ---
    glibc_factor: float = 1.00
    musl_factor: float = 1.025
    scone_libc_factor: float = 1.015

    # --- Shields -----------------------------------------------------------
    #: AES-NI bulk throughput used by the file-system shield (paper: 4 GB/s).
    fs_shield_crypto_bandwidth: float = 4.0e9
    #: Per-chunk bookkeeping of the shield (metadata lookup + nonce mgmt).
    fs_shield_chunk_overhead: float = 0.8 * microseconds
    #: Network shield record protection throughput (AES-NI TLS records).
    net_shield_crypto_bandwidth: float = 2.2e9
    #: Per-record overhead of the network shield.
    net_shield_record_overhead: float = 1.8 * microseconds

    # --- Network -----------------------------------------------------------
    lan_bandwidth: float = Gbps(1.0)
    lan_rtt: float = 0.2 * milliseconds
    wan_rtt: float = 140.0 * milliseconds
    wan_bandwidth: float = Gbps(0.1)

    # --- Attestation --------------------------------------------------------
    #: EREPORT + quote signing inside the quoting enclave (EPID/ECDSA).
    quote_generation_cost: float = 8.5 * milliseconds
    #: Local verification of a quote signature (CAS path, Fig. 4: <1 ms).
    quote_verification_cost: float = 0.8 * milliseconds
    #: IAS backend processing per verification request (server side).
    ias_backend_cost: float = 2.0 * milliseconds
    #: Secret provisioning: TLS session establishment to the enclave plus
    #: key/cert generation and sealing (Fig. 4's "key transfer" block).
    secret_provisioning_cost: float = 5.5 * milliseconds

    # --- Container / orchestration ------------------------------------------
    container_start_cost: float = 380.0 * milliseconds
    container_stop_cost: float = 120.0 * milliseconds

    def effective_parallel_speedup(self, threads: int) -> float:
        """Throughput multiplier of ``threads`` on one node.

        Physical cores contribute fully (minus a contention factor that
        compounds with thread count); hyperthreads past the physical core
        count contribute :attr:`hyperthread_yield` each.
        """
        if threads < 1:
            raise ValueError(f"thread count must be positive: {threads}")
        physical = min(threads, self.cores_per_node)
        extra = min(
            max(threads - self.cores_per_node, 0),
            self.cores_per_node * (self.hyperthreads_per_core - 1),
        )
        raw = physical + extra * self.hyperthread_yield
        return raw * (self.parallel_efficiency ** max(threads - 1, 0))

    def with_overrides(self, **kwargs: object) -> "CostModel":
        """A copy of the model with some constants replaced (ablations)."""
        return replace(self, **kwargs)


#: The default machine model used by all benchmarks (paper's cluster).
DEFAULT_COST_MODEL = CostModel()
