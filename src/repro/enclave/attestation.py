"""Remote attestation: reports, quotes, and the provisioning chain.

Mirrors the SGX attestation architecture the paper builds on (§3.3.2):

- An enclave produces a **report**: its measurement (MRENCLAVE analogue
  — a real SHA-256 over the enclave image) plus 64 bytes of caller data
  (used to bind a TLS key to the attested enclave).
- The CPU's quoting facility signs the report with a per-CPU
  **attestation key**, yielding a **quote**.
- The attestation key is certified by a **provisioning authority** (the
  simulated Intel root), so any verifier holding the root's public key
  can check a quote offline — this is exactly what lets CAS verify
  quotes locally in <1 ms where IAS needs WAN round trips (Fig. 4).

All signatures here are real Ed25519; forged or tampered quotes fail
verification in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro._sim.rng import DeterministicRng
from repro.crypto import encoding
from repro.crypto.certs import Certificate, CertificateAuthority
from repro.crypto.ed25519 import Ed25519PrivateKey, Ed25519PublicKey
from repro.errors import AttestationError, IntegrityError


@dataclass(frozen=True)
class Report:
    """An enclave-signed statement of identity (EREPORT analogue)."""

    measurement: bytes
    attributes: Dict[str, str]
    report_data: bytes
    debug: bool = False

    def to_bytes(self) -> bytes:
        return encoding.encode(
            {
                "measurement": self.measurement,
                "attributes": dict(self.attributes),
                "report_data": self.report_data,
                "debug": self.debug,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Report":
        body = encoding.decode(data)
        try:
            return cls(
                measurement=body["measurement"],
                attributes=dict(body["attributes"]),
                report_data=body["report_data"],
                debug=bool(body["debug"]),
            )
        except (KeyError, TypeError) as exc:
            raise IntegrityError("malformed attestation report") from exc


@dataclass(frozen=True)
class Quote:
    """A CPU-signed report plus the CPU's attestation certificate."""

    report: Report
    cpu_id: str
    signature: bytes
    cpu_certificate: bytes  # serialized Certificate

    def to_bytes(self) -> bytes:
        return encoding.encode(
            {
                "report": self.report.to_bytes(),
                "cpu_id": self.cpu_id,
                "signature": self.signature,
                "cpu_certificate": self.cpu_certificate,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "Quote":
        body = encoding.decode(data)
        try:
            return cls(
                report=Report.from_bytes(body["report"]),
                cpu_id=body["cpu_id"],
                signature=body["signature"],
                cpu_certificate=body["cpu_certificate"],
            )
        except (KeyError, TypeError) as exc:
            raise IntegrityError("malformed attestation quote") from exc


class ProvisioningAuthority:
    """The simulated Intel provisioning root.

    Certifies per-CPU attestation keys at "manufacturing time".  Its
    public key is the universal trust anchor for quote verification.
    """

    def __init__(self, rng: DeterministicRng) -> None:
        self._ca = CertificateAuthority(
            "intel-provisioning-root",
            Ed25519PrivateKey.generate(rng.random_bytes(32)),
            validity_seconds=10 * 365 * 24 * 3600.0,
        )

    def certify_cpu(self, cpu_id: str, attestation_public: bytes) -> Certificate:
        """Issue the attestation-key certificate for one CPU."""
        return self._ca.issue(
            subject=f"cpu:{cpu_id}",
            ed25519_public=attestation_public,
            x25519_public=b"\x00" * 32,
            now=0.0,
            extensions={"role": "sgx-attestation-key"},
        )

    def public_key(self) -> Ed25519PublicKey:
        return self._ca.public_key()


class AttestationVerifier:
    """Offline quote verification against the provisioning root.

    Both CAS and the IAS simulator use this; they differ only in *where*
    it runs (local enclave vs WAN service), which is the whole point of
    Fig. 4.
    """

    def __init__(self, provisioning_root: Ed25519PublicKey, now: float = 0.0) -> None:
        self._root = provisioning_root
        self._now = now

    def verify(self, quote: Quote, accept_debug: bool = False) -> Report:
        """Check the provisioning chain and quote signature.

        Returns the verified report.  Raises
        :class:`~repro.errors.AttestationError` on any failure: bad CPU
        certificate, wrong signer, tampered report, or a debug-mode
        (simulation) quote when ``accept_debug`` is False.
        """
        try:
            cpu_cert = Certificate.from_bytes(quote.cpu_certificate)
        except IntegrityError as exc:
            raise AttestationError("quote carries a malformed CPU certificate") from exc
        if cpu_cert.subject != f"cpu:{quote.cpu_id}":
            raise AttestationError(
                f"CPU certificate subject {cpu_cert.subject!r} does not match "
                f"quote cpu_id {quote.cpu_id!r}"
            )
        try:
            cpu_cert.verify_signature(self._root)
        except IntegrityError as exc:
            raise AttestationError(
                "CPU attestation key is not certified by the provisioning root"
            ) from exc
        try:
            cpu_cert.signing_key().verify(quote.signature, quote.report.to_bytes())
        except IntegrityError as exc:
            raise AttestationError("quote signature verification failed") from exc
        if quote.report.debug and not accept_debug:
            raise AttestationError(
                "quote comes from a simulation-mode enclave (no hardware root of trust)"
            )
        return quote.report
