"""Mechanistic Intel SGX simulator.

The paper's entire performance story is driven by four SGX properties:

1. the ~94 MiB Enclave Page Cache (EPC) and the very expensive paging
   that starts once an enclave's working set exceeds it,
2. the Memory Encryption Engine's bandwidth penalty on enclave memory,
3. costly enclave transitions (ecall/ocall) on every system call,
4. measured launch (MRENCLAVE) + remote attestation via quotes.

This package models all four at page granularity with a calibrated cost
model.  Everything *protocol-shaped* is real: measurements are actual
SHA-256 digests of enclave contents, quotes are actual Ed25519
signatures chained to a simulated provisioning root, sealing is real
AEAD.  Only *time* is simulated, charged to a
:class:`~repro._sim.clock.SimClock`.
"""

from repro.enclave.cost_model import CostModel
from repro.enclave.epc import EpcCache, EpcStats
from repro.enclave.memory import EnclaveMemory, MemoryRegion
from repro.enclave.sgx import Enclave, EnclaveImage, SgxCpu, SgxMode
from repro.enclave.attestation import (
    AttestationVerifier,
    ProvisioningAuthority,
    Quote,
    Report,
)
from repro.enclave.ias import IntelAttestationService

__all__ = [
    "CostModel",
    "EpcCache",
    "EpcStats",
    "EnclaveMemory",
    "MemoryRegion",
    "Enclave",
    "EnclaveImage",
    "SgxCpu",
    "SgxMode",
    "Quote",
    "Report",
    "ProvisioningAuthority",
    "AttestationVerifier",
    "IntelAttestationService",
]
