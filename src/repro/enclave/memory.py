"""Enclave memory manager: regions, access charging, MEE bandwidth.

An enclave's address space is a set of named :class:`MemoryRegion`\\ s
(binary, model weights, heap, per-thread workspaces).  Workloads declare
*touches* — "read 4 MB starting at offset X of region R" — and the
manager converts them into (a) EPC granule accesses, which may fault and
charge paging time, and (b) memory-bandwidth time through the Memory
Encryption Engine.  Outside HW mode there is no EPC and bandwidth is
native, so the same workload code runs in all three modes (NATIVE / SIM
/ HW) and the mode differences emerge from this one chokepoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro._sim.clock import SimClock
from repro.enclave.cost_model import CostModel
from repro.enclave.epc import EpcCache
from repro.errors import EnclaveError


@dataclass(frozen=True)
class MemoryRegion:
    """A contiguous named slice of an enclave's address space."""

    name: str
    base: int
    size: int
    kind: str = "data"  # "code" | "data" | "heap" | "stack"

    @property
    def end(self) -> int:
        return self.base + self.size


class EnclaveMemory:
    """Per-enclave view of memory with cost accounting."""

    def __init__(
        self,
        enclave_id: int,
        cost_model: CostModel,
        clock: SimClock,
        epc: Optional[EpcCache] = None,
        granule_align: int = 64 * 1024,
    ) -> None:
        self._enclave_id = enclave_id
        self._model = cost_model
        self._clock = clock
        self._epc = epc
        self._align = granule_align
        self._regions: Dict[str, MemoryRegion] = {}
        self._next_base = 0
        self.bytes_touched = 0
        self.bandwidth_time = 0.0

    @property
    def encrypted(self) -> bool:
        """True when memory traffic goes through the MEE (HW mode)."""
        return self._epc is not None

    @property
    def regions(self) -> Dict[str, MemoryRegion]:
        return dict(self._regions)

    @property
    def footprint(self) -> int:
        """Total bytes allocated across live regions."""
        return sum(region.size for region in self._regions.values())

    def alloc(self, name: str, size: int, kind: str = "data") -> MemoryRegion:
        """Allocate a named region (granule-aligned base)."""
        if name in self._regions:
            raise EnclaveError(f"region {name!r} already allocated")
        if size <= 0:
            raise EnclaveError(f"region {name!r} must have positive size: {size}")
        base = self._next_base
        aligned_size = -(-size // self._align) * self._align
        self._next_base += aligned_size
        region = MemoryRegion(name=name, base=base, size=size, kind=kind)
        self._regions[name] = region
        return region

    def free(self, name: str) -> None:
        """Free a region.  Its granules stay in the EPC until evicted,
        exactly as freed-but-not-EREMOVEd pages do on real hardware."""
        if name not in self._regions:
            raise EnclaveError(f"region {name!r} is not allocated")
        del self._regions[name]

    def region(self, name: str) -> MemoryRegion:
        if name not in self._regions:
            raise EnclaveError(f"region {name!r} is not allocated")
        return self._regions[name]

    def touch(
        self,
        name: str,
        offset: int = 0,
        n_bytes: Optional[int] = None,
        bandwidth: bool = True,
    ) -> int:
        """Charge a sequential access of ``n_bytes`` at ``offset`` in region.

        ``bandwidth=False`` models accesses that hit on-core caches in
        steady state (hot code paths): no DRAM bandwidth is charged, but
        the granules still occupy — and may fault in — the EPC, because
        SGX's protection is at page granularity regardless of the cache
        hierarchy.  Returns the number of EPC granule faults (0 outside
        HW mode).
        """
        region = self.region(name)
        if n_bytes is None:
            n_bytes = region.size - offset
        if offset < 0 or offset + n_bytes > region.size:
            raise EnclaveError(
                f"touch [{offset}, {offset + n_bytes}) outside region "
                f"{name!r} of size {region.size}"
            )
        if n_bytes == 0:
            return 0

        if bandwidth:
            rate = (
                self._model.enclave_memory_bandwidth
                if self.encrypted
                else self._model.native_memory_bandwidth
            )
            duration = n_bytes / rate
            self._clock.advance(duration)
            self.bandwidth_time += duration
        self.bytes_touched += n_bytes

        if self._epc is None:
            return 0
        return self._epc.access_range(self._enclave_id, region.base + offset, n_bytes)

    def touch_window(
        self,
        name: str,
        cursor: int,
        n_bytes: int,
        bandwidth: bool = True,
    ) -> "Tuple[int, int]":
        """Touch ``n_bytes`` starting at ``cursor``, wrapping around.

        Returns ``(faults, new_cursor)``.  Used by the execution engine
        to interleave walks over several regions the way real per-op
        execution interleaves code, weights, and activations — the cache
        behaviour under interleaving differs fundamentally from doing one
        region at a time.
        """
        region = self.region(name)
        if n_bytes <= 0:
            return 0, cursor
        faults = 0
        remaining = n_bytes
        cursor %= region.size
        while remaining > 0:
            chunk = min(remaining, region.size - cursor)
            faults += self.touch(name, cursor, chunk, bandwidth=bandwidth)
            cursor = (cursor + chunk) % region.size
            remaining -= chunk
        return faults, cursor

    def touch_cyclic(
        self,
        name: str,
        traffic_bytes: int,
        bandwidth: bool = True,
    ) -> int:
        """Charge ``traffic_bytes`` of accesses cycling over a whole region.

        Models a working set being streamed repeatedly (weights per
        inference, hot code per op): full sequential passes plus a
        remainder.  Returns total EPC granule faults.
        """
        region = self.region(name)
        if traffic_bytes <= 0:
            return 0
        faults = 0
        full_passes, remainder = divmod(traffic_bytes, region.size)
        for _ in range(full_passes):
            faults += self.touch(name, 0, region.size, bandwidth=bandwidth)
        if remainder:
            faults += self.touch(name, 0, remainder, bandwidth=bandwidth)
        return faults

    def charge_bytes(self, n_bytes: int) -> None:
        """Charge bandwidth for anonymous traffic (no specific region).

        Used for transient scratch traffic that never develops a resident
        working set (e.g. streaming through a small ring buffer).
        """
        if n_bytes <= 0:
            return
        bandwidth = (
            self._model.enclave_memory_bandwidth
            if self.encrypted
            else self._model.native_memory_bandwidth
        )
        duration = n_bytes / bandwidth
        self._clock.advance(duration)
        self.bandwidth_time += duration
        self.bytes_touched += n_bytes
