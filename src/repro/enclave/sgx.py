"""Enclave lifecycle: CPUs, images, measurement, sealing, transitions.

An :class:`SgxCpu` models one physical processor: it owns the EPC shared
by all of its enclaves, a hardware attestation key certified by the
provisioning authority, and a sealing root key.  :class:`Enclave` models
one measured enclave instance built from an :class:`EnclaveImage`.

Measurement is real: MRENCLAVE is a SHA-256 over the canonical encoding
of all image segments (EADD/EEXTEND analogue), so two images differing
in a single byte of code or configuration produce different measurements
and fail attestation policies — tests rely on this.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._sim.clock import SimClock
from repro._sim.rng import DeterministicRng
from repro.crypto import encoding
from repro.crypto.aead import AeadKey
from repro.crypto.ed25519 import Ed25519PrivateKey
from repro.crypto.kdf import hkdf
from repro.enclave.attestation import ProvisioningAuthority, Quote, Report
from repro.enclave.cost_model import CostModel
from repro.enclave.epc import EpcCache
from repro.enclave.memory import EnclaveMemory
from repro.errors import EnclaveError


class SgxMode(enum.Enum):
    """Execution modes evaluated throughout the paper (§5.1)."""

    NATIVE = "native"  # no SCONE, no SGX — plain process
    SIM = "sim"        # SCONE runtime in simulation mode (no SGX hardware)
    HW = "hw"          # SCONE runtime inside a hardware enclave

    @property
    def in_enclave(self) -> bool:
        return self is SgxMode.HW


@dataclass(frozen=True)
class Segment:
    """One measured segment of an enclave image.

    ``digest`` is the SHA-256 of the segment's real content.  ``size``
    may exceed ``len(content)`` for *declared-size* segments, which model
    the paper's large binaries/models without materializing the bytes —
    the measurement then covers (name, declared size, content digest),
    so any content change still changes MRENCLAVE.
    """

    name: str
    size: int
    digest: bytes
    kind: str = "data"  # "code" | "data"

    @classmethod
    def from_content(cls, name: str, content: bytes, kind: str = "data") -> "Segment":
        return cls(name=name, size=len(content), digest=hashlib.sha256(content).digest(), kind=kind)

    @classmethod
    def declared(
        cls, name: str, size: int, identity: bytes, kind: str = "data"
    ) -> "Segment":
        """A segment of declared ``size`` whose content is identified by
        ``identity`` (e.g. the hash of a model file)."""
        return cls(name=name, size=size, digest=hashlib.sha256(identity).digest(), kind=kind)


@dataclass(frozen=True)
class EnclaveImage:
    """A measured enclave image (binary + static data + configuration)."""

    name: str
    segments: List[Segment] = field(default_factory=list)
    heap_size: int = 64 * 1024 * 1024
    max_threads: int = 8

    def measurement(self) -> bytes:
        """MRENCLAVE analogue: SHA-256 over all segment descriptors."""
        payload = encoding.encode(
            {
                "name": self.name,
                "heap_size": self.heap_size,
                "max_threads": self.max_threads,
                "segments": [
                    {
                        "name": s.name,
                        "size": s.size,
                        "digest": s.digest,
                        "kind": s.kind,
                    }
                    for s in self.segments
                ],
            }
        )
        return hashlib.sha256(payload).digest()

    @property
    def static_size(self) -> int:
        return sum(segment.size for segment in self.segments)


class SgxCpu:
    """One physical CPU package: EPC, attestation key, sealing root."""

    def __init__(
        self,
        cpu_id: str,
        cost_model: CostModel,
        clock: SimClock,
        provisioning: ProvisioningAuthority,
        rng: DeterministicRng,
        epc_capacity_bytes: Optional[int] = None,
        epc_policy: str = "random",
    ) -> None:
        self.cpu_id = cpu_id
        self.cost_model = cost_model
        self.clock = clock
        self.epc = EpcCache(
            cost_model,
            clock,
            capacity_bytes=epc_capacity_bytes,
            policy=epc_policy,
            seed=rng.randint(0, 2**31),
        )
        self._attestation_key = Ed25519PrivateKey.generate(rng.random_bytes(32))
        self._attestation_cert = provisioning.certify_cpu(
            cpu_id, self._attestation_key.public_key().public_bytes()
        )
        self._sealing_root = rng.random_bytes(32)
        self._next_enclave_id = 1
        self._enclaves: Dict[int, "Enclave"] = {}
        self.transitions = 0
        self.ring_submissions = 0

    def create_enclave(self, image: EnclaveImage, mode: SgxMode) -> "Enclave":
        """Build, measure, and initialize an enclave from ``image``.

        In HW mode this charges ECREATE/EINIT plus EADD+EEXTEND for every
        page of the static image — which is why large images (Graphene's
        libOS, the full TensorFlow binary) pay a visible startup cost.
        """
        if mode is SgxMode.NATIVE:
            raise EnclaveError("NATIVE mode runs no enclave; do not create one")
        enclave_id = self._next_enclave_id
        self._next_enclave_id += 1

        if mode is SgxMode.HW:
            pages = -(-image.static_size // self.cost_model.page_size)
            self.clock.advance(
                self.cost_model.enclave_create_cost
                + pages * self.cost_model.eadd_eextend_cost_per_page
            )
            memory = EnclaveMemory(
                enclave_id, self.cost_model, self.clock, epc=self.epc
            )
        else:
            memory = EnclaveMemory(enclave_id, self.cost_model, self.clock, epc=None)

        for segment in image.segments:
            memory.alloc(segment.name, segment.size, kind=segment.kind)
        memory.alloc("heap", image.heap_size, kind="heap")

        enclave = Enclave(
            enclave_id=enclave_id,
            image=image,
            mode=mode,
            cpu=self,
            memory=memory,
        )
        self._enclaves[enclave_id] = enclave
        return enclave

    def destroy_enclave(self, enclave: "Enclave") -> None:
        self.epc.evict_enclave(enclave.enclave_id)
        self._enclaves.pop(enclave.enclave_id, None)

    def transition(self, asynchronous: bool = False) -> None:
        """Charge one enclave boundary crossing (ecall/ocall round trip)."""
        self.transitions += 1
        cost = (
            self.cost_model.async_syscall_cost
            if asynchronous
            else self.cost_model.sync_transition_cost
        )
        self.clock.advance(cost)

    def ring_submit(self, count: int = 1) -> None:
        """Charge writing ``count`` request slots into the shared-memory
        submission ring — an exit-less store into untrusted memory, *not*
        an enclave transition (SCONE §3.3.3's whole point)."""
        self.ring_submissions += count
        self.clock.advance(count * self.cost_model.ring_slot_cost)

    def sign_quote(self, report: Report) -> Quote:
        """Quoting-enclave analogue: sign a report with the CPU key."""
        self.clock.advance(self.cost_model.quote_generation_cost)
        signature = self._attestation_key.sign(report.to_bytes())
        return Quote(
            report=report,
            cpu_id=self.cpu_id,
            signature=signature,
            cpu_certificate=self._attestation_cert.to_bytes(),
        )

    def sealing_key(self, measurement: bytes) -> bytes:
        """MRENCLAVE-policy sealing key: CPU root × enclave measurement."""
        return hkdf(
            salt=measurement, ikm=self._sealing_root, info=b"sgx-seal", length=32
        )


class Enclave:
    """A measured enclave instance running on one CPU."""

    def __init__(
        self,
        enclave_id: int,
        image: EnclaveImage,
        mode: SgxMode,
        cpu: SgxCpu,
        memory: EnclaveMemory,
    ) -> None:
        self.enclave_id = enclave_id
        self.image = image
        self.mode = mode
        self.cpu = cpu
        self.memory = memory
        self._measurement = image.measurement()
        self._destroyed = False

    @property
    def measurement(self) -> bytes:
        return self._measurement

    @property
    def alive(self) -> bool:
        return not self._destroyed

    def _check_alive(self) -> None:
        if self._destroyed:
            raise EnclaveError(f"enclave {self.image.name!r} has been destroyed")

    def create_report(self, report_data: bytes = b"") -> Report:
        """EREPORT analogue; ``report_data`` binds caller data (≤64 B)."""
        self._check_alive()
        if len(report_data) > 64:
            raise EnclaveError(f"report data limited to 64 bytes, got {len(report_data)}")
        return Report(
            measurement=self._measurement,
            attributes={"name": self.image.name, "mode": self.mode.value},
            report_data=report_data,
            debug=(self.mode is not SgxMode.HW),
        )

    def get_quote(self, report_data: bytes = b"") -> Quote:
        """Produce a CPU-signed quote over this enclave's report."""
        self._check_alive()
        return self.cpu.sign_quote(self.create_report(report_data))

    def seal(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Seal data to this enclave identity (survives restarts on the
        same CPU with the same measurement, like SGX sealing)."""
        self._check_alive()
        key = AeadKey("chacha20-poly1305", self.cpu.sealing_key(self._measurement))
        return key.seal(plaintext, aad)

    def unseal(self, sealed: bytes, aad: bytes = b"") -> bytes:
        self._check_alive()
        key = AeadKey("chacha20-poly1305", self.cpu.sealing_key(self._measurement))
        return key.open(sealed, aad)

    def destroy(self) -> None:
        if not self._destroyed:
            self._destroyed = True
            self.cpu.destroy_enclave(self)

    def __repr__(self) -> str:
        return (
            f"Enclave(id={self.enclave_id}, image={self.image.name!r}, "
            f"mode={self.mode.value}, footprint={self.memory.footprint})"
        )
