"""The Enclave Page Cache (EPC) simulator.

The EPC is a fixed hardware pool of encrypted pages shared by *all*
enclaves on a CPU.  When an enclave touches a page that is not resident,
the kernel evicts a victim (EWB: encrypt + MAC + write to DRAM) and
loads the target (ELDU: read + decrypt + verify) — tens of microseconds
per 4 KiB page.  This is the single mechanism behind the paper's
headline effects: Fig. 5's Graphene gap, Fig. 7's 4→8 core collapse,
Fig. 8's 14× training slowdown, and the 71× TensorFlow-vs-Lite gap.

Two modelling choices, both deliberate:

- **Granularity.**  Residency is tracked in *granules* (default 64 KiB
  = 16 pages) rather than single pages, because a pure-Python 4 KiB LRU
  would dominate benchmark runtime.  A granule fault is charged as the
  faults of all its constituent pages — byte-exact for the sequential
  region walks ML workloads generate.

- **Replacement policy.**  Default is *random* replacement.  Strict LRU
  has a cliff under cyclic scans (miss rate jumps from 0 to 100 % the
  moment the working set exceeds capacity), which contradicts both
  measured SGX behaviour (the kernel uses an approximate second-chance
  over a sampled set) and the paper's graceful degradation across Figs
  5–8.  Random replacement yields the smooth ``1 - capacity/workingset``
  miss curve.  LRU remains available for ablations.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._sim import probe
from repro._sim.clock import SimClock
from repro._sim.units import KiB
from repro.enclave.cost_model import CostModel
from repro.errors import ConfigurationError, EnclaveError

GranuleKey = Tuple[int, int]  # (enclave id, granule index)

#: Default residency-tracking granule (16 × 4 KiB pages).
DEFAULT_GRANULE_SIZE = 64 * KiB


@dataclass
class EpcStats:
    """Counters exposed for assertions and benchmark breakdowns.

    ``hits``/``faults`` count granules; ``fault_pages`` counts the
    underlying 4 KiB pages actually charged.
    """

    hits: int = 0
    faults: int = 0
    evictions: int = 0
    cold_loads: int = 0
    fault_pages: int = 0
    fault_time: float = 0.0
    per_enclave_resident: Dict[int, int] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.hits + self.faults

    @property
    def fault_rate(self) -> float:
        return self.faults / self.accesses if self.accesses else 0.0


class EpcCache:
    """Replacement-policy model of the EPC shared by all enclaves on a CPU."""

    def __init__(
        self,
        cost_model: CostModel,
        clock: SimClock,
        capacity_bytes: Optional[int] = None,
        granule_size: int = DEFAULT_GRANULE_SIZE,
        policy: str = "random",
        seed: int = 0,
    ) -> None:
        if granule_size % cost_model.page_size != 0:
            raise EnclaveError(
                f"granule size {granule_size} must be a multiple of the "
                f"page size {cost_model.page_size}"
            )
        if policy not in ("random", "lru"):
            raise ConfigurationError(f"unknown EPC policy {policy!r}")
        self._model = cost_model
        self._clock = clock
        self.policy = policy
        self.granule_size = granule_size
        self._pages_per_granule = granule_size // cost_model.page_size
        capacity = (
            capacity_bytes
            if capacity_bytes is not None
            else cost_model.epc_capacity_bytes
        )
        if capacity <= 0:
            raise EnclaveError(f"EPC capacity must be positive: {capacity}")
        self._capacity_granules = max(1, capacity // granule_size)
        self._granule_fault_cost = (
            cost_model.epc_page_fault_cost * self._pages_per_granule
        )
        # LRU state: ordered dict.  Random state: dict -> slot + slot list.
        self._lru: "OrderedDict[GranuleKey, None]" = OrderedDict()
        self._slots: List[GranuleKey] = []
        self._slot_of: Dict[GranuleKey, int] = {}
        self._rng = random.Random(seed)
        self._ever_loaded: set = set()
        self.stats = EpcStats()

    @property
    def capacity_granules(self) -> int:
        return self._capacity_granules

    @property
    def capacity_bytes(self) -> int:
        return self._capacity_granules * self.granule_size

    @property
    def resident_granules(self) -> int:
        return len(self._lru) if self.policy == "lru" else len(self._slots)

    def resident_granules_of(self, enclave_id: int) -> int:
        return self.stats.per_enclave_resident.get(enclave_id, 0)

    def access(self, enclave_id: int, granule_index: int) -> bool:
        """Touch one granule; returns True on a fault (cost charged)."""
        key = (enclave_id, granule_index)
        if self.policy == "lru":
            if key in self._lru:
                self._lru.move_to_end(key)
                self.stats.hits += 1
                return False
            if len(self._lru) >= self._capacity_granules:
                victim, _ = self._lru.popitem(last=False)
                self._evicted(victim)
            self._lru[key] = None
        else:
            if key in self._slot_of:
                self.stats.hits += 1
                return False
            if len(self._slots) >= self._capacity_granules:
                slot = self._rng.randrange(len(self._slots))
                victim = self._slots[slot]
                last = self._slots[-1]
                self._slots[slot] = last
                self._slot_of[last] = slot
                self._slots.pop()
                del self._slot_of[victim]
                self._evicted(victim)
            self._slot_of[key] = len(self._slots)
            self._slots.append(key)

        self._inc_resident(enclave_id)
        self.stats.faults += 1
        self.stats.fault_pages += self._pages_per_granule
        if key not in self._ever_loaded:
            self._ever_loaded.add(key)
            self.stats.cold_loads += 1
        cost = self._granule_fault_cost
        self.stats.fault_time += cost
        self._clock.advance(cost)
        if probe.ACTIVE is not None:
            probe.ACTIVE.charge(
                self._clock, "epc_faults", cost, histogram="epc.fault_service"
            )
        return True

    def access_range(self, enclave_id: int, first_byte: int, n_bytes: int) -> int:
        """Touch a contiguous byte range; returns the number of granule faults."""
        if n_bytes < 0:
            raise EnclaveError(f"negative byte count: {n_bytes}")
        if n_bytes == 0:
            return 0
        first = first_byte // self.granule_size
        last = (first_byte + n_bytes - 1) // self.granule_size
        faults = 0
        for granule in range(first, last + 1):
            if self.access(enclave_id, granule):
                faults += 1
        return faults

    def evict_enclave(self, enclave_id: int) -> int:
        """Drop all granules of a destroyed enclave; returns granules freed."""
        if self.policy == "lru":
            keys = [key for key in self._lru if key[0] == enclave_id]
            for key in keys:
                del self._lru[key]
        else:
            keys = [key for key in self._slots if key[0] == enclave_id]
            for key in keys:
                slot = self._slot_of[key]
                last = self._slots[-1]
                self._slots[slot] = last
                self._slot_of[last] = slot
                self._slots.pop()
                del self._slot_of[key]
        self.stats.per_enclave_resident.pop(enclave_id, None)
        return len(keys)

    def _evicted(self, victim: GranuleKey) -> None:
        self.stats.evictions += 1
        self._dec_resident(victim[0])

    def _inc_resident(self, enclave_id: int) -> None:
        counts = self.stats.per_enclave_resident
        counts[enclave_id] = counts.get(enclave_id, 0) + 1

    def _dec_resident(self, enclave_id: int) -> None:
        counts = self.stats.per_enclave_resident
        counts[enclave_id] -= 1
        if counts[enclave_id] == 0:
            del counts[enclave_id]
