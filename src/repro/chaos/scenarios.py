"""Leader-handoff scenario families, replayed under fault schedules.

Each family drives one of the platform's leader-shaped protocols over
the real event-heap network with a schedule's faults injected, records
a :class:`~repro.chaos.history.History` of what clients observed and
what acceptors did, and checks the family's invariant set:

``cas-failover``
    A replicated CAS pair sharing one monotonic-counter service.  The
    schedule loses the primary *between sealing and acknowledging* a
    snapshot — the in-flight seal race.  Without fencing, the zombie's
    late counter bump either double-issues a counter value or orphans
    the new primary's acknowledged snapshots (rollback-detection
    ambiguity); with fencing, the shared counter's guard and the
    standby's replication guard reject the stale epoch.

``ps-restart``
    A parameter server checkpointing to a durable store shared with
    its replacement (same ``store_key``, new pod address).  A zombie PS
    that a straggler worker still reaches overwrites the replacement's
    checkpoints, destroying acknowledged pushes — unless the store's
    epoch guard refuses the stale save.

``router-handoff``
    A serving front end dispatching stamped requests to replicas.  The
    superseded router retries an in-flight request after the handoff;
    without fencing the retry executes a second time on a replica the
    first execution never reached, breaking at-most-once.

``sharded-ps``
    Two weight shards sharing one durable checkpoint store, plus the
    cross-shard commit barrier (an atomic version vector spanning both
    shards' snapshot slots).  Shard 0 is lost mid-round; a straggler
    worker still pushes to the zombie shard *and* the superseded
    barrier coordinator retries its in-flight ``commit_vector`` after
    the heal.  Without fencing the zombie clobbers its replacement's
    checkpoint lineage and appends a stale barrier vector; with
    fencing the store's per-shard-key guards veto both.

Scenarios are **deterministic**: all randomness flows from the
schedule's identity-derived seed, so a schedule replays byte-identically
(the campaign asserts this for every schedule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro._sim.clock import SimClock
from repro._sim.rng import DeterministicRng
from repro._sim.scheduler import Scheduler
from repro.cas.failover import CAS_PRIMARY_ROLE, ReplicatedCasPair
from repro.cas.secrets_db import HardwareCounter
from repro.cas.service import CasService
from repro.chaos.history import History
from repro.chaos.invariants import check
from repro.chaos.schedule import FaultSchedule
from repro.cluster.epoch import EpochService
from repro.cluster.faults import FaultPlan, FaultSpec, TransientPartition
from repro.cluster.network import Network
from repro.cluster.node import make_cluster
from repro.cluster.parameter_server import InMemoryCheckpointStore, ParameterServer
from repro.cluster.retry import RetryPolicy
from repro.cluster.rpc import RpcClient
from repro.crypto import encoding
from repro.enclave.attestation import ProvisioningAuthority
from repro.enclave.cost_model import DEFAULT_COST_MODEL
from repro.errors import (
    FencedError,
    FencingError,
    FreshnessError,
    RpcError,
)
from repro.serving import messages
from repro.tensor.arrays import encode_array_dict

PS_ROLE = "ps"
ROUTER_ROLE = "router"
#: Sharded-PS family: one leadership role per weight shard, plus a
#: coordinator role for the cross-shard commit barrier.
SHARD_ROLES = ("ps-shard-0", "ps-shard-1")
BARRIER_ROLE = "ps-barrier"

#: Simulated seconds a transient partition stays up.
PARTITION_WINDOW = 2.0

#: Delivery-duplication probability during a duplicate storm.
STORM_DUPLICATION = 0.35


@dataclass
class ScenarioRun:
    """One schedule executed once under one fencing setting."""

    schedule: FaultSchedule
    fencing: bool
    history: History
    violations: Tuple[str, ...]
    trace: bytes


#: Invariants each family's history is checked against.
FAMILY_INVARIANTS: Dict[str, Tuple[str, ...]] = {
    "cas-failover": (
        "no-acked-write-loss",
        "at-most-once",
        "single-writer-per-epoch",
        "unique-counter-issue",
        "admitted-equals-terminal",
    ),
    "ps-restart": (
        "no-acked-write-loss",
        "at-most-once",
        "single-writer-per-epoch",
        "admitted-equals-terminal",
    ),
    "router-handoff": (
        "at-most-once",
        "single-writer-per-epoch",
        "admitted-equals-terminal",
    ),
    "sharded-ps": (
        "no-acked-write-loss",
        "at-most-once",
        "single-writer-per-epoch",
        "admitted-equals-terminal",
    ),
}


def _storm_spec(schedule: FaultSchedule, targets: Tuple[str, ...]) -> FaultSpec:
    if not schedule.duplicate_storm:
        return FaultSpec()
    return FaultSpec(duplication=STORM_DUPLICATION, targets=frozenset(targets))


def _finish(
    schedule: FaultSchedule,
    fencing: bool,
    history: History,
    plan: FaultPlan,
    epochs: Optional[EpochService],
) -> ScenarioRun:
    """Check the family's invariants and assemble the canonical trace."""
    violations = tuple(check(history, FAMILY_INVARIANTS[schedule.family]))
    sections = [history.trace_bytes(), b"[faults]", plan.trace_bytes()]
    if epochs is not None:
        sections.extend([b"[epochs]", epochs.trace_bytes()])
    return ScenarioRun(
        schedule=schedule,
        fencing=fencing,
        history=history,
        violations=violations,
        trace=b"\n".join(sections),
    )


# ----------------------------------------------------------------------
# Family 1: CAS failover racing an in-flight seal
# ----------------------------------------------------------------------

def _run_cas_failover(schedule: FaultSchedule, fencing: bool) -> ScenarioRun:
    history = History()
    scheduler = Scheduler()
    rng = DeterministicRng(schedule.seed, label="chaos-cas")
    provisioning = ProvisioningAuthority(rng.child("intel"))
    nodes = make_cluster(
        2, DEFAULT_COST_MODEL, provisioning, seed=schedule.seed, scheduler=scheduler
    )
    network = Network(DEFAULT_COST_MODEL, scheduler=scheduler)
    # The pair shares one monotonic-counter *service* (rollback
    # protection across failover requires both instances to bind
    # snapshots to the same counter) — which is exactly the shared
    # acceptor the in-flight seal race contends on.
    shared_counter = HardwareCounter()
    primary = CasService(
        nodes[0], provisioning.public_key(), counter=shared_counter
    )
    backup = CasService(
        nodes[1], provisioning.public_key(), counter=shared_counter
    )
    epochs = EpochService() if fencing else None
    pair = ReplicatedCasPair(network, primary, backup, epochs=epochs)
    pair.attach_probe(nodes[1])
    repl_client_address = pair._repl_client.address

    plan = FaultPlan(
        schedule.seed, spec=_storm_spec(schedule, (pair.backup_address,))
    )
    network.faults.append(plan.inject)

    # Record standby-side applications (after the RPC dedup window, so
    # storm-duplicated deliveries that replay a cached ack don't count).
    orig_repl_audit = pair._handle_repl_audit

    def wrapped_repl_audit(payload: bytes, peer) -> bytes:
        out = orig_repl_audit(payload, peer)
        body = encoding.decode(payload)
        history.record(
            "execute",
            "cas-backup",
            f"repl/{body['path']}",
            time=nodes[1].clock.now,
        )
        return out

    pair._backup_server.register("repl_audit", wrapped_repl_audit)

    history.record("promote", "cas", CAS_PRIMARY_ROLE)

    def seal_commit(cas: CasService, actor: str) -> None:
        """Seal + acknowledge on the shared counter (the commit point)."""
        claimed = cas.counter.value + 1
        cas.db.export_sealed()
        version = cas.db.acknowledge_persisted()
        epoch = cas.lease.epoch if cas.lease is not None else None
        history.record(
            "commit",
            actor,
            f"seal/{version}",
            time=cas.node.clock.now,
            epoch=epoch,
            role=CAS_PRIMARY_ROLE,
        )
        history.record(
            "issue", actor, str(claimed), time=cas.node.clock.now,
            role=CAS_PRIMARY_ROLE,
        )

    def replicated_write(cas: CasService, actor: str, key: str) -> None:
        """One acked write on the replicated audit channel + a seal."""
        history.record("admit", actor, key, time=cas.node.clock.now)
        cas.audit.commit("owner", key, 1, key.encode())
        epoch = cas.lease.epoch if cas.lease is not None else None
        history.record(
            "commit", actor, f"repl/{key}", time=cas.node.clock.now,
            epoch=epoch, role=CAS_PRIMARY_ROLE,
        )
        seal_commit(cas, actor)
        history.record("ack", actor, key, time=cas.node.clock.now)
        history.record("terminal", actor, key, time=cas.node.clock.now)

    def local_write(cas: CasService, actor: str, key: str) -> None:
        """A single-instance write (post-failover: no standby left)."""
        history.record("admit", actor, key, time=cas.node.clock.now)
        cas.db.put(key, key.encode())
        seal_commit(cas, actor)
        history.record("ack", actor, key, time=cas.node.clock.now)
        history.record("terminal", actor, key, time=cas.node.clock.now)

    step = schedule.crash_step
    for i in range(step):
        replicated_write(primary, "cas", f"op{i}")

    # The in-flight write: the primary seals (claiming the next counter
    # value) and is lost before it can acknowledge — the seal race.
    inflight_key = f"op{step}"
    zombie_claimed = shared_counter.value + 1
    primary.db.put(inflight_key, inflight_key.encode())
    primary.db.export_sealed()
    history.record("admit", "cas", inflight_key, time=nodes[0].clock.now)

    t0 = max(nodes[0].clock.now, nodes[1].clock.now)
    if schedule.is_crash:
        pair.fail_primary()
    else:
        direction = schedule.partition_direction
        # Partition the primary: its public address and its replication
        # client's address are both legs of the same node.
        for address in ("cas", repl_client_address):
            plan.partitions.append(
                TransientPartition(
                    address, t0, t0 + PARTITION_WINDOW, direction=direction
                )
            )
        try:
            # The zombie still tries to replicate the in-flight write.
            primary.audit.commit(
                "owner", inflight_key, 1, inflight_key.encode()
            )
        except RpcError:
            pass
    history.record("terminal", "cas", inflight_key, value="gave-up")

    # Control plane: the watchdog's RPC probe fails, promotion follows
    # (fence-first when an epoch authority is attached).
    if not pair.probe():
        pair.promote()
    history.record("promote", "cas-backup", CAS_PRIMARY_ROLE)

    def zombie_acknowledge() -> None:
        """The zombie completes its in-flight seal's counter bump."""
        try:
            version = shared_counter.increment(
                primary.lease.epoch if primary.lease is not None else None
            )
        except FencedError:
            history.record(
                "fenced", "cas", f"seal/{zombie_claimed}",
                time=nodes[0].clock.now,
            )
            return
        history.record(
            "commit", "cas", f"seal/{version}", time=nodes[0].clock.now,
            epoch=primary.lease.epoch if primary.lease is not None else None,
            role=CAS_PRIMARY_ROLE,
        )
        history.record(
            "issue", "cas", str(zombie_claimed), time=nodes[0].clock.now,
            role=CAS_PRIMARY_ROLE,
        )

    zombie_alive = not schedule.is_crash
    # Odd steps interleave the zombie's acknowledgement *between* the new
    # primary's first export and its acknowledgement — the tightest
    # double-issue race; even steps run it after the new primary's
    # writes — the lineage-orphaning race.
    interleave = zombie_alive and step % 2 == 1

    first_post_key = f"op{step}"  # the client reissues the in-flight op
    history.record("admit", "cas-backup", first_post_key,
                   time=nodes[1].clock.now)
    backup.db.put(first_post_key, first_post_key.encode())
    backup_claimed = shared_counter.value + 1
    backup.db.export_sealed()
    if interleave:
        zombie_acknowledge()
    version = backup.db.acknowledge_persisted()
    history.record(
        "commit", "cas-backup", f"seal/{version}", time=nodes[1].clock.now,
        epoch=backup.lease.epoch if backup.lease is not None else None,
        role=CAS_PRIMARY_ROLE,
    )
    history.record("issue", "cas-backup", str(backup_claimed),
                   time=nodes[1].clock.now, role=CAS_PRIMARY_ROLE)
    history.record("ack", "cas-backup", first_post_key,
                   time=nodes[1].clock.now)
    history.record("terminal", "cas-backup", first_post_key,
                   time=nodes[1].clock.now)

    from repro.chaos.schedule import STEPS_PER_FAMILY

    last_blob = None
    for j in range(step + 1, STEPS_PER_FAMILY):
        local_write(backup, "cas-backup", f"op{j}")
    # Keep the new primary's final acknowledged snapshot for recovery.
    last_blob = backup.db.export_sealed()
    backup.db.acknowledge_persisted()

    if zombie_alive:
        if not interleave:
            zombie_acknowledge()
        # Heal the partition and let the zombie retry its replication.
        t_heal = t0 + PARTITION_WINDOW + 0.5
        for node in nodes:
            node.clock.advance_to(t_heal)
        try:
            primary.audit.commit(
                "owner", "zombie-op", 1, b"zombie-op"
            )
            history.record(
                "commit", "cas", "repl/zombie-op", time=nodes[0].clock.now,
                epoch=primary.lease.epoch if primary.lease is not None else None,
                role=CAS_PRIMARY_ROLE,
            )
        except FencedError:
            history.record("fenced", "cas", "repl/zombie-op",
                           time=nodes[0].clock.now)
        except RpcError:
            pass

    # Final durability readout.  The replicated audit chain survives the
    # failover; the new primary's database must reload from its last
    # acknowledged snapshot — a zombie counter bump makes that snapshot
    # read as a rollback.
    for record in backup.audit.log:
        history.record("durable", "readout", record.path)
    try:
        backup.db.load_sealed(last_blob)
        for key in backup.db.keys():
            history.record("durable", "readout", key)
    except FreshnessError:
        history.record("rollback-detected", "readout", "db")

    return _finish(schedule, fencing, history, plan, epochs)


# ----------------------------------------------------------------------
# Family 2: parameter-server restart with a shared checkpoint store
# ----------------------------------------------------------------------

class _RecordingStore:
    """Per-instance facade over the shared checkpoint store: attributes
    every durable save to the PS that made it (the shared store's guard
    still arbitrates — this wrapper only observes)."""

    def __init__(
        self, inner: InMemoryCheckpointStore, actor: str, history: History,
        clock: SimClock, role: str = PS_ROLE,
    ) -> None:
        self._inner = inner
        self._actor = actor
        self._history = history
        self._clock = clock
        self._role = role

    def save(self, address: str, snapshot, epoch=None) -> None:
        self._inner.save(address, snapshot, epoch=epoch)
        self._history.record(
            "commit", self._actor, f"ckpt/{address}/{snapshot.version}",
            time=self._clock.now, epoch=epoch, role=self._role,
        )

    def load(self, address: str):
        return self._inner.load(address)


def _push_payload(push_id: str, digit: int) -> bytes:
    """Each push's gradient encodes its identity in a distinct base-3
    digit (lr = 1.0), so the final durable weight decomposes exactly
    into the set of pushes its lineage applied — double-applies and
    lost acks are both visible in the digits."""
    grad = np.array([-(3.0 ** digit)], dtype=np.float32)
    return encoding.encode(
        {"gradients": encode_array_dict({"w": grad}), "push_id": push_id}
    )


def _run_ps_restart(schedule: FaultSchedule, fencing: bool) -> ScenarioRun:
    from repro.chaos.schedule import STEPS_PER_FAMILY

    history = History()
    scheduler = Scheduler()
    rng = DeterministicRng(schedule.seed, label="chaos-ps")
    provisioning = ProvisioningAuthority(rng.child("intel"))
    nodes = make_cluster(
        2, DEFAULT_COST_MODEL, provisioning, seed=schedule.seed, scheduler=scheduler
    )
    network = Network(DEFAULT_COST_MODEL, scheduler=scheduler)
    plan = FaultPlan(
        schedule.seed, spec=_storm_spec(schedule, ("ps-0", "ps-1"))
    )
    network.faults.append(plan.inject)

    store = InMemoryCheckpointStore()
    epochs = EpochService() if fencing else None
    if epochs is not None:
        store.guard = epochs.make_guard(PS_ROLE, name="ps-checkpoint-store")

    def install_ps(node, address: str) -> ParameterServer:
        ps = ParameterServer(
            node,
            address,
            network,
            learning_rate=1.0,
            checkpoint_store=_RecordingStore(store, address, history, node.clock),
            store_key="ps",  # logical service identity, shared across pods
        )
        orig_push = ps._handle_push
        orig_commit = ps._server.on_committed
        pending: List[str] = []

        def wrapped_push(payload: bytes, peer) -> bytes:
            body = encoding.decode(payload)
            out = orig_push(payload, peer)
            pending.append(str(body.get("push_id")))
            return out

        def committed() -> None:
            # ``execute`` is recorded at the *commit point* (after the
            # checkpoint guard), not in the handler: a fenced save vetoes
            # the whole call — including its dedup entry — so a vetoed
            # dispatch must not count as an execution either.
            try:
                orig_commit()
            except Exception:
                pending.clear()
                raise
            while pending:
                history.record(
                    "execute", address, f"push/{pending.pop(0)}",
                    time=node.clock.now,
                )

        ps._server.register("push", wrapped_push)
        ps._server.on_committed = committed
        return ps

    ps_a = install_ps(nodes[0], "ps-0")
    if epochs is not None:
        ps_a.lease = epochs.grant(PS_ROLE, holder="ps-0")
    history.record("promote", "ps-0", PS_ROLE)
    ps_a.initialize({"w": np.zeros(1, dtype=np.float32)})

    # Single-attempt policies: no retries (a failed push is a recorded
    # give-up, never reissued), but the executor path stamps every call
    # with a dedup ID — without one, a storm-duplicated delivery would
    # re-execute the push and the at-most-once check would blame the
    # network instead of the zombie.
    once = RetryPolicy(max_attempts=1, deadline=None)
    worker = RpcClient(network, "worker-0@node-1", nodes[1], retry=once)
    straggler = RpcClient(network, "worker-1@node-1", nodes[1], retry=once)
    control = RpcClient(network, "control@node-1", nodes[1], retry=once)

    def push(client: RpcClient, dst: str, push_id: str, digit: int) -> bool:
        history.record("admit", "client", f"push/{push_id}",
                       time=nodes[1].clock.now)
        try:
            client.call(dst, "push", _push_payload(push_id, digit))
        except FencedError:
            history.record("fenced", dst, f"push/{push_id}",
                           time=nodes[1].clock.now)
            history.record("terminal", "client", f"push/{push_id}",
                           value="fenced", time=nodes[1].clock.now)
            return False
        except RpcError:
            history.record("terminal", "client", f"push/{push_id}",
                           value="gave-up", time=nodes[1].clock.now)
            return False
        history.record("ack", "client", f"push/{push_id}",
                       time=nodes[1].clock.now)
        history.record("terminal", "client", f"push/{push_id}",
                       time=nodes[1].clock.now)
        return True

    step = schedule.crash_step
    for i in range(step):
        push(worker, "ps-0", str(i), i)

    t0 = max(nodes[0].clock.now, nodes[1].clock.now)
    if schedule.is_crash:
        ps_a._server.abort()
    else:
        plan.partitions.append(
            TransientPartition(
                "ps-0", t0, t0 + PARTITION_WINDOW,
                direction=schedule.partition_direction,
            )
        )
    # The push in flight when the fault hits: lost (or executed with the
    # reply lost — either way unacked, and never reissued).
    push(worker, "ps-0", str(step), step)

    # Control plane: probe the PS; on failure, fence then replace at a
    # NEW pod address sharing the crashed one's checkpoint lineage.
    try:
        control.call("ps-0", "pull", b"")
        probe_ok = True
    except RpcError:
        probe_ok = False
    if not probe_ok:
        lease_b = (
            epochs.grant(PS_ROLE, holder="ps-1") if epochs is not None else None
        )
        ps_b = install_ps(nodes[1], "ps-1")
        ps_b.lease = lease_b
        history.record("promote", "ps-1", PS_ROLE)

    for j in range(step + 1, STEPS_PER_FAMILY):
        push(worker, "ps-1", str(j), j)

    if not schedule.is_crash:
        # Heal; a straggler worker that never heard of the handoff still
        # pushes to the zombie.  Fenced: the shared store's guard vetoes
        # the zombie's checkpoint (the rejection rides on_committed and
        # rolls the call out of the dedup window).  Unfenced: the zombie
        # overwrites the replacement's lineage.
        t_heal = t0 + PARTITION_WINDOW + 0.5
        for node in nodes:
            node.clock.advance_to(t_heal)
        push(straggler, "ps-0", "straggler", STEPS_PER_FAMILY)

    # Final durability readout: recover from the shared store and
    # decompose the weight into the set of pushes the winning lineage
    # actually contains.
    final = store.load("ps")
    if final is not None:
        total = int(round(float(final.weights["w"][0])))
        for digit in range(STEPS_PER_FAMILY + 1):
            push_id = "straggler" if digit == STEPS_PER_FAMILY else str(digit)
            if (total // 3 ** digit) % 3 == 1:
                history.record("durable", "readout", f"push/{push_id}")

    return _finish(schedule, fencing, history, plan, epochs)


# ----------------------------------------------------------------------
# Family 3: serving-router handoff
# ----------------------------------------------------------------------

def _run_router_handoff(schedule: FaultSchedule, fencing: bool) -> ScenarioRun:
    from repro.chaos.schedule import STEPS_PER_FAMILY

    history = History()
    scheduler = Scheduler()
    network = Network(DEFAULT_COST_MODEL, scheduler=scheduler)
    epochs = EpochService() if fencing else None
    plan = FaultPlan(
        schedule.seed,
        spec=_storm_spec(schedule, ("replica-0", "replica-1")),
    )
    network.faults.append(plan.inject)

    replicas = ("replica-0", "replica-1")
    for address in replicas:
        clock = SimClock()
        scheduler.register_clock(clock)
        guard = (
            epochs.make_guard(ROUTER_ROLE, name=address)
            if epochs is not None
            else None
        )
        dedup: Dict[str, bytes] = {}

        def handler(raw: bytes, *, _addr=address, _clock=clock, _guard=guard,
                    _dedup=dedup) -> bytes:
            msg = messages.decode_request(raw)
            request_id = msg["id"]
            hit = _dedup.get(request_id)
            if hit is not None:
                return hit  # duplicate delivery: replay, don't re-run
            fence = msg.get("fence")
            epoch = fence.get("epoch") if isinstance(fence, dict) else None
            if _guard is not None:
                try:
                    _guard.check(epoch if isinstance(epoch, int) else None)
                except FencedError:
                    history.record("fenced", _addr, request_id,
                                   time=_clock.now)
                    raise
            history.record("execute", _addr, request_id, time=_clock.now,
                           epoch=epoch if isinstance(epoch, int) else None)
            reply = messages.encode_ok(request_id, msg["payload"], _addr)
            _dedup[request_id] = reply
            return reply

        network.register(address, clock, handler)

    clock_a = SimClock()
    clock_b = SimClock()
    scheduler.register_clock(clock_a)
    scheduler.register_clock(clock_b)
    lease_a = (
        epochs.grant(ROUTER_ROLE, holder="router-a")
        if epochs is not None
        else None
    )
    history.record("promote", "router-a", ROUTER_ROLE)

    def dispatch(router: str, clock: SimClock, lease, replica: str,
                 request_id: str) -> bool:
        """One stamped router → replica attempt; True on a settled ok."""
        request = messages.encode_request(
            request_id, b"payload",
            fence=lease.stamp() if lease is not None else None,
        )
        try:
            raw = network.call(router, clock, replica, request)
        except (RpcError, FencingError):
            return False  # transport loss or a fenced rejection
        messages.decode_reply(raw)
        history.record(
            "commit", router, f"settle/{request_id}", time=clock.now,
            epoch=lease.epoch if lease is not None else None,
            role=ROUTER_ROLE,
        )
        return True

    step = schedule.crash_step
    for i in range(step):
        rid = f"r{i}"
        history.record("admit", "client", rid, time=clock_a.now)
        ok = dispatch("router-a", clock_a, lease_a, replicas[i % 2], rid)
        history.record("ack" if ok else "terminal", "client", rid,
                       value="" if ok else "gave-up", time=clock_a.now)
        if ok:
            history.record("terminal", "client", rid, time=clock_a.now)

    # The request in flight when the fault hits.
    rid = f"r{step}"
    target = replicas[step % 2]
    history.record("admit", "client", rid, time=clock_a.now)
    t0 = max(clock_a.now, clock_b.now)
    settled_by_a = False
    if schedule.is_crash:
        pass  # the router dies before dispatching the request
    else:
        plan.partitions.append(
            TransientPartition(
                "router-a", t0, t0 + PARTITION_WINDOW,
                direction=schedule.partition_direction,
            )
        )
        # inbound: the dispatch reaches the replica, the reply vanishes;
        # both/outbound: the dispatch itself is dropped.  Either way the
        # router sees a transport failure and holds an unresolved claim
        # on the request — the zombie's retry below.
        settled_by_a = dispatch("router-a", clock_a, lease_a, target, rid)

    # Control plane: bump-before-promote, then the replacement router.
    lease_b = (
        epochs.grant(ROUTER_ROLE, holder="router-b")
        if epochs is not None
        else None
    )
    history.record("promote", "router-b", ROUTER_ROLE)

    inbound = schedule.kind == "partition-inbound"
    reissued = False
    if not inbound and not settled_by_a:
        # The client saw a typed transport failure and reissues through
        # the replacement (a fresh attempt on the *other* replica).
        reissued = dispatch(
            "router-b", clock_b, lease_b, replicas[(step + 1) % 2], rid
        )
    if reissued:
        history.record("ack", "client", rid, time=clock_b.now)
        history.record("terminal", "client", rid, time=clock_b.now)
    else:
        history.record("terminal", "client", rid, value="gave-up",
                       time=clock_b.now)

    for j in range(step + 1, STEPS_PER_FAMILY):
        rid_j = f"r{j}"
        history.record("admit", "client", rid_j, time=clock_b.now)
        ok = dispatch("router-b", clock_b, lease_b, replicas[j % 2], rid_j)
        history.record("ack" if ok else "terminal", "client", rid_j,
                       value="" if ok else "gave-up", time=clock_b.now)
        if ok:
            history.record("terminal", "client", rid_j, time=clock_b.now)

    if not schedule.is_crash:
        # Heal; the superseded router retries its unresolved in-flight
        # request — stamped with its stale epoch.  inbound retries the
        # *other* replica (it believes the first one failed); both and
        # outbound retry the original target (the dispatch never left).
        t_heal = t0 + PARTITION_WINDOW + 0.5
        for clock in (clock_a, clock_b):
            clock.advance_to(t_heal)
        retry_target = replicas[(step + 1) % 2] if inbound else target
        dispatch("router-a", clock_a, lease_a, retry_target, rid)

    return _finish(schedule, fencing, history, plan, epochs)


# ----------------------------------------------------------------------
# Family 4: sharded PS — shard restart racing the cross-shard barrier
# ----------------------------------------------------------------------

def _run_sharded_ps(schedule: FaultSchedule, fencing: bool) -> ScenarioRun:
    """Two weight shards, one checkpoint store, one commit barrier.

    Pushes alternate shards (digit ``i`` lands on shard ``i % 2``); the
    barrier coordinator (riding shard 0's container) commits a version
    vector after every completed pair.  The schedule's fault takes out
    shard 0 mid-sequence; the replacement pod shares the crashed one's
    store key and resumes its checkpoint lineage.  After the heal, two
    zombies act: a straggler worker pushes to the old shard-0 pod, and
    the superseded coordinator retries its in-flight barrier commit.
    """
    from repro.chaos.schedule import STEPS_PER_FAMILY

    history = History()
    scheduler = Scheduler()
    rng = DeterministicRng(schedule.seed, label="chaos-sharded-ps")
    provisioning = ProvisioningAuthority(rng.child("intel"))
    nodes = make_cluster(
        2, DEFAULT_COST_MODEL, provisioning, seed=schedule.seed, scheduler=scheduler
    )
    network = Network(DEFAULT_COST_MODEL, scheduler=scheduler)
    plan = FaultPlan(
        schedule.seed, spec=_storm_spec(schedule, ("sps0-a", "sps0-b", "sps1"))
    )
    network.faults.append(plan.inject)

    store = InMemoryCheckpointStore()
    epochs = EpochService() if fencing else None
    if epochs is not None:
        # Per-shard-key guards: each shard's snapshot slot fences on its
        # own role's epoch, and the barrier checks every key's guard
        # before appending a vector (all-or-nothing).
        for k in (0, 1):
            store.guards[f"sps{k}"] = epochs.make_guard(
                SHARD_ROLES[k], name=f"sps{k}-checkpoint-store"
            )

    def install_shard(node, address: str, shard: int) -> ParameterServer:
        ps = ParameterServer(
            node,
            address,
            network,
            learning_rate=1.0,
            checkpoint_store=_RecordingStore(
                store, address, history, node.clock, role=SHARD_ROLES[shard]
            ),
            store_key=f"sps{shard}",  # lineage shared across pods
        )
        orig_push = ps._handle_push
        orig_commit = ps._server.on_committed
        pending: List[str] = []

        def wrapped_push(payload: bytes, peer) -> bytes:
            body = encoding.decode(payload)
            out = orig_push(payload, peer)
            pending.append(str(body.get("push_id")))
            return out

        def committed() -> None:
            # As in ps-restart: ``execute`` is recorded at the commit
            # point, so a fenced checkpoint vetoes the dispatch's
            # execution record along with its dedup entry.
            try:
                orig_commit()
            except Exception:
                pending.clear()
                raise
            while pending:
                history.record(
                    "execute", address, f"push/{pending.pop(0)}",
                    time=node.clock.now,
                )

        ps._server.register("push", wrapped_push)
        ps._server.on_committed = committed
        return ps

    ps0 = install_shard(nodes[0], "sps0-a", 0)
    ps1 = install_shard(nodes[1], "sps1", 1)
    if epochs is not None:
        ps0.lease = epochs.grant(SHARD_ROLES[0], holder="sps0-a")
        ps1.lease = epochs.grant(SHARD_ROLES[1], holder="sps1")
    history.record("promote", "sps0-a", SHARD_ROLES[0])
    history.record("promote", "sps1", SHARD_ROLES[1])
    history.record("promote", "sps0-a", BARRIER_ROLE)
    ps0.initialize({"w": np.zeros(1, dtype=np.float32)})
    ps1.initialize({"w": np.zeros(1, dtype=np.float32)})

    def commit_barrier(actor: str, shard0: ParameterServer, clock: SimClock) -> None:
        """The coordinator's atomic cross-shard vector commit."""
        vector = {"sps0": shard0.version, "sps1": ps1.version}
        stamps = {
            "sps0": shard0.lease.epoch if shard0.lease is not None else None,
            "sps1": ps1.lease.epoch if ps1.lease is not None else None,
        }
        try:
            seq = store.commit_vector(vector, epochs=stamps)
        except FencedError:
            history.record("fenced", actor, "barrier", time=clock.now)
            return
        history.record(
            "commit", actor, f"barrier/{seq}", time=clock.now,
            epoch=stamps["sps0"], role=BARRIER_ROLE,
        )

    once = RetryPolicy(max_attempts=1, deadline=None)
    worker = RpcClient(network, "worker-0@node-1", nodes[1], retry=once)
    straggler = RpcClient(network, "worker-1@node-1", nodes[1], retry=once)
    control = RpcClient(network, "control@node-1", nodes[1], retry=once)

    shard_addr = ["sps0-a", "sps1"]

    def push(client: RpcClient, dst: str, push_id: str, digit: int) -> bool:
        history.record("admit", "client", f"push/{push_id}",
                       time=nodes[1].clock.now)
        try:
            client.call(dst, "push", _push_payload(push_id, digit))
        except FencedError:
            history.record("fenced", dst, f"push/{push_id}",
                           time=nodes[1].clock.now)
            history.record("terminal", "client", f"push/{push_id}",
                           value="fenced", time=nodes[1].clock.now)
            return False
        except RpcError:
            history.record("terminal", "client", f"push/{push_id}",
                           value="gave-up", time=nodes[1].clock.now)
            return False
        history.record("ack", "client", f"push/{push_id}",
                       time=nodes[1].clock.now)
        history.record("terminal", "client", f"push/{push_id}",
                       time=nodes[1].clock.now)
        return True

    step = schedule.crash_step
    for i in range(step):
        push(worker, shard_addr[i % 2], str(i), i)
        if i % 2 == 1:
            commit_barrier("sps0-a", ps0, nodes[0].clock)

    t0 = max(nodes[0].clock.now, nodes[1].clock.now)
    if schedule.is_crash:
        ps0._server.abort()
    else:
        plan.partitions.append(
            TransientPartition(
                "sps0-a", t0, t0 + PARTITION_WINDOW,
                direction=schedule.partition_direction,
            )
        )
    # The push in flight when the fault hits (it targets whichever shard
    # the alternation says — shard 1 stays healthy throughout).
    push(worker, shard_addr[step % 2], str(step), step)

    # Control plane: probe shard 0; on failure, fence-first replacement
    # at a new pod address sharing the store key.
    try:
        control.call("sps0-a", "pull", b"")
        probe_ok = True
    except RpcError:
        probe_ok = False
    if not probe_ok:
        lease_b = (
            epochs.grant(SHARD_ROLES[0], holder="sps0-b")
            if epochs is not None
            else None
        )
        ps0_b = install_shard(nodes[1], "sps0-b", 0)
        ps0_b.lease = lease_b
        history.record("promote", "sps0-b", SHARD_ROLES[0])
        history.record("promote", "sps0-b", BARRIER_ROLE)
        shard_addr[0] = "sps0-b"
        live_shard0 = ps0_b
        coordinator = ("sps0-b", ps0_b, nodes[1].clock)
    else:  # pragma: no cover - the fault always takes the probe down
        live_shard0 = ps0
        coordinator = ("sps0-a", ps0, nodes[0].clock)

    for j in range(step + 1, STEPS_PER_FAMILY):
        push(worker, shard_addr[j % 2], str(j), j)
        if j % 2 == 1:
            commit_barrier(*coordinator)

    if not schedule.is_crash:
        # Heal, then both zombies fire: the straggler worker pushes to
        # the superseded shard-0 pod (its checkpoint save contends on
        # the shared store key), and the superseded coordinator retries
        # its in-flight barrier vector with its stale epoch stamps.
        t_heal = t0 + PARTITION_WINDOW + 0.5
        for node in nodes:
            node.clock.advance_to(t_heal)
        push(straggler, "sps0-a", "straggler", STEPS_PER_FAMILY)
        commit_barrier("sps0-a", ps0, nodes[0].clock)

    # Final durability readout: recover each shard's lineage from the
    # shared store and decompose its weight into the digit set (shard k
    # owns digits congruent to k; the straggler digit rides shard 0).
    for shard, key in enumerate(("sps0", "sps1")):
        final = store.load(key)
        if final is None:
            continue
        total = int(round(float(final.weights["w"][0])))
        digits = [d for d in range(STEPS_PER_FAMILY) if d % 2 == shard]
        if shard == 0:
            digits.append(STEPS_PER_FAMILY)
        for digit in digits:
            push_id = (
                "straggler" if digit == STEPS_PER_FAMILY else str(digit)
            )
            if (total // 3 ** digit) % 3 == 1:
                history.record("durable", "readout", f"push/{push_id}")

    return _finish(schedule, fencing, history, plan, epochs)


# ----------------------------------------------------------------------

_FAMILY_RUNNERS: Dict[str, Callable[[FaultSchedule, bool], ScenarioRun]] = {
    "cas-failover": _run_cas_failover,
    "ps-restart": _run_ps_restart,
    "router-handoff": _run_router_handoff,
    "sharded-ps": _run_sharded_ps,
}


def run_schedule(schedule: FaultSchedule, fencing: bool = True) -> ScenarioRun:
    """Execute one schedule under one fencing setting, deterministically."""
    try:
        runner = _FAMILY_RUNNERS[schedule.family]
    except KeyError:
        raise ValueError(f"unknown scenario family {schedule.family!r}")
    return runner(schedule, fencing)


__all__ = [
    "BARRIER_ROLE",
    "FAMILY_INVARIANTS",
    "PARTITION_WINDOW",
    "PS_ROLE",
    "ROUTER_ROLE",
    "SHARD_ROLES",
    "ScenarioRun",
    "run_schedule",
]
