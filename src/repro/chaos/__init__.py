"""Distributed chaos-campaign harness.

Enumerates fault schedules (crash points x partition directions x
duplicate storms) over the platform's leader-shaped protocols, replays
each deterministically on the event heap, and checks the recorded
histories against split-brain invariants.  See DESIGN.md §5i.
"""

from repro.chaos.campaign import CampaignReport, ScheduleOutcome, run_campaign
from repro.chaos.history import History, Op
from repro.chaos.invariants import CHECKS, check
from repro.chaos.scenarios import FAMILY_INVARIANTS, ScenarioRun, run_schedule
from repro.chaos.schedule import (
    FAMILIES,
    FAULT_KINDS,
    FaultSchedule,
    STEPS_PER_FAMILY,
    default_campaign,
    enumerate_schedules,
)

__all__ = [
    "CampaignReport",
    "CHECKS",
    "FAMILIES",
    "FAMILY_INVARIANTS",
    "FAULT_KINDS",
    "FaultSchedule",
    "History",
    "Op",
    "STEPS_PER_FAMILY",
    "ScenarioRun",
    "ScheduleOutcome",
    "check",
    "default_campaign",
    "enumerate_schedules",
    "run_campaign",
    "run_schedule",
]
