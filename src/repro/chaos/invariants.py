"""Invariant checkers over recorded chaos histories.

Each checker is a pure function ``History -> List[str]`` returning one
human-readable violation string per broken promise (empty = the
invariant held).  The campaign driver runs a family's invariant set
over every schedule's history; with fencing enabled the whole sweep
must come back empty, and with fencing disabled the same sweep must
reproduce at least one split-brain violation — both directions are
asserted, because an invariant suite that cannot *detect* the bug it
guards against proves nothing when it passes.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, List

from repro.chaos.history import History

Checker = Callable[[History], List[str]]


def no_acked_write_loss(history: History) -> List[str]:
    """Every acknowledged write survives to the final durable readout.

    ``ack`` ops are client-observed successes; ``durable`` ops are what
    the post-schedule recovery actually found.  An acked key missing
    from the durable set is lost acknowledged work — the canonical
    zombie-leader damage (a stale checkpoint overwriting the
    replacement's, a stale counter bump orphaning a sealed snapshot).
    """
    durable = {op.key for op in history.of_kind("durable")}
    violations = []
    for op in history.of_kind("ack"):
        if op.key not in durable:
            violations.append(
                f"acked write {op.key!r} (by {op.actor}) is not durable"
            )
    return violations


def at_most_once(history: History) -> List[str]:
    """No logical operation executed more than once.

    ``execute`` ops are recorded inside acceptor handlers after their
    dedup windows, so duplicate *deliveries* that replay a cached reply
    are invisible here — only genuine re-executions count.
    """
    counts = Counter(op.key for op in history.of_kind("execute"))
    return [
        f"operation {key!r} executed {n} times"
        for key, n in sorted(counts.items())
        if n > 1
    ]


def single_writer_per_epoch(history: History) -> List[str]:
    """Only the current leader of a role commits under it.

    Leadership generations are delimited by ``promote`` ops (``key`` =
    role, ``actor`` = new leader).  A ``commit`` attributed to a
    superseded leader — the zombie writing after the control plane
    moved on — is exactly the split-brain fencing exists to close.
    """
    leader: Dict[str, str] = {}
    violations = []
    for op in history.ops:
        if op.kind == "promote":
            leader[op.key] = op.actor
        elif op.kind == "commit" and op.role:
            current = leader.get(op.role)
            if current is not None and op.actor != current:
                violations.append(
                    f"commit by superseded {op.role} leader {op.actor!r} "
                    f"(current leader {current!r}) at seq {op.seq}"
                )
    return violations


def unique_counter_issue(history: History) -> List[str]:
    """No monotonic-counter value is bound to committed state twice.

    Two sealed snapshots claiming one counter value make rollback
    detection ambiguous — the double-issue a shared (fenced) counter
    service must prevent across failover.
    """
    counts = Counter((op.role, op.key) for op in history.of_kind("issue"))
    return [
        f"counter value {key!r} issued {n} times (role {role!r})"
        for (role, key), n in sorted(counts.items())
        if n > 1
    ]


def admitted_equals_terminal(history: History) -> List[str]:
    """Every admitted operation reached exactly one terminal outcome."""
    admitted = len(history.of_kind("admit"))
    terminal = len(history.of_kind("terminal"))
    if admitted != terminal:
        return [
            f"{admitted} operations admitted but {terminal} terminal "
            "outcomes recorded"
        ]
    return []


#: Name -> checker registry (scenario families pick by name).
CHECKS: Dict[str, Checker] = {
    "no-acked-write-loss": no_acked_write_loss,
    "at-most-once": at_most_once,
    "single-writer-per-epoch": single_writer_per_epoch,
    "unique-counter-issue": unique_counter_issue,
    "admitted-equals-terminal": admitted_equals_terminal,
}


def check(history: History, names: Iterable[str]) -> List[str]:
    """Run the named checkers; return all violations, prefixed by name."""
    violations = []
    for name in names:
        for violation in CHECKS[name](history):
            violations.append(f"[{name}] {violation}")
    return violations


__all__ = [
    "CHECKS",
    "Checker",
    "admitted_equals_terminal",
    "at_most_once",
    "check",
    "no_acked_write_loss",
    "single_writer_per_epoch",
    "unique_counter_issue",
]
