"""Recorded operation histories for chaos campaigns.

A scenario run produces a :class:`History`: a totally ordered list of
:class:`Op` records capturing what clients *observed* (admits, acks,
terminal outcomes) and what acceptors *did* (executions, durable
commits, promotions).  Invariant checkers (:mod:`repro.chaos
.invariants`) are pure functions over this history — the Jepsen split
of *generate a history under faults* from *check the history after the
fact*, specialized to the platform's leader-shaped roles.

The op kinds, by convention:

``admit``
    A client issued a logical operation (``key`` identifies it).
``ack``
    The client observed a success reply for ``key`` — from here on the
    operation's effects must survive anything the schedule does.
``terminal``
    The client's operation reached *some* final outcome (success, typed
    error, or a recorded give-up).  ``admitted == terminal`` is the
    serving plane's accounting invariant.
``execute``
    An acceptor actually ran the operation (recorded inside the
    handler, after dedup — duplicate deliveries that replay a cached
    reply do not count).
``commit``
    An acceptor durably applied leader-authored state (a checkpoint
    save, a replicated record, a sealed-snapshot acknowledgement).
    ``role`` names the leadership role the commit rode on.
``issue``
    A monotonic-counter value was bound to committed state (``key`` is
    the claimed value) — two issues of one value is the rollback
    ambiguity fencing exists to prevent.
``promote``
    The control plane made ``actor`` the leader for role ``key``.
``fenced``
    An acceptor rejected a stale-epoch request (the fence working).
``durable``
    Final readout: ``key`` was recoverable from durable state after
    the schedule finished.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class Op:
    """One recorded event in a scenario history."""

    seq: int
    time: float
    kind: str
    actor: str
    key: str
    value: str = ""
    epoch: Optional[int] = None
    role: str = ""

    def line(self) -> str:
        """Canonical one-line encoding (stable across runs)."""
        parts = [f"{self.seq}", f"{self.time:.6f}", self.kind, self.actor, self.key]
        if self.value:
            parts.append(f"v={self.value}")
        if self.epoch is not None:
            parts.append(f"e={self.epoch}")
        if self.role:
            parts.append(f"r={self.role}")
        return " ".join(parts)


class History:
    """An append-only, totally ordered operation history."""

    def __init__(self) -> None:
        self.ops: List[Op] = []

    def record(
        self,
        kind: str,
        actor: str,
        key: str,
        *,
        time: float = 0.0,
        value: str = "",
        epoch: Optional[int] = None,
        role: str = "",
    ) -> Op:
        op = Op(
            seq=len(self.ops),
            time=time,
            kind=kind,
            actor=actor,
            key=key,
            value=value,
            epoch=epoch,
            role=role,
        )
        self.ops.append(op)
        return op

    def of_kind(self, kind: str) -> List[Op]:
        return [op for op in self.ops if op.kind == kind]

    def __len__(self) -> int:
        return len(self.ops)

    def trace_bytes(self) -> bytes:
        """Canonical encoding of the whole history — the byte string the
        replay-identity check compares across two runs of one seed."""
        return "\n".join(op.line() for op in self.ops).encode()


__all__ = ["History", "Op"]
