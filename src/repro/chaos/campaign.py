"""Campaign driver: sweep fault schedules, check invariants, verify replay.

A campaign runs every schedule in a grid (by default the full
:func:`~repro.chaos.schedule.default_campaign` — 288 schedules) under
one fencing setting, collecting per-schedule outcomes:

- the family's invariant violations over the recorded history;
- a **replay identity** check: each schedule is executed twice from its
  identity-derived seed and the two canonical trace byte strings must
  match exactly.  A schedule that cannot replay byte-identically is
  useless as a regression reproducer, so the campaign treats a mismatch
  as a first-class failure, not a warning.

The acceptance shape (asserted by the tier-2 suite and recorded by the
bench): with fencing **enabled** the full sweep finds zero violations;
with fencing **disabled** the *same* sweep reproduces split-brain
violations — proving the invariant suite detects the bug the fence
closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.schedule import FaultSchedule, default_campaign
from repro.chaos.scenarios import ScenarioRun, run_schedule


@dataclass
class ScheduleOutcome:
    """One schedule's result within a campaign."""

    schedule: FaultSchedule
    fencing: bool
    violations: Tuple[str, ...]
    replay_identical: bool
    ops_recorded: int
    fenced_ops: int
    #: History-derived incident bundle (``emit_incidents`` runs only).
    #: Unfenced runs with violations get one triggered by the first
    #: violation; fenced runs get one triggered by the fault injection.
    incident: Optional[object] = None

    @property
    def ok(self) -> bool:
        return not self.violations and self.replay_identical


@dataclass
class CampaignReport:
    """Aggregate result of one campaign sweep."""

    fencing: bool
    outcomes: List[ScheduleOutcome] = field(default_factory=list)

    @property
    def schedules_run(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> List[str]:
        """All violations, each prefixed with its schedule id."""
        out = []
        for outcome in self.outcomes:
            for violation in outcome.violations:
                out.append(f"{outcome.schedule.schedule_id}: {violation}")
        return out

    @property
    def violating_schedules(self) -> List[ScheduleOutcome]:
        return [o for o in self.outcomes if o.violations]

    @property
    def replay_mismatches(self) -> List[ScheduleOutcome]:
        return [o for o in self.outcomes if not o.replay_identical]

    @property
    def fenced_ops(self) -> int:
        return sum(o.fenced_ops for o in self.outcomes)

    @property
    def incident_bundles(self) -> List[object]:
        return [o.incident for o in self.outcomes if o.incident is not None]

    def violations_by_invariant(self) -> Dict[str, int]:
        """Violation counts keyed by invariant name (the ``[name]``
        prefix every checker stamps on its findings)."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            for violation in outcome.violations:
                name = violation.split("]", 1)[0].lstrip("[")
                counts[name] = counts.get(name, 0) + 1
        return counts

    def summary(self) -> str:
        mode = "fenced" if self.fencing else "unfenced"
        lines = [
            f"chaos campaign ({mode}): {self.schedules_run} schedules, "
            f"{len(self.violations)} violations, "
            f"{len(self.replay_mismatches)} replay mismatches, "
            f"{self.fenced_ops} fenced ops"
        ]
        for name, count in sorted(self.violations_by_invariant().items()):
            lines.append(f"  {name}: {count} violations")
        return "\n".join(lines)


def run_campaign(
    schedules: Optional[Sequence[FaultSchedule]] = None,
    fencing: bool = True,
    verify_replay: bool = True,
    progress: Optional[Callable[[ScheduleOutcome], None]] = None,
    emit_incidents: bool = False,
) -> CampaignReport:
    """Run every schedule (twice, when ``verify_replay``) and report.

    ``progress`` is called after each schedule — benches use it for
    throughput accounting without re-running the sweep.  With
    ``emit_incidents`` each schedule also distills its recorded history
    into exactly one deterministic incident bundle (lazy import: plain
    campaigns never load the observability package).
    """
    if schedules is None:
        schedules = default_campaign()
    report = CampaignReport(fencing=fencing)
    for schedule in schedules:
        first = run_schedule(schedule, fencing=fencing)
        identical = True
        if verify_replay:
            second = run_schedule(schedule, fencing=fencing)
            identical = second.trace == first.trace
        incident = None
        if emit_incidents:
            from repro.observability.incident import bundle_from_scenario

            incident = bundle_from_scenario(schedule, first, fencing)
        outcome = ScheduleOutcome(
            schedule=schedule,
            fencing=fencing,
            violations=first.violations,
            replay_identical=identical,
            ops_recorded=len(first.history),
            fenced_ops=len(first.history.of_kind("fenced")),
            incident=incident,
        )
        report.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return report


__all__ = ["CampaignReport", "ScheduleOutcome", "run_campaign"]
