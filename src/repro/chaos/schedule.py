"""Deterministic enumeration of fault schedules.

A :class:`FaultSchedule` is one point in the campaign's fault grid:

- **family** — which leader-shaped protocol is under test
  (``cas-failover``, ``ps-restart``, ``router-handoff``,
  ``sharded-ps``);
- **crash_step** — the protocol step at which the leader is lost
  (crashed or partitioned away), sweeping the loss across every point
  of the write sequence;
- **kind** — how the leader is lost: a genuine crash, or a transient
  partition in one of three directions (symmetric, inbound-only,
  outbound-only — the one-way cases are where zombies live);
- **duplicate_storm** — whether the network additionally duplicates
  deliveries around the affected endpoints, stressing the at-most-once
  dedup windows while the handoff is in flight.

Every schedule derives a stable seed from its own identity (CRC32 of
the id string — no process-randomized hashing), so a schedule replays
byte-identically however the sweep is ordered or parallelized.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from itertools import product
from typing import Iterator, Sequence, Tuple

#: How the leader is lost at ``crash_step``.
KIND_CRASH = "crash"
KIND_PARTITION_BOTH = "partition-both"
KIND_PARTITION_INBOUND = "partition-inbound"
KIND_PARTITION_OUTBOUND = "partition-outbound"

FAULT_KINDS: Tuple[str, ...] = (
    KIND_CRASH,
    KIND_PARTITION_BOTH,
    KIND_PARTITION_INBOUND,
    KIND_PARTITION_OUTBOUND,
)

#: Protocol steps swept per family (crash_step in [0, STEPS_PER_FAMILY)).
STEPS_PER_FAMILY = 9

FAMILIES: Tuple[str, ...] = (
    "cas-failover",
    "ps-restart",
    "router-handoff",
    "sharded-ps",
)


@dataclass(frozen=True)
class FaultSchedule:
    """One deterministic fault schedule in a campaign grid."""

    family: str
    crash_step: int
    kind: str
    duplicate_storm: bool

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.crash_step < 0:
            raise ValueError(f"crash_step must be >= 0, got {self.crash_step}")

    @property
    def schedule_id(self) -> str:
        storm = "+dup" if self.duplicate_storm else ""
        return f"{self.family}/step{self.crash_step}/{self.kind}{storm}"

    @property
    def seed(self) -> int:
        """A stable seed derived from the schedule's identity."""
        return zlib.crc32(self.schedule_id.encode())

    @property
    def partition_direction(self) -> str:
        """The :class:`~repro.cluster.faults.TransientPartition` direction
        this schedule's kind maps to (meaningless for ``crash``)."""
        return {
            KIND_PARTITION_BOTH: "both",
            KIND_PARTITION_INBOUND: "inbound",
            KIND_PARTITION_OUTBOUND: "outbound",
        }.get(self.kind, "both")

    @property
    def is_crash(self) -> bool:
        return self.kind == KIND_CRASH


def enumerate_schedules(
    families: Sequence[str] = FAMILIES,
    steps: int = STEPS_PER_FAMILY,
    kinds: Sequence[str] = FAULT_KINDS,
    duplicate_storms: Sequence[bool] = (False, True),
) -> Iterator[FaultSchedule]:
    """The full campaign grid, in a fixed deterministic order."""
    for family, step, kind, storm in product(
        families, range(steps), kinds, duplicate_storms
    ):
        yield FaultSchedule(
            family=family, crash_step=step, kind=kind, duplicate_storm=storm
        )


def default_campaign() -> Tuple[FaultSchedule, ...]:
    """The standard sweep: every family x step x kind x storm —
    4 * 9 * 4 * 2 = 288 distinct schedules (the >= 200 floor the
    acceptance bench asserts)."""
    return tuple(enumerate_schedules())


__all__ = [
    "FAMILIES",
    "FAULT_KINDS",
    "FaultSchedule",
    "KIND_CRASH",
    "KIND_PARTITION_BOTH",
    "KIND_PARTITION_INBOUND",
    "KIND_PARTITION_OUTBOUND",
    "STEPS_PER_FAMILY",
    "default_campaign",
    "enumerate_schedules",
]
