"""The global event-heap scheduler: one clock lattice for whole fleets.

Before this module existed, the simulation interleaved concurrent
actors by *call nesting*: ``Network.call`` walked the callee's
:class:`~repro._sim.clock.SimClock` forward inside the caller's Python
stack frame, drive loops hand-ordered worker phases, and every timer was
an inline ``clock.advance``.  That synchronous walk is O(nodes) per
decision ("who acts next?" is a min-scan over per-node clocks) and ties
Python recursion depth to RPC nesting — fine for the paper's 3-machine
cluster, a wall-clock ceiling for 100+ node fleets.

This module replaces the walk with a single global **event heap**:

- :class:`Event` — a callback keyed by ``(time, seq)``.  ``time`` is
  absolute simulated seconds on the shared timeline all per-node
  clocks advance through; ``seq`` is a monotone sequence number
  assigned at scheduling, so ties break by *scheduling order* and every
  run is deterministic per seed (no dict-order or identity ordering
  anywhere).
- :class:`Completion` — the park/resume handle.  A blocking caller
  parks by draining the heap until its completion resolves
  (:meth:`Scheduler.run_until`); a coroutine activity parks by
  ``yield``-ing the completion, costing no Python stack at all.
- :class:`Scheduler` — the heap plus activity support.  Network
  deliveries, retry/backoff timers, orchestrator health probes, and
  fault-plan delay spikes are all expressed as scheduled events, so a
  fleet of N nodes costs O(events · log events) total, independent of
  how calls nest.

Per-node :class:`SimClock`\\ s remain the *views* components charge time
to: an event executes "on" some node by advancing that node's clock to
(at least) the event's timestamp, exactly as the synchronous walk did —
probe hooks, layer charges, and clock subscriptions keep firing with
identical values.  The scheduler never moves a clock backwards; a
callee whose clock is already past an arrival simply handles the event
late, which is the same saturation semantics ``Network.call`` always
had.

Determinism contract: with a fixed seed, the sequence of executed
events — and therefore every RNG draw, trace byte, and final weight —
is identical run to run, because (a) heap order is a pure function of
(time, seq), (b) seq is assigned in program order, and (c) nothing in
the scheduler consults wall-clock time or iteration order of unordered
containers.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro._sim.clock import SimClock
from repro.errors import ReproError


class SchedulerError(ReproError):
    """The event core reached an impossible state (deadlock, misuse)."""


class Event:
    """One scheduled callback, ordered by ``(time, seq)``.

    Cancellation is lazy: a cancelled event stays in the heap and is
    skipped (without counting as processed) when it surfaces.
    """

    __slots__ = ("time", "seq", "fn", "label", "cancelled", "owner")

    def __init__(self, time: float, seq: int, fn: Callable[[], None], label: str) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.label = label
        self.cancelled = False
        #: Back-reference to the owning scheduler, used only to count
        #: cancellations; dropped at cancel time with the payload.
        self.owner: Optional["Scheduler"] = None

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        self.fn = _noop  # drop references early (payloads can be large)
        if self.owner is not None:
            self.owner.events_cancelled += 1
            self.owner = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"Event({self.label!r}, t={self.time:.6f}, seq={self.seq}{state})"


def _noop() -> None:
    return None


class Completion:
    """A one-shot future on the scheduler: the park/resume handle.

    Exactly one of :meth:`resolve` / :meth:`fail` may be called, once.
    Waiters (activity resume thunks) run immediately in the resolver's
    context — resumption order is therefore the deterministic order in
    which waiters were attached.
    """

    __slots__ = ("label", "done", "value", "error", "_waiters")

    def __init__(self, label: str = "") -> None:
        self.label = label
        self.done = False
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self._waiters: List[Callable[["Completion"], None]] = []

    def resolve(self, value: Any = None) -> None:
        self._finish(value, None)

    def fail(self, error: BaseException) -> None:
        self._finish(None, error)

    def _finish(self, value: Any, error: Optional[BaseException]) -> None:
        if self.done:
            raise SchedulerError(f"completion {self.label!r} resolved twice")
        self.done = True
        self.value = value
        self.error = error
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(self)

    def add_waiter(self, waiter: Callable[["Completion"], None]) -> None:
        """Run ``waiter(self)`` on resolution (immediately if done)."""
        if self.done:
            waiter(self)
        else:
            self._waiters.append(waiter)

    def result(self) -> Any:
        if not self.done:
            raise SchedulerError(f"completion {self.label!r} is still pending")
        if self.error is not None:
            raise self.error
        return self.value

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"Completion({self.label!r}, {state})"


#: An activity: a generator that yields Completions (park points) and
#: receives each completion's value back at resume.
Activity = Generator[Completion, Any, Any]


class Scheduler:
    """A binary heap of events keyed by ``(timestamp, seq)``.

    One scheduler per simulation (the :class:`~repro.cluster.network
    .Network` owns one; independent simulations coexist by owning
    separate schedulers, exactly like independent clocks).
    """

    def __init__(self) -> None:
        #: Heap entries are ``(time, seq, event)`` tuples, not bare
        #: events: sift comparisons stay in C (seq is unique, so the
        #: event itself is never compared) — at fleet scale the heap
        #: does hundreds of thousands of comparisons per second.
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._clocks: List[SimClock] = []
        #: Events executed (cancelled pops excluded) — the bench's
        #: simulated-events/s numerator.
        self.events_processed = 0
        #: Events ever scheduled (cancellations included).
        self.events_scheduled = 0
        #: Events cancelled before firing (lazy deletions counted at
        #: ``Event.cancel`` time, not at pop time).
        self.events_cancelled = 0
        #: High-water mark of heap occupancy (cancelled entries count
        #: until they surface — they still cost heap comparisons).
        self.heap_peak = 0
        #: Live activities spawned and not yet finished.
        self.activities_running = 0
        #: Activities currently parked on an unresolved Completion.
        self.activities_parked = 0

    # -- clock views -----------------------------------------------------

    def register_clock(self, clock: SimClock) -> None:
        """Track ``clock`` as a per-node view onto this timeline."""
        if clock not in self._clocks:
            self._clocks.append(clock)

    @property
    def clocks(self) -> List[SimClock]:
        return list(self._clocks)

    def fleet_time(self) -> float:
        """Max simulated time across all registered per-node clocks."""
        return max((c.now for c in self._clocks), default=0.0)

    # -- scheduling ------------------------------------------------------

    def schedule(self, when: float, fn: Callable[[], None], label: str = "") -> Event:
        """Schedule ``fn`` at absolute simulated time ``when``."""
        if when < 0:
            raise SchedulerError(f"cannot schedule in negative time: {when}")
        event = Event(float(when), next(self._seq), fn, label)
        event.owner = self
        heapq.heappush(self._heap, (event.time, event.seq, event))
        self.events_scheduled += 1
        if len(self._heap) > self.heap_peak:
            self.heap_peak = len(self._heap)
        return event

    def schedule_after(
        self, clock: SimClock, delay: float, fn: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``fn`` at ``clock.now + delay`` (a per-node timer)."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule a negative delay: {delay}")
        return self.schedule(clock.now + delay, fn, label)

    def timer(self, clock: SimClock, delay: float, label: str = "timer") -> Completion:
        """A completion that resolves at ``clock.now + delay``, advancing
        ``clock`` to the fire time first (observers see the advance)."""
        completion = Completion(label)
        due = clock.now + delay

        def fire() -> None:
            clock.advance_to(due)
            completion.resolve(due)

        self.schedule(due, fire, label)
        return completion

    def pending(self) -> int:
        """Live (non-cancelled) events still in the heap."""
        return sum(1 for _, _, e in self._heap if not e.cancelled)

    @property
    def heap_size(self) -> int:
        """Current heap occupancy, cancelled entries included (what the
        heap actually pays comparisons for)."""
        return len(self._heap)

    # -- execution -------------------------------------------------------

    def _pop_runnable(self) -> Optional[Event]:
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            if not event.cancelled:
                return event
            # Cancelled events vanish silently (lazy deletion).
        return None

    def step(self) -> bool:
        """Execute the earliest pending event; False when heap is empty."""
        event = self._pop_runnable()
        if event is None:
            return False
        self.events_processed += 1
        event.owner = None  # fired: a late cancel() must not count
        event.fn()
        return True

    def run(self, until: Optional[float] = None) -> int:
        """Drain the heap (optionally only events with ``time <= until``).

        Returns the number of events executed by this call.
        """
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        while heap:
            if until is not None and heap[0][0] > until:
                break
            event = pop(heap)[2]
            if event.cancelled:
                continue
            self.events_processed += 1
            event.owner = None  # fired: a late cancel() must not count
            event.fn()
            executed += 1
        return executed

    def run_until(self, completion: Completion) -> Any:
        """Drive the heap until ``completion`` resolves; its result.

        This is the *blocking bridge*: synchronous code (the legacy
        drive loops, ``Network.call``) parks here, keeping its Python
        stack, while the scheduler executes whatever the fleet has
        pending — including events that belong to other parked calls.
        Re-entrant: an event handler may itself park, nesting another
        ``run_until`` on the stack (depth equals RPC nesting of
        *synchronous* callers only; coroutine activities never nest).
        """
        while not completion.done:
            if not self.step():
                raise SchedulerError(
                    f"deadlock: completion {completion.label!r} cannot resolve "
                    f"(event heap is empty)"
                )
        return completion.result()

    # -- activities ------------------------------------------------------

    def spawn(
        self,
        activity: Activity,
        name: str = "activity",
        at: Optional[float] = None,
        clock: Optional[SimClock] = None,
    ) -> Completion:
        """Run ``activity`` as a resumable coroutine; completion of exit.

        The generator is first stepped at ``at`` (or ``clock.now``, or
        immediately at time 0).  Each ``yield completion`` parks the
        activity with *no retained Python stack*; it resumes — in the
        resolver's deterministic order — with the completion's value, or
        has the completion's error thrown into it.  ``return value``
        resolves the returned completion with ``value``; an uncaught
        exception fails it.
        """
        done = Completion(name)
        self.activities_running += 1
        parked = {"now": False}  # this activity's park state (gauge feed)

        def step(value: Any = None, error: Optional[BaseException] = None) -> None:
            if parked["now"]:
                parked["now"] = False
                self.activities_parked -= 1
            try:
                if error is not None:
                    target = activity.throw(error)
                else:
                    target = activity.send(value)
            except StopIteration as stop:
                self.activities_running -= 1
                done.resolve(getattr(stop, "value", None))
                return
            except BaseException as exc:  # noqa: BLE001 - fail the handle
                self.activities_running -= 1
                done.fail(exc)
                return
            if not isinstance(target, Completion):
                self.activities_running -= 1
                failure = SchedulerError(
                    f"activity {name!r} yielded {type(target).__name__}; "
                    "activities may only yield Completions"
                )
                done.fail(failure)
                return
            parked["now"] = True
            self.activities_parked += 1
            target.add_waiter(lambda c: step(c.value, c.error))

        start = at if at is not None else (clock.now if clock is not None else 0.0)
        self.schedule(start, step, label=f"spawn:{name}")
        return done

    def __repr__(self) -> str:
        return (
            f"Scheduler(pending={len(self._heap)}, "
            f"processed={self.events_processed})"
        )
