"""The telemetry probe point: one module-level slot, checked inline.

Instrumentation sites across the runtime/cluster layers guard every
recording call with ``if probe.ACTIVE is not None`` — a single global
load and comparison.  When no recorder is installed (the default), the
instrumented code paths never construct a span, never touch an
envelope, never advance a clock, and never import
:mod:`repro.observability`; a run with tracing disabled is therefore
byte-identical (simulated time *and* stats counters) to a run on a
build without the telemetry subsystem at all.

This module deliberately has no dependencies (not even on the tracer's
type) so that core modules can import it without pulling in the
observability package.
"""

from __future__ import annotations

import contextlib
from typing import Optional

#: The installed recorder (a ``repro.observability.tracer.Tracer``), or
#: None when telemetry is off.  Read directly at instrumentation sites;
#: installed/cleared via :func:`set_active`.
ACTIVE: Optional[object] = None

#: The installed black-box flight recorder (a ``repro.observability
#: .flight.FlightRecorder``), or None when off.  Sites call
#: :func:`flight` unconditionally — the fast path is one global load
#: and a None comparison; recording itself never touches a clock, so a
#: run with the recorder off is byte-identical to one that never
#: imported the observability package.
FLIGHT: Optional[object] = None

#: The installed incident pipeline (a ``repro.observability.incident
#: .IncidentPipeline``), or None.  Triggers fire through :func:`incident`
#: from fault sites (fence rejections, watchdog quarantine, replica
#: crashes) without those modules importing the observability package.
INCIDENTS: Optional[object] = None

_NULL_SCOPE = contextlib.nullcontext()


def span(clock, name, category="", attrs=None, parent_context=None):
    """A span scope on the active recorder, or a shared no-op context
    when telemetry is off.  Lets call sites keep one code path:
    ``with probe.span(clock, "rpc.call", ...):``."""
    tracer = ACTIVE
    if tracer is None:
        return _NULL_SCOPE
    return tracer.span(
        clock, name, category=category, attrs=attrs, parent_context=parent_context
    )


def set_active(tracer: Optional[object]) -> Optional[object]:
    """Install ``tracer`` as the process-wide recorder (None = off).

    Returns the previously installed recorder so callers can restore it
    (scoped activation in tests).
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = tracer
    return previous


def flight(clock, kind, name, detail="") -> None:
    """Record one flight-recorder event, if a recorder is installed.

    ``clock`` may be None for control-plane events with no owning node
    (acceptor-side fence rejections); the recorder files those under its
    control ring.  Recording is read-only: no clock moves, no RNG draws.
    """
    recorder = FLIGHT
    if recorder is not None:
        recorder.record(clock, kind, name, detail)


def set_flight(recorder: Optional[object]) -> Optional[object]:
    """Install ``recorder`` as the process-wide flight recorder
    (None = off); returns the previous one for scoped restoration."""
    global FLIGHT
    previous = FLIGHT
    FLIGHT = recorder
    return previous


def incident(kind, name, clock=None, detail="") -> None:
    """Fire an incident trigger, if a pipeline is installed."""
    pipeline = INCIDENTS
    if pipeline is not None:
        pipeline.trigger(kind, name, clock=clock, detail=detail)


def set_incidents(pipeline: Optional[object]) -> Optional[object]:
    """Install ``pipeline`` as the process-wide incident pipeline
    (None = off); returns the previous one for scoped restoration."""
    global INCIDENTS
    previous = INCIDENTS
    INCIDENTS = pipeline
    return previous
