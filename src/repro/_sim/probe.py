"""The telemetry probe point: one module-level slot, checked inline.

Instrumentation sites across the runtime/cluster layers guard every
recording call with ``if probe.ACTIVE is not None`` — a single global
load and comparison.  When no recorder is installed (the default), the
instrumented code paths never construct a span, never touch an
envelope, never advance a clock, and never import
:mod:`repro.observability`; a run with tracing disabled is therefore
byte-identical (simulated time *and* stats counters) to a run on a
build without the telemetry subsystem at all.

This module deliberately has no dependencies (not even on the tracer's
type) so that core modules can import it without pulling in the
observability package.
"""

from __future__ import annotations

import contextlib
from typing import Optional

#: The installed recorder (a ``repro.observability.tracer.Tracer``), or
#: None when telemetry is off.  Read directly at instrumentation sites;
#: installed/cleared via :func:`set_active`.
ACTIVE: Optional[object] = None

_NULL_SCOPE = contextlib.nullcontext()


def span(clock, name, category="", attrs=None, parent_context=None):
    """A span scope on the active recorder, or a shared no-op context
    when telemetry is off.  Lets call sites keep one code path:
    ``with probe.span(clock, "rpc.call", ...):``."""
    tracer = ACTIVE
    if tracer is None:
        return _NULL_SCOPE
    return tracer.span(
        clock, name, category=category, attrs=attrs, parent_context=parent_context
    )


def set_active(tracer: Optional[object]) -> Optional[object]:
    """Install ``tracer`` as the process-wide recorder (None = off).

    Returns the previously installed recorder so callers can restore it
    (scoped activation in tests).
    """
    global ACTIVE
    previous = ACTIVE
    ACTIVE = tracer
    return previous
