"""Unit helpers so cost-model constants read like the paper's prose.

All simulated durations are plain ``float`` seconds and all sizes plain
``int`` bytes; these helpers only make call sites self-documenting
(``40 * microseconds`` rather than ``4e-05``).
"""

from __future__ import annotations

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB

#: One microsecond / millisecond, in seconds.
microseconds: float = 1e-6
milliseconds: float = 1e-3


def Mbps(n: float) -> float:
    """Megabits per second expressed as bytes per second."""
    return n * 1e6 / 8.0


def Gbps(n: float) -> float:
    """Gigabits per second expressed as bytes per second."""
    return n * 1e9 / 8.0


def bytes_to_pages(n_bytes: int, page_size: int = 4096) -> int:
    """Number of pages needed to hold ``n_bytes`` (ceiling division)."""
    if n_bytes < 0:
        raise ValueError(f"negative byte count: {n_bytes}")
    return -(-n_bytes // page_size)
