"""Event tracing for benchmark breakdowns.

Figure 4 of the paper reports a *breakdown* of attestation latency
(quote generation, verification, key transfer).  Components emit named
:class:`TraceEvent` spans into an :class:`EventTrace`; benchmarks sum the
spans per phase to print the same breakdown rows.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro._sim.clock import SimClock


@dataclass(frozen=True)
class TraceEvent:
    """A completed named span of simulated time."""

    name: str
    start: float
    end: float
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class EventTrace:
    """An append-only log of :class:`TraceEvent` spans."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._events: List[TraceEvent] = []

    @property
    def events(self) -> List[TraceEvent]:
        return list(self._events)

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[None]:
        """Record a span covering the simulated time spent in the block."""
        start = self._clock.now
        try:
            yield
        finally:
            self._events.append(
                TraceEvent(name=name, start=start, end=self._clock.now, attrs=attrs)
            )

    def record(self, name: str, duration: float, **attrs: object) -> None:
        """Record a span of known ``duration`` ending now (already charged)."""
        end = self._clock.now
        self._events.append(
            TraceEvent(name=name, start=end - duration, end=end, attrs=attrs)
        )

    def total(self, name: Optional[str] = None) -> float:
        """Total duration of all events, or of events with a given name."""
        return sum(
            e.duration for e in self._events if name is None or e.name == name
        )

    def breakdown(self) -> Dict[str, float]:
        """Map of event name to summed duration, in insertion order."""
        out: Dict[str, float] = {}
        for event in self._events:
            out[event.name] = out.get(event.name, 0.0) + event.duration
        return out

    def clear(self) -> None:
        self._events.clear()
