"""Simulation substrate: virtual time, deterministic randomness, tracing.

Everything in this reproduction that *computes* is real (crypto, numerics,
serialization), but *time and hardware* are simulated.  This package holds
the shared machinery: a :class:`~repro._sim.clock.SimClock` that components
charge costs to, the global event-heap
:class:`~repro._sim.scheduler.Scheduler` all fleet concurrency runs on,
unit helpers, and an event tracer used by benchmarks to produce
per-phase breakdowns (e.g. Figure 4's attestation breakdown).
"""

from repro._sim.clock import SimClock, global_clock, reset_global_clock
from repro._sim.rng import DeterministicRng
from repro._sim.scheduler import Completion, Event, Scheduler, SchedulerError
from repro._sim.trace import EventTrace, TraceEvent
from repro._sim.units import GiB, KiB, MiB, Mbps, Gbps, microseconds, milliseconds

__all__ = [
    "SimClock",
    "global_clock",
    "reset_global_clock",
    "Scheduler",
    "SchedulerError",
    "Completion",
    "Event",
    "DeterministicRng",
    "EventTrace",
    "TraceEvent",
    "KiB",
    "MiB",
    "GiB",
    "Mbps",
    "Gbps",
    "microseconds",
    "milliseconds",
]
