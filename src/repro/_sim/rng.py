"""Deterministic randomness.

All stochastic behaviour in the simulation (key generation nonces in
tests, synthetic datasets, failure injection) flows through
:class:`DeterministicRng` so that every benchmark and test is exactly
reproducible.  Real deployments would use an OS CSPRNG; the enclave
simulator substitutes a seeded SHA-256-based generator, which is
cryptographically *shaped* (forward-secure expansion) even though the
seed is public in tests.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Optional

import numpy as np


class DeterministicRng:
    """Seeded RNG offering both numpy streams and crypto-style bytes."""

    def __init__(self, seed: int = 0, label: str = "repro") -> None:
        self._seed = int(seed)
        self._label = label
        self._numpy = np.random.default_rng(self._derive_int("numpy"))
        self._counter = 0

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def numpy(self) -> np.random.Generator:
        """A numpy Generator derived from the seed (for tensors/datasets)."""
        return self._numpy

    def _derive_int(self, purpose: str) -> int:
        digest = hashlib.sha256(
            f"{self._label}|{self._seed}|{purpose}".encode()
        ).digest()
        return int.from_bytes(digest[:8], "big")

    def random_bytes(self, n: int) -> bytes:
        """Produce ``n`` pseudo-random bytes (deterministic per seed)."""
        if n < 0:
            raise ValueError(f"negative byte count: {n}")
        out = bytearray()
        while len(out) < n:
            block = hashlib.sha256(
                f"{self._label}|{self._seed}|bytes".encode()
                + struct.pack(">Q", self._counter)
            ).digest()
            self._counter += 1
            out.extend(block)
        return bytes(out[:n])

    def child(self, label: str) -> "DeterministicRng":
        """Derive an independent RNG for a sub-component."""
        return DeterministicRng(self._derive_int(f"child|{label}"), label=label)

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._numpy.uniform(low, high))

    def randint(self, low: int, high: Optional[int] = None) -> int:
        return int(self._numpy.integers(low, high))

    def choice(self, seq):  # type: ignore[no-untyped-def]
        """Pick one element of a non-empty sequence."""
        if len(seq) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return seq[int(self._numpy.integers(0, len(seq)))]
