"""Virtual time.

A :class:`SimClock` is a monotonically advancing float of simulated
seconds.  Components never read the wall clock; they ``advance`` the sim
clock by amounts derived from the cost model
(:mod:`repro.enclave.cost_model`).  Benchmarks read ``clock.now`` before
and after a workload to obtain the simulated latency that the paper's
figures report.

A process-global clock is provided for convenience (the common case is a
single simulated deployment per test/benchmark), but every component also
accepts an explicit clock so independent simulations can coexist.
"""

from __future__ import annotations

from typing import Callable, List, Optional


class SimClock:
    """Monotonic simulated clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start in the past: {start}")
        self._now = float(start)
        self._observers: List[Callable[[float, float], None]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time.

        Negative advances are rejected: simulated time is monotonic, and a
        negative charge is always a cost-model bug.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        before = self._now
        self._now += seconds
        for observer in self._observers:
            observer(before, self._now)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to an absolute ``timestamp`` (no-op if past)."""
        if timestamp > self._now:
            self.advance(timestamp - self._now)
        return self._now

    def subscribe(self, observer: Callable[[float, float], None]) -> None:
        """Register ``observer(old, new)`` to be called on every advance."""
        self._observers.append(observer)

    def unsubscribe(self, observer: Callable[[float, float], None]) -> None:
        """Remove a previously subscribed observer (no-op if absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def measure(self) -> "ClockSpan":
        """Return a context manager that records elapsed simulated time."""
        return ClockSpan(self)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f}s)"


class ClockSpan:
    """Context manager capturing elapsed simulated time over a block."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "ClockSpan":
        self._start = self._clock.now
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed = self._clock.now - self._start


_GLOBAL_CLOCK = SimClock()


def global_clock() -> SimClock:
    """The process-global simulated clock."""
    return _GLOBAL_CLOCK


def reset_global_clock() -> SimClock:
    """Replace the global clock with a fresh one (test isolation)."""
    global _GLOBAL_CLOCK
    _GLOBAL_CLOCK = SimClock()
    return _GLOBAL_CLOCK
