"""Baselines the paper compares against (Fig. 5).

- native glibc (Ubuntu) and native musl (Alpine) TensorFlow Lite,
- Graphene-SGX: a library OS inside the enclave — same protection goal
  as SCONE, much larger in-enclave footprint and costlier syscalls.
"""

from repro.baselines.native import make_native_runner, NativeRunner
from repro.baselines.graphene import GRAPHENE_LIBOS, make_graphene_runner
from repro.baselines.slalom import SlalomRunner, make_slalom_runner

__all__ = [
    "NativeRunner",
    "make_native_runner",
    "GRAPHENE_LIBOS",
    "make_graphene_runner",
    "SlalomRunner",
    "make_slalom_runner",
]
