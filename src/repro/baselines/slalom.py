"""Slalom-style GPU outsourcing (paper §7.4 and related work).

Slalom (Tramèr & Boneh, ICLR'19) splits DNN inference between an SGX
enclave and an untrusted GPU: linear operations (matmul, conv) run on
the GPU, non-linear ones (ReLU etc.) inside the enclave, with Freivalds
checks verifying the GPU's results.  The paper positions secureTF
against it (§8) and discusses GPU support as future work with an
explicitly weakened threat model (§7.4): GPU-resident weights and layer
activations are *integrity-protected but no longer confidential*.

This runner wires the execution engine's GPU profile onto an otherwise
standard HW-mode Lite deployment so the trade-off is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.node import Node
from repro.enclave.sgx import SgxMode
from repro.runtime.scone import RuntimeConfig, SconeRuntime
from repro.tensor.engine import (
    DEFAULT_GPU_PROFILE,
    EngineProfile,
    GpuProfile,
    LITE_PROFILE,
)
from repro.tensor.lite import Interpreter, LiteModel


@dataclass
class SlalomRunner:
    """HW-mode inference with linear ops offloaded to an untrusted GPU."""

    runtime: SconeRuntime
    interpreter: Interpreter
    node: Node
    gpu: GpuProfile

    #: What the weakened threat model gives up (paper §7.4): the GPU
    #: sees linear-layer weights and activations in plaintext.
    CONFIDENTIALITY_CAVEAT = (
        "linear-layer weights and activations are visible to the GPU: "
        "confidentiality is not preserved for offloaded computation, "
        "only integrity (Freivalds verification)"
    )

    def classify(self, image: np.ndarray) -> int:
        return self.interpreter.classify(
            image[None] if image.ndim == 3 else image
        )

    def measure_latency(self, images: np.ndarray, runs: int) -> float:
        before = self.node.clock.now
        for index in range(runs):
            self.classify(images[index % len(images)])
        return (self.node.clock.now - before) / runs


def make_slalom_runner(
    node: Node,
    model: LiteModel,
    engine: EngineProfile = LITE_PROFILE,
    gpu: GpuProfile = DEFAULT_GPU_PROFILE,
    threads: int = 1,
    name: Optional[str] = None,
) -> SlalomRunner:
    """Build an enclave+GPU split deployment on ``node``."""
    runtime = SconeRuntime(
        RuntimeConfig(
            name=name or "slalom-tflite",
            mode=SgxMode.HW,
            binary_size=engine.binary_size,
            heap_size=32 * 1024 * 1024,
            fs_shield_enabled=False,
        ),
        node.vfs,
        node.cost_model,
        node.clock,
        cpu=node.cpu,
        rng=node.rng.child("slalom"),
    )
    interpreter = Interpreter(model, runtime=runtime, threads=threads)
    interpreter.allocate_tensors()
    # Attach the GPU to the interpreter's engine.
    interpreter.engine.gpu_profile = gpu
    return SlalomRunner(
        runtime=runtime, interpreter=interpreter, node=node, gpu=gpu
    )
