"""Graphene-SGX baseline: a library OS inside the enclave (Fig. 5).

Graphene follows Haven's principle (§5.3): put a whole library OS plus
stock glibc into the enclave so unmodified binaries run without a
modified libc.  Compared to SCONE the consequences the paper measures
are:

- a far larger enclave image (libOS + glibc ≈ tens of MB vs SCONE's
  ~1.6 MB libc), which competes with the model for EPC residency — this
  is why secureTF's lead grows from 1.03× at 42 MB to ~1.4× at 163 MB
  as the combined working set pushes past the EPC;
- synchronous enclave exits for system calls (no exit-less interface),
  plus in-enclave kernel emulation work per call.

The baseline reuses the SconeRuntime machinery with a Graphene-shaped
libc flavour, so every other condition is held equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro._sim.units import MiB
from repro.cluster.node import Node
from repro.enclave.sgx import SgxMode
from repro.runtime.libc import LibcFlavor
from repro.runtime.scone import RuntimeConfig, SconeRuntime
from repro.tensor.engine import EngineProfile, LITE_PROFILE
from repro.tensor.lite import Interpreter, LiteModel

#: Graphene's in-enclave stack: the libOS (PAL + shim) plus stock glibc.
GRAPHENE_LIBOS = LibcFlavor(
    name="graphene-libos",
    compute_factor=1.01,  # glibc-speed compute, small shim overhead
    binary_size=int(38.5 * MiB),  # ~26 MB libOS + 12.5 MB glibc
    supports_async_syscalls=False,  # synchronous ocall exits
    description="Graphene-SGX library OS with glibc inside the enclave",
    hot_bytes_per_op=int(2.5 * MiB),  # every call walks shim + PAL + glibc
)


@dataclass
class GrapheneRunner:
    """A classification process inside a Graphene-SGX enclave."""

    runtime: SconeRuntime
    interpreter: Interpreter
    node: Node

    def classify(self, image: np.ndarray) -> int:
        return self.interpreter.classify(
            image[None] if image.ndim == 3 else image
        )

    def measure_latency(self, images: np.ndarray, runs: int) -> float:
        before = self.node.clock.now
        for index in range(runs):
            self.classify(images[index % len(images)])
        return (self.node.clock.now - before) / runs


def make_graphene_runner(
    node: Node,
    model: LiteModel,
    engine: EngineProfile = LITE_PROFILE,
    threads: int = 1,
    name: Optional[str] = None,
) -> GrapheneRunner:
    """Build a Graphene-SGX TensorFlow Lite enclave on ``node``."""
    runtime = SconeRuntime(
        RuntimeConfig(
            name=name or "graphene-tflite",
            mode=SgxMode.HW,
            libc=GRAPHENE_LIBOS,
            binary_size=engine.binary_size,
            heap_size=32 * 1024 * 1024,
            fs_shield_enabled=False,
            async_syscalls=False,
        ),
        node.vfs,
        node.cost_model,
        node.clock,
        cpu=node.cpu,
        rng=node.rng.child("graphene"),
    )
    interpreter = Interpreter(model, runtime=runtime, threads=threads)
    interpreter.allocate_tensors()
    return GrapheneRunner(runtime=runtime, interpreter=interpreter, node=node)
