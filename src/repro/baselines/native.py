"""Native (non-enclave) inference runners: glibc and musl baselines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cluster.node import Node
from repro.enclave.sgx import SgxMode
from repro.errors import ConfigurationError
from repro.runtime.libc import GLIBC, MUSL, LibcFlavor
from repro.runtime.scone import RuntimeConfig, SconeRuntime
from repro.tensor.engine import EngineProfile, LITE_PROFILE
from repro.tensor.lite import Interpreter, LiteModel


@dataclass
class NativeRunner:
    """A classification process outside any enclave."""

    runtime: SconeRuntime
    interpreter: Interpreter
    node: Node

    def classify(self, image: np.ndarray) -> int:
        return self.interpreter.classify(
            image[None] if image.ndim == 3 else image
        )

    def measure_latency(self, images: np.ndarray, runs: int) -> float:
        """Mean simulated latency per classification over ``runs``."""
        before = self.node.clock.now
        for index in range(runs):
            self.classify(images[index % len(images)])
        return (self.node.clock.now - before) / runs


def make_native_runner(
    node: Node,
    model: LiteModel,
    libc: LibcFlavor = GLIBC,
    engine: EngineProfile = LITE_PROFILE,
    threads: int = 1,
    name: Optional[str] = None,
) -> NativeRunner:
    """Build a native TensorFlow Lite process on ``node``."""
    if libc not in (GLIBC, MUSL):
        raise ConfigurationError(
            f"native baselines run stock libcs, not {libc.name!r}"
        )
    runtime = SconeRuntime(
        RuntimeConfig(
            name=name or f"native-{libc.name}",
            mode=SgxMode.NATIVE,
            libc=libc,
            binary_size=engine.binary_size,
            heap_size=32 * 1024 * 1024,
            fs_shield_enabled=False,
        ),
        node.vfs,
        node.cost_model,
        node.clock,
        rng=node.rng.child(f"native-{libc.name}"),
    )
    interpreter = Interpreter(model, runtime=runtime, threads=threads)
    interpreter.allocate_tensors()
    return NativeRunner(runtime=runtime, interpreter=interpreter, node=node)
