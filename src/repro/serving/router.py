"""The front-end router: one admitted request → exactly one outcome.

The router is a network endpoint whose handler returns a **deferred
reply** (a :class:`~repro._sim.scheduler.Completion`): the client parks
on the network's reply leg while the router, entirely event-driven,
dispatches the request to a replica, hedges it, retries it, or expires
it.  The state machine per admitted request:

::

    arrive ── admission ──> pending ──┬── replica ok ────────> settle(ok)
      │           │                   ├── typed replica error > settle(err)
      │           └─ shed ──> OverloadError (raised, never queued)
      │                               ├── transport failure ──> retry
      ├─ deadline already past ──────>│    (different replica, while
      │     DeadlineExceededError     │     budget and replicas remain)
      │                               ├── hedge timer (p99-derived) fires
      │                               │     second attempt, first reply
      │                               │     wins, loser counted late
      │                               └── deadline event ─> settle(
      │                                     DeadlineExceededError)
      └─ duplicate id ──> cached outcome / the same pending completion

``settle`` runs **exactly once** per request — an idempotent guard
makes late replies observational only, and the Completion's own
resolve-twice error is the hard backstop.  Every admitted request is
therefore accounted for: ``admitted == ok + typed failures``, an
invariant the chaos tests assert.

Per-replica circuit breakers (shared :class:`~repro.cluster.retry
.BreakerRegistry` machinery) gate routing; their state census reaches
``collect_metrics`` through the same :class:`RecoveryStats` channel as
every other endpoint's.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._sim.clock import SimClock
from repro._sim.scheduler import Completion, Event, Scheduler
from repro.cluster.epoch import EpochLease
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.retry import BreakerRegistry, RecoveryStats
from repro.errors import (
    DeadlineExceededError,
    OverloadError,
    RpcError,
    RpcTransportError,
)
from repro.observability.metrics import WindowedHistogram
from repro.runtime import stats_registry
from repro.serving import messages
from repro.serving.admission import AdmissionController
from repro.serving.scoreboard import ReplicaScoreboard


@dataclass(frozen=True)
class RouterPolicy:
    """Routing, hedging, and retry knobs of the front end."""

    #: Max queued + executing requests per replica (the bounded queue).
    per_replica_limit: int = 8
    #: Max replicas one request may be attempted on (first try included).
    max_attempts: int = 3
    #: Hedging: issue a second attempt when the first has been out for
    #: the window-p99 latency (never sooner than ``hedge_min_delay``).
    hedge: bool = True
    hedge_min_delay: float = 0.05
    hedge_percentile: float = 99.0
    #: Sliding window feeding the hedge delay and the autoscaler's SLO.
    latency_window: int = 256
    #: At-most-once reply cache (duplicate client sends replay the
    #: recorded outcome instead of re-executing).
    dedup_capacity: int = 1024
    dedup_ttl: float = 60.0


@dataclass
class RouterStats:
    """Every admitted request lands in exactly one terminal counter."""

    completed_ok: int = 0
    failed_deadline: int = 0
    failed_transport: int = 0
    failed_other: int = 0
    retries: int = 0
    hedges_fired: int = 0
    hedges_won: int = 0
    late_replies: int = 0
    dedup_replays: int = 0

    @property
    def terminal(self) -> int:
        return (
            self.completed_ok
            + self.failed_deadline
            + self.failed_transport
            + self.failed_other
        )


class _PendingRequest:
    """One admitted request's in-router state."""

    __slots__ = (
        "request_id",
        "payload",
        "deadline",
        "admitted_at",
        "completion",
        "tried",
        "outstanding",
        "hedge_event",
        "deadline_event",
        "settled",
        "hedged",
        "hedge_addresses",
    )

    def __init__(
        self,
        request_id: str,
        payload: bytes,
        deadline: Optional[float],
        admitted_at: float,
    ) -> None:
        self.request_id = request_id
        self.payload = payload
        self.deadline = deadline
        self.admitted_at = admitted_at
        self.completion = Completion(f"serve:{request_id}")
        self.tried: List[str] = []
        self.outstanding = 0
        self.hedge_event: Optional[Event] = None
        self.deadline_event: Optional[Event] = None
        self.settled = False
        self.hedged = False
        self.hedge_addresses: List[str] = []


class FrontEndRouter:
    """The serving plane's front door (an endpoint on ``node``)."""

    def __init__(
        self,
        network: Network,
        node: Node,
        address: str,
        scoreboard: ReplicaScoreboard,
        admission: AdmissionController,
        policy: Optional[RouterPolicy] = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_timeout: float = 1.0,
    ) -> None:
        self.network = network
        self.node = node
        self.address = address
        self.scoreboard = scoreboard
        self.admission = admission
        self.policy = policy if policy is not None else RouterPolicy()
        self.stats = RouterStats()
        #: Per-replica breakers; census + trip counters flow into
        #: ``collect_metrics`` via the standard recovery-stats channel.
        self.recovery = RecoveryStats()
        stats_registry.register_recovery_stats(self.recovery, node.clock)
        self.breakers = BreakerRegistry(
            failure_threshold=breaker_failure_threshold,
            reset_timeout=breaker_reset_timeout,
            stats=self.recovery,
        )
        self.latency = WindowedHistogram(
            f"{address}.latency", window=self.policy.latency_window
        )
        #: Routing-epoch lease (set by the serving plane when fencing is
        #: on).  Every replica dispatch is stamped with it; a router that
        #: has been superseded keeps stamping its *stale* epoch — which
        #: is exactly what lets the replica-side guards fence it.
        self.fence: Optional[EpochLease] = None
        self._pending: Dict[str, _PendingRequest] = {}
        #: request id -> (settle time, ok?, reply bytes or error).
        self._replied: "OrderedDict[str, Tuple[float, bool, object]]" = OrderedDict()
        #: Decision log; :meth:`trace_bytes` canonicalizes it for the
        #: two-seeded-runs byte-identity check.
        self.events: List[str] = []
        network.register(
            address, node.clock, self._handle, syscalls=node.syscall_interface()
        )

    # -- scheduler access ------------------------------------------------

    @property
    def scheduler(self) -> Scheduler:
        return self.network.scheduler

    @property
    def clock(self) -> SimClock:
        return self.node.clock

    def record(self, event: str) -> None:
        self.events.append(event)

    def trace_bytes(self) -> bytes:
        """Canonical decision trace (compared across seeded runs)."""
        return "\n".join(self.events).encode()

    # -- endpoint handler ------------------------------------------------

    def _handle(self, raw: bytes) -> object:
        """The network endpoint: returns reply bytes, a deferred-reply
        Completion, or raises a typed error (shed)."""
        msg = messages.decode_request(raw)
        request_id = msg["id"]
        now = self.clock.now

        # At-most-once toward the client: a duplicate send of a settled
        # request replays the recorded outcome; a duplicate of a still-
        # pending one shares the pending completion (both deliveries get
        # their own reply leg when it settles).
        self._expire_replied(now)
        hit = self._replied.get(request_id)
        if hit is not None:
            self.stats.dedup_replays += 1
            _, ok, outcome = hit
            if ok:
                return outcome
            raise outcome  # type: ignore[misc]  # the recorded typed error
        pending = self._pending.get(request_id)
        if pending is not None:
            self.stats.dedup_replays += 1
            return pending.completion

        deadline = msg.get("deadline")
        if deadline is not None and now > deadline:
            # Expired on arrival: shed before spending a token or a
            # replica slot on work nobody is waiting for.
            self.admission.stats.shed_expired += 1
            self.record(f"expire-on-arrival {request_id} @{now:.6f}")
            raise DeadlineExceededError(
                f"request {request_id!r} arrived after its deadline "
                f"({now:.6f} > {deadline:.6f})"
            )

        self.admission.admit(now, self.scoreboard.has_capacity(self.policy.per_replica_limit))

        info = _PendingRequest(request_id, msg["payload"], deadline, now)
        self._pending[request_id] = info
        self.record(f"admit {request_id} @{now:.6f}")
        if deadline is not None:
            info.deadline_event = self.scheduler.schedule(
                deadline,
                lambda: self._expire(info, deadline),
                label=f"deadline:{request_id}",
            )
        if self.policy.hedge:
            delay = max(
                self.policy.hedge_min_delay,
                self.latency.percentile(self.policy.hedge_percentile),
            )
            if deadline is None or now + delay < deadline:
                info.hedge_event = self.scheduler.schedule(
                    now + delay,
                    lambda: self._hedge(info, now + delay),
                    label=f"hedge:{request_id}",
                )
        self._launch_attempt(info, hedge=False)
        return info.completion

    # -- attempts --------------------------------------------------------

    def _launch_attempt(self, info: _PendingRequest, hedge: bool) -> None:
        """Dispatch one attempt to the best untried routable replica."""
        if info.settled:
            return
        now = self.clock.now
        exclude = frozenset(info.tried)
        entry = None
        candidates_left = True
        while True:
            entry = self.scoreboard.pick(self.policy.per_replica_limit, exclude)
            if entry is None:
                candidates_left = False
                break
            if self.breakers.get(entry.address).allow(now):
                break
            self.recovery.breaker_rejections += 1
            exclude = exclude | {entry.address}
        if not candidates_left:
            # No replica to try: settle only if nothing is outstanding —
            # an earlier attempt may still come back with the answer.
            if info.outstanding == 0 and not hedge:
                self._settle_error(
                    info,
                    OverloadError(
                        f"no routable replica for {info.request_id!r} at "
                        f"t={now:.6f}"
                    ),
                )
            return

        address = entry.address
        info.tried.append(address)
        if hedge:
            info.hedge_addresses.append(address)
        self.scoreboard.on_dispatch(address)
        request = messages.encode_request(
            info.request_id,
            info.payload,
            deadline=info.deadline,
            fence=self.fence.stamp() if self.fence is not None else None,
        )
        self.record(
            f"{'hedge' if hedge else 'dispatch'} {info.request_id} -> "
            f"{address} @{now:.6f}"
        )
        try:
            attempt = self.network.call_async(
                self.address, self.clock, address, request
            )
        except RpcTransportError as exc:
            # Send-leg loss: charged synchronously, same as a socket
            # write failing under us.
            self._attempt_failed(info, address, exc)
            return
        info.outstanding += 1
        attempt.add_waiter(
            lambda completion: self._on_attempt_done(info, address, completion)
        )

    def _on_attempt_done(
        self, info: _PendingRequest, address: str, completion: Completion
    ) -> None:
        info.outstanding -= 1
        self.scoreboard.on_complete(address, ok=completion.error is None)
        if completion.error is not None:
            self._attempt_failed(info, address, completion.error, outstanding=True)
            return
        self.breakers.get(address).on_success()
        self.scoreboard.mark_healthy(address)
        if info.settled:
            self.stats.late_replies += 1
            self.record(f"late-reply {info.request_id} from {address}")
            return
        if address in info.hedge_addresses:
            self.stats.hedges_won += 1
        self.latency.observe(self.clock.now - info.admitted_at)
        self._settle_ok(info, completion.value)

    def _attempt_failed(
        self,
        info: _PendingRequest,
        address: str,
        error: BaseException,
        outstanding: bool = False,
    ) -> None:
        transport = isinstance(error, RpcTransportError)
        if transport:
            self.breakers.get(address).on_failure(self.clock.now)
            self.scoreboard.mark_degraded(address)
        if not outstanding:
            # Send-leg failure: the dispatch was counted, un-count it.
            self.scoreboard.on_complete(address, ok=False)
        if info.settled:
            self.stats.late_replies += 1
            return
        if not transport:
            # A typed remote error (replica-side deadline shed, replica
            # overload, an application failure): authoritative — the
            # replica *answered*; retrying elsewhere would risk a second
            # execution of non-idempotent work.
            self._settle_error(info, error)
            return
        now = self.clock.now
        budget_left = info.deadline is None or now < info.deadline
        if len(info.tried) < self.policy.max_attempts and budget_left:
            self.stats.retries += 1
            self.record(f"retry {info.request_id} after {address} @{now:.6f}")
            self._launch_attempt(info, hedge=False)
        elif info.outstanding == 0:
            self._settle_error(info, error)
        # else: another attempt is still in flight; let it decide.

    # -- timers ----------------------------------------------------------

    def _hedge(self, info: _PendingRequest, due: float) -> None:
        if info.settled or info.outstanding == 0:
            return
        self.clock.advance_to(due)
        info.hedged = True
        self.stats.hedges_fired += 1
        self.record(f"hedge-fire {info.request_id} @{due:.6f}")
        self._launch_attempt(info, hedge=True)

    def _expire(self, info: _PendingRequest, due: float) -> None:
        if info.settled:
            return
        self.clock.advance_to(due)
        self.record(f"deadline {info.request_id} @{due:.6f}")
        self._settle_error(
            info,
            DeadlineExceededError(
                f"request {info.request_id!r} missed its deadline "
                f"({due:.6f})"
            ),
        )

    # -- settlement (exactly once) ---------------------------------------

    def _settle_ok(self, info: _PendingRequest, reply: bytes) -> None:
        if info.settled:
            return
        self._finish(info)
        self.stats.completed_ok += 1
        self._replied[info.request_id] = (self.clock.now, True, reply)
        self.record(f"ok {info.request_id} @{self.clock.now:.6f}")
        info.completion.resolve(reply)

    def _settle_error(self, info: _PendingRequest, error: BaseException) -> None:
        if info.settled:
            return
        self._finish(info)
        if isinstance(error, DeadlineExceededError):
            self.stats.failed_deadline += 1
        elif isinstance(error, RpcTransportError):
            self.stats.failed_transport += 1
        else:
            self.stats.failed_other += 1
        self._replied[info.request_id] = (self.clock.now, False, error)
        self.record(
            f"fail {info.request_id} {type(error).__name__} "
            f"@{self.clock.now:.6f}"
        )
        info.completion.fail(error)

    def _finish(self, info: _PendingRequest) -> None:
        info.settled = True
        if info.hedge_event is not None:
            info.hedge_event.cancel()
            info.hedge_event = None
        if info.deadline_event is not None:
            info.deadline_event.cancel()
            info.deadline_event = None
        self._pending.pop(info.request_id, None)

    def _expire_replied(self, now: float) -> None:
        cap = self.policy.dedup_capacity
        ttl = self.policy.dedup_ttl
        while self._replied:
            request_id, (stamp, _, _) = next(iter(self._replied.items()))
            if len(self._replied) <= cap and now - stamp <= ttl:
                break
            del self._replied[request_id]

    # -- teardown --------------------------------------------------------

    def pending_count(self) -> int:
        return len(self._pending)

    def close(self) -> None:
        self.network.unregister(self.address)
        for info in list(self._pending.values()):
            self._settle_error(
                info, RpcError(f"router {self.address!r} shut down")
            )
