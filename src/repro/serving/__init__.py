"""The resilient secure inference serving plane (DESIGN.md §5h).

The paper deploys secureTF inference as an elastic cloud service
(challenge ❹): containers come and go, links lose messages, and load
arrives in diurnal waves — yet every client request must end in exactly
one reply or one *typed* error, never a silent drop and never a double
execution.  This package is that serving tier, built entirely from the
platform's existing primitives:

- :mod:`.router` — the front-end router enclave: admission control
  (bounded per-replica queues + token-bucket rate limiting, shedding
  with :class:`~repro.errors.OverloadError`), deadline propagation,
  health/load-aware replica routing, and hedged requests with
  first-reply-wins settlement.
- :mod:`.scoreboard` — the replica health/load scoreboard the router
  routes by (cold → attesting → healthy → degraded → draining /
  quarantined / failed).
- :mod:`.pool` — the attested replica pool: every replica is launched
  through the :class:`~repro.cluster.orchestrator.Orchestrator`, attests
  to CAS before it becomes routable, and drains (never drops) in-flight
  work on scale-in.
- :mod:`.autoscaler` — the SLO-driven controller: scrapes the router's
  sliding-window p99 and shed counters on a simulated period and drives
  ``scale_out`` / drain decisions.
- :mod:`.traffic` — closed-loop simulated clients with a diurnal load
  profile, each an activity on the event heap.
- :mod:`.service` — :class:`ServingPlane`, the one-call assembly of all
  of the above on a :class:`~repro.core.platform.SecureTFPlatform`.
"""

from repro.serving.admission import AdmissionController, AdmissionStats, TokenBucket
from repro.serving.autoscaler import AutoscalerPolicy, SloAutoscaler
from repro.serving.messages import (
    decode_reply,
    decode_request,
    encode_error,
    encode_ok,
    encode_request,
)
from repro.serving.pool import ReplicaPool
from repro.serving.router import FrontEndRouter, RouterPolicy, RouterStats
from repro.serving.scoreboard import ReplicaScoreboard, ReplicaState
from repro.serving.service import ServingPlane
from repro.serving.traffic import DiurnalProfile, TrafficGenerator, TrafficStats

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AutoscalerPolicy",
    "DiurnalProfile",
    "FrontEndRouter",
    "ReplicaPool",
    "ReplicaScoreboard",
    "ReplicaState",
    "RouterPolicy",
    "RouterStats",
    "ServingPlane",
    "SloAutoscaler",
    "TokenBucket",
    "TrafficGenerator",
    "TrafficStats",
    "decode_reply",
    "decode_request",
    "encode_error",
    "encode_ok",
    "encode_request",
]
