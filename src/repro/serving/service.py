"""One-call assembly of the resilient serving plane.

:class:`ServingPlane` wires the full deployment story on a
:class:`~repro.core.platform.SecureTFPlatform`:

1. the user attests CAS and registers one session whose policy admits
   the router measurement and the (single, shared) replica measurement;
2. the front-end router launches as an **attested container** on the
   control node and registers its endpoint;
3. the replica pool scales to its initial size — each replica attests
   to CAS before becoming routable;
4. the orchestrator watchdog supervises replica containers (restart
   budgets, quarantine) and syncs outcomes into the scoreboard every
   tick;
5. optionally, the SLO autoscaler starts scraping.

``run_traffic`` then drives a closed-loop client fleet (optionally
under a seeded chaos plan) and :meth:`check_invariants` asserts the
plane's core promise: every admitted request terminated in exactly one
reply or one typed error.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.faults import FaultPlan
from repro.cluster.orchestrator import ContainerSpec, Watchdog
from repro.core.inference import service_runtime_config
from repro.core.platform import PlatformConfig, SecureTFPlatform
from repro.enclave.sgx import SgxMode
from repro.serving.admission import AdmissionController, TokenBucket
from repro.serving.autoscaler import AutoscalerPolicy, SloAutoscaler
from repro.serving.pool import BackendFactory, ReplicaPool
from repro.serving.router import FrontEndRouter, RouterPolicy
from repro.serving.scoreboard import ReplicaScoreboard
from repro.serving.traffic import DiurnalProfile, TrafficGenerator, TrafficStats

ROUTER_ADDRESS = "router"


class ServingPlane:
    """A deployed, supervised, optionally autoscaled inference service."""

    def __init__(
        self,
        seed: int = 0,
        n_nodes: int = 4,
        initial_replicas: int = 2,
        mode: SgxMode = SgxMode.HW,
        session: str = "serving",
        router_policy: Optional[RouterPolicy] = None,
        rate_limit: float = 500.0,
        rate_burst: float = 50.0,
        service_time: float = 0.01,
        service_jitter: float = 0.2,
        backend_factory: Optional[BackendFactory] = None,
        watchdog_interval: float = 0.25,
        autoscaler_policy: Optional[AutoscalerPolicy] = None,
        fencing: bool = False,
        monitoring: bool = False,
        slo_interval: float = 0.25,
    ) -> None:
        self.platform = SecureTFPlatform(
            PlatformConfig(n_nodes=n_nodes, seed=seed, fencing=fencing)
        )
        self.platform.user_attest_cas()
        self.session = session
        self.scoreboard = ReplicaScoreboard()
        self.pool = ReplicaPool(
            self.platform,
            session,
            self.scoreboard,
            mode=mode,
            service_time=service_time,
            service_jitter=service_jitter,
            backend_factory=backend_factory,
        )
        router_config = service_runtime_config(
            ROUTER_ADDRESS, mode, fs_shield=False
        )
        # One session, two measurements: the router's and the replicas'.
        # Every future replica (scale-out or watchdog replacement) is
        # admitted by the same policy line — no per-container ceremony.
        self.platform.register_session(
            session, [self.pool.runtime_config(), router_config]
        )

        # The router is itself an attested enclave on the control node.
        control = self.platform.nodes[0]
        router_spec = ContainerSpec(
            name=ROUTER_ADDRESS, config_factory=lambda node, index: router_config
        )
        self.router_container = self.platform.orchestrator.launch(
            router_spec, node=control
        )
        self.router_identity = self.platform.provision_runtime(
            self.router_container.runtime, control, session
        )
        self.router = FrontEndRouter(
            self.platform.network,
            control,
            ROUTER_ADDRESS,
            self.scoreboard,
            AdmissionController(TokenBucket(rate_limit, rate_burst)),
            policy=router_policy,
        )
        if self.platform.epochs is not None:
            # The routing epoch: replicas guard it (in the pool's
            # handler); the router stamps it into every dispatch.
            self.router.fence = self.platform.epochs.grant(
                "router", holder=self.router_container.name
            )

        self.pool.scale_out(initial_replicas)
        self.pool.watch()
        self.watchdog: Watchdog = self.platform.orchestrator.start_watchdog(
            self.platform.scheduler, watchdog_interval, specs=[self.pool.spec]
        )
        self.autoscaler: Optional[SloAutoscaler] = None
        if autoscaler_policy is not None:
            self.autoscaler = SloAutoscaler(
                self.pool,
                self.router,
                self.platform.scheduler,
                control.clock,
                policy=autoscaler_policy,
            )
            self.autoscaler.start()
        #: Optional continuous SLO monitoring + flight recorder + incident
        #: pipeline.  Lazy import: a plane without monitoring never loads
        #: the observability package (byte-identity with pre-monitoring
        #: interpreters is the perf smoke's contract).
        self.monitoring = None
        if monitoring:
            from repro.observability.monitoring import (
                MonitoringSession,
                serving_slos,
            )

            self.monitoring = MonitoringSession(
                self.platform.scheduler,
                control.clock,
                specs=serving_slos(self.router, interval=slo_interval),
                interval=slo_interval,
                node_clocks=[
                    (node.clock, node.node_id) for node in self.platform.nodes
                ],
                metrics_probe=self._metrics_probe,
            )

    # -- chaos -----------------------------------------------------------

    def add_faults(self, plan: FaultPlan) -> None:
        """Compose a seeded chaos plan into the network's fault chain."""
        self.platform.network.faults.append(plan.inject)

    def replace_router(self, router_policy: Optional[RouterPolicy] = None) -> FrontEndRouter:
        """Router handoff, fenced: bump the routing epoch **before** the
        replacement takes the address.

        The old router object is returned still holding its (now stale)
        lease — any dispatch it makes from here on is rejected by the
        replica-side guards, which is the whole point: a partitioned
        front end that the control plane has given up on can no longer
        settle work through the pool.
        """
        old = self.router
        lease = (
            self.platform.epochs.grant("router", holder=f"{ROUTER_ADDRESS}-next")
            if self.platform.epochs is not None
            else None
        )
        # VIP flip: the well-known address moves to the replacement even
        # if the old holder never acknowledged losing it.
        if self.platform.network.is_registered(ROUTER_ADDRESS):
            self.platform.network.unregister(ROUTER_ADDRESS)
        control = self.platform.nodes[0]
        self.router = FrontEndRouter(
            self.platform.network,
            control,
            ROUTER_ADDRESS,
            self.scoreboard,
            old.admission,
            policy=router_policy if router_policy is not None else old.policy,
        )
        self.router.fence = lease
        if self.autoscaler is not None:
            self.autoscaler.router = self.router
        return old

    # -- traffic ---------------------------------------------------------

    def make_traffic(
        self,
        clients: int,
        duration: float,
        profile: Optional[DiurnalProfile] = None,
        deadline_budget: float = 1.0,
        client_node: int = -1,
    ) -> TrafficGenerator:
        return TrafficGenerator(
            self.platform.network,
            self.platform.nodes[client_node],
            ROUTER_ADDRESS,
            clients,
            duration,
            self.platform.rng.child("traffic"),
            profile=profile,
            deadline_budget=deadline_budget,
        )

    def run_traffic(
        self,
        clients: int,
        duration: float,
        profile: Optional[DiurnalProfile] = None,
        deadline_budget: float = 1.0,
    ) -> TrafficStats:
        """Drive a closed-loop client fleet to completion, then stop the
        recurring probes so the heap drains."""
        traffic = self.make_traffic(
            clients, duration, profile=profile, deadline_budget=deadline_budget
        )
        stats = traffic.run()
        self.quiesce()
        return stats

    def quiesce(self) -> None:
        """Stop recurring events (watchdog, autoscaler, SLO monitor) and
        drain."""
        self.watchdog.stop()
        if self.autoscaler is not None:
            self.autoscaler.stop()
        if self.monitoring is not None and self.monitoring.monitor is not None:
            self.monitoring.monitor.stop()
        self.platform.scheduler.run()

    def _metrics_probe(self):
        """Flattened platform counter snapshot for incident bundles.

        Process-global caches and real-wall-clock counters are scrubbed:
        bundles promise byte-identity across seeded runs, and those two
        families depend on what else the interpreter ran.
        """
        from repro.core.monitoring import collect_metrics
        from repro.observability.metrics import flatten_metrics

        flat = flatten_metrics(collect_metrics(self.platform).to_json())
        return {
            key: value
            for key, value in flat.items()
            if "aead_cache" not in key and "real_crypto" not in key
        }

    # -- invariants + trace ----------------------------------------------

    def check_invariants(self) -> None:
        """Every admitted request terminated in exactly one outcome, and
        nothing is still pending once the heap has drained."""
        admitted = self.router.admission.stats.admitted
        terminal = self.router.stats.terminal
        if admitted != terminal:
            raise AssertionError(
                f"{admitted} requests admitted but {terminal} terminal "
                "outcomes recorded: a request was dropped or double-counted"
            )
        if self.router.pending_count() != 0:
            raise AssertionError(
                f"{self.router.pending_count()} requests still pending "
                "after quiesce"
            )

    def trace_bytes(self) -> bytes:
        """Canonical decision trace of the whole plane (router + pool +
        autoscaler), byte-identical across runs with the same seed."""
        sections: List[bytes] = [
            b"[router]",
            self.router.trace_bytes(),
            b"[pool]",
            self.pool.trace_bytes(),
        ]
        if self.autoscaler is not None:
            sections.extend([b"[autoscaler]", self.autoscaler.trace_bytes()])
        return b"\n".join(sections)

    # -- teardown --------------------------------------------------------

    def close(self) -> None:
        self.quiesce()
        if self.monitoring is not None:
            self.monitoring.close()
            self.monitoring = None
        self.router.close()
        self.platform.orchestrator.stop_all()

    @property
    def time(self) -> float:
        return self.platform.time
