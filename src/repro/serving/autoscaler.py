"""SLO-driven autoscaling: scrape, decide, scale, repeat.

A recurring scheduler event (same shape as the orchestrator's
:class:`~repro.cluster.orchestrator.Watchdog`) scrapes the router every
``interval`` simulated seconds and compares what it sees against the
SLO:

- **scale out** when the sliding-window p99 breaches the SLO or the
  router shed load since the last tick — capacity is the only honest
  answer to either signal;
- **scale in** (drain, never kill) when utilization has fallen low,
  nothing was shed, and latency sits comfortably inside the SLO.

Scale-out cost rides the real attestation path: a new replica is
routable only after CAS has provisioned it, so the controller's
reaction time includes the cold-start → attested latency the bench
measures — exactly the elasticity trade-off of paper challenge ❹.
A cooldown keeps the controller from thrashing on its own transient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro._sim.clock import SimClock
from repro._sim.scheduler import Scheduler
from repro.errors import ConfigurationError
from repro.serving.pool import ReplicaPool
from repro.serving.router import FrontEndRouter


@dataclass(frozen=True)
class AutoscalerPolicy:
    """The controller's SLO and actuation bounds."""

    #: Sliding-window p99 latency target (simulated seconds).
    slo_p99: float = 0.2
    #: Seconds between scrapes.
    interval: float = 0.5
    min_replicas: int = 1
    max_replicas: int = 8
    #: Scale in when in-flight / capacity falls below this (and nothing
    #: was shed and p99 is under half the SLO).
    scale_in_utilization: float = 0.25
    #: Ticks to hold fire after any scaling action.
    cooldown_ticks: int = 2


class SloAutoscaler:
    """The serving plane's capacity controller (a recurring heap event)."""

    def __init__(
        self,
        pool: ReplicaPool,
        router: FrontEndRouter,
        scheduler: Scheduler,
        clock: SimClock,
        policy: Optional[AutoscalerPolicy] = None,
    ) -> None:
        self.pool = pool
        self.router = router
        self.policy = policy if policy is not None else AutoscalerPolicy()
        if self.policy.min_replicas < 1:
            raise ConfigurationError("autoscaler needs min_replicas >= 1")
        if self.policy.max_replicas < self.policy.min_replicas:
            raise ConfigurationError(
                "autoscaler needs max_replicas >= min_replicas"
            )
        self._scheduler = scheduler
        self._clock = clock
        self._stopped = True
        self._cooldown = 0
        self._last_sheds = 0
        self.ticks = 0
        self.scale_outs = 0
        self.scale_ins = 0
        #: Decision log (part of the serving plane's determinism trace).
        self.events: List[str] = []

    def record(self, event: str) -> None:
        self.events.append(event)

    def trace_bytes(self) -> bytes:
        return "\n".join(self.events).encode()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self._stopped = False
        self._schedule_next(self._clock.now + self.policy.interval)

    def stop(self) -> None:
        self._stopped = True

    def _schedule_next(self, due: float) -> None:
        self._scheduler.schedule(
            due, lambda: self._tick(due), label="autoscaler:tick"
        )

    # -- one control decision -------------------------------------------

    def _sheds_delta(self) -> int:
        total = (
            self.router.admission.stats.shed_rate
            + self.router.admission.stats.shed_capacity
        )
        delta = total - self._last_sheds
        self._last_sheds = total
        return delta

    def _tick(self, due: float) -> None:
        if self._stopped:
            return
        self._clock.advance_to(due)
        self.ticks += 1
        self._schedule_next(due + self.policy.interval)

        p99 = self.router.latency.percentile(99)
        sheds = self._sheds_delta()
        replicas = self.pool.size()
        capacity = max(1, replicas * self.router.policy.per_replica_limit)
        utilization = self.router.scoreboard.total_in_flight() / capacity

        if self._cooldown > 0:
            self._cooldown -= 1
            return
        policy = self.policy
        if (sheds > 0 or p99 > policy.slo_p99) and replicas < policy.max_replicas:
            self.pool.scale_out(1)
            self.scale_outs += 1
            self._cooldown = policy.cooldown_ticks
            self.record(
                f"scale-out @{due:.6f} replicas={replicas + 1} "
                f"p99={p99:.6f} sheds={sheds}"
            )
        elif (
            sheds == 0
            and p99 < policy.slo_p99 / 2
            and utilization < policy.scale_in_utilization
            and replicas > policy.min_replicas
        ):
            drained = self.pool.drain_one()
            if drained is not None:
                self.scale_ins += 1
                self._cooldown = policy.cooldown_ticks
                self.record(
                    f"scale-in @{due:.6f} drain={drained} "
                    f"p99={p99:.6f} util={utilization:.3f}"
                )
