"""The replica scoreboard: health + load state the router routes by.

Each replica walks a lifecycle — ``COLD`` (container starting) →
``ATTESTING`` (proving itself to CAS) → ``HEALTHY`` — and may detour
through ``DEGRADED`` (recent transport failure; still routable but
deprioritized), ``DRAINING`` (scale-in: finishes in-flight work, takes
no new), ``QUARANTINED`` (restart budget exhausted) or ``FAILED``.
Only HEALTHY and DEGRADED replicas are routable, and among those the
router picks **least-loaded with deterministic tie-breaking**: the
ordering key is ``(state rank, in-flight, address)``, a pure function
of scoreboard state, so seeded runs route identically.

The scoreboard is fed from three directions: the pool's lifecycle hooks
(launch / attest / drain / crash), the router's per-attempt outcomes
(success heals DEGRADED, transport failure sets it), and the
orchestrator watchdog via :meth:`ReplicaPool.reconcile
<repro.serving.pool.ReplicaPool.reconcile>` (restart/quarantine
decisions land here so routing reflects supervision).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ClusterError


class ReplicaState(enum.Enum):
    COLD = "cold"
    ATTESTING = "attesting"
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DRAINING = "draining"
    QUARANTINED = "quarantined"
    FAILED = "failed"
    STOPPED = "stopped"


#: States a new request may be routed to, ranked (lower = preferred).
_ROUTABLE_RANK = {ReplicaState.HEALTHY: 0, ReplicaState.DEGRADED: 1}


@dataclass
class ReplicaEntry:
    address: str
    state: ReplicaState = ReplicaState.COLD
    in_flight: int = 0
    served: int = 0
    failures: int = 0
    #: Simulated cold-start → attested latency (None until attested).
    cold_start_latency: Optional[float] = None
    #: State transition log, for tests and the event trace.
    transitions: List[str] = field(default_factory=list)


class ReplicaScoreboard:
    """Insertion-ordered replica registry with load-aware picking."""

    def __init__(self) -> None:
        self._entries: Dict[str, ReplicaEntry] = {}

    # -- membership ------------------------------------------------------

    def add(self, address: str, state: ReplicaState = ReplicaState.COLD) -> ReplicaEntry:
        if address in self._entries:
            raise ClusterError(f"replica {address!r} is already on the scoreboard")
        entry = ReplicaEntry(address=address, state=state)
        entry.transitions.append(state.value)
        self._entries[address] = entry
        return entry

    def remove(self, address: str) -> None:
        self._entries.pop(address, None)

    def get(self, address: str) -> Optional[ReplicaEntry]:
        return self._entries.get(address)

    def entries(self) -> List[ReplicaEntry]:
        return list(self._entries.values())

    def addresses(self) -> List[str]:
        return list(self._entries)

    # -- state -----------------------------------------------------------

    def set_state(self, address: str, state: ReplicaState) -> None:
        entry = self._entries.get(address)
        if entry is None:
            return
        if entry.state is not state:
            entry.state = state
            entry.transitions.append(state.value)

    def mark_degraded(self, address: str) -> None:
        """A transport failure: deprioritize, but keep routable — one
        lost message must not black-hole a healthy replica."""
        entry = self._entries.get(address)
        if entry is not None and entry.state is ReplicaState.HEALTHY:
            self.set_state(address, ReplicaState.DEGRADED)

    def mark_healthy(self, address: str) -> None:
        """A successful reply heals DEGRADED back to HEALTHY."""
        entry = self._entries.get(address)
        if entry is not None and entry.state is ReplicaState.DEGRADED:
            self.set_state(address, ReplicaState.HEALTHY)

    # -- load ------------------------------------------------------------

    def on_dispatch(self, address: str) -> None:
        entry = self._entries.get(address)
        if entry is not None:
            entry.in_flight += 1

    def on_complete(self, address: str, ok: bool) -> None:
        entry = self._entries.get(address)
        if entry is None:
            return
        entry.in_flight = max(0, entry.in_flight - 1)
        if ok:
            entry.served += 1
        else:
            entry.failures += 1

    def in_flight(self, address: str) -> int:
        entry = self._entries.get(address)
        return entry.in_flight if entry is not None else 0

    def total_in_flight(self) -> int:
        return sum(e.in_flight for e in self._entries.values())

    # -- routing ---------------------------------------------------------

    def routable(self, per_replica_limit: int, exclude: frozenset = frozenset()) -> List[ReplicaEntry]:
        """Replicas a new attempt may go to, in scoreboard order."""
        return [
            e
            for e in self._entries.values()
            if e.state in _ROUTABLE_RANK
            and e.in_flight < per_replica_limit
            and e.address not in exclude
        ]

    def pick(
        self, per_replica_limit: int, exclude: frozenset = frozenset()
    ) -> Optional[ReplicaEntry]:
        """Least-loaded routable replica, deterministic tie-break.

        Key = (state rank, in-flight, address): HEALTHY beats DEGRADED,
        lighter beats heavier, and the address string settles exact
        ties — a pure function of scoreboard state, no RNG, no identity
        ordering.
        """
        candidates = self.routable(per_replica_limit, exclude)
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda e: (_ROUTABLE_RANK[e.state], e.in_flight, e.address),
        )

    def has_capacity(self, per_replica_limit: int) -> bool:
        return bool(self.routable(per_replica_limit))

    def counts(self) -> Dict[str, int]:
        """State → replica count (for metrics and the autoscaler)."""
        out: Dict[str, int] = {}
        for entry in self._entries.values():
            out[entry.state.value] = out.get(entry.state.value, 0) + 1
        return out
