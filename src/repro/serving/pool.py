"""The attested replica pool: orchestrated, provisioned, drainable.

Every replica is launched through the
:class:`~repro.cluster.orchestrator.Orchestrator` (round-robin
placement, restart budgets, quarantine) and becomes routable only after
it has **attested to CAS and been provisioned** — the pool's
``on_start`` hook runs the same attestation path elastic scaling rides
in the paper (challenge ❹), measures the cold-start → attested latency
the bench reports, registers the replica's endpoint, and flips its
scoreboard state to HEALTHY.  A replacement container launched by the
watchdog re-runs the identical hook: a restarted enclave has fresh
memory and must re-prove itself before it serves a single request.

Scale-in **drains**: the replica leaves the routable set immediately
(state DRAINING) but its endpoint stays registered until the router's
in-flight count for it reaches zero — admitted work finishes; it is
never killed mid-request.

:meth:`ReplicaPool.reconcile` runs on every watchdog tick (registered
as an orchestrator service) and syncs supervision outcomes into the
scoreboard: restarted lineages lose their dead entry, exhausted ones
show up QUARANTINED.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro._sim import probe as _probe
from repro.cluster.container import Container
from repro.cluster.orchestrator import ContainerSpec, Orchestrator
from repro.core.inference import service_runtime_config
from repro.core.platform import SecureTFPlatform
from repro.enclave.sgx import SgxMode
from repro.errors import ClusterError, DeadlineExceededError, RpcTransportError
from repro.serving import messages
from repro.serving.scoreboard import ReplicaScoreboard, ReplicaState

#: backend(request_payload) -> reply_payload, charging the replica's
#: clock for whatever compute it models.
Backend = Callable[[bytes], bytes]

#: Builds a replica's backend once it is attested (``identity`` is the
#: CAS-provisioned identity; a real model service builds its interpreter
#: here, behind the fs shield).
BackendFactory = Callable[[Container, object], Backend]

#: Per-replica at-most-once window (duplicate *deliveries* of one
#: request replay the recorded reply instead of re-executing).
REPLICA_DEDUP_CAPACITY = 512
REPLICA_DEDUP_TTL = 30.0


class ReplicaPool:
    """An elastic pool of attested inference replicas."""

    def __init__(
        self,
        platform: SecureTFPlatform,
        session: str,
        scoreboard: ReplicaScoreboard,
        spec_name: str = "replica",
        mode: SgxMode = SgxMode.HW,
        service_time: float = 0.01,
        service_jitter: float = 0.2,
        backend_factory: Optional[BackendFactory] = None,
        drain_poll: float = 0.05,
    ) -> None:
        self.platform = platform
        self.session = session
        self.scoreboard = scoreboard
        self.spec_name = spec_name
        self.mode = mode
        self.service_time = service_time
        self.service_jitter = service_jitter
        self.drain_poll = drain_poll
        self._backend_factory = backend_factory
        #: All replicas share one runtime config name → one measurement
        #: → one CAS policy line admits every replica, present and
        #: future (that is what makes elastic scaling practical).
        self.spec = ContainerSpec(
            name=spec_name,
            config_factory=lambda node, index: self.runtime_config(),
        )
        #: Cold-start → attested latency per attested replica, in
        #: attestation order (the bench's third headline metric).
        self.cold_starts: List[float] = []
        self.events: List[str] = []
        self._identities: Dict[str, object] = {}
        platform.orchestrator.on_start.append(self._on_container_start)

    def runtime_config(self):
        """The (single) runtime config every replica runs — register the
        CAS session policy against exactly this."""
        return service_runtime_config(self.spec_name, self.mode, fs_shield=False)

    @property
    def orchestrator(self) -> Orchestrator:
        return self.platform.orchestrator

    def record(self, event: str) -> None:
        self.events.append(event)

    def trace_bytes(self) -> bytes:
        return "\n".join(self.events).encode()

    # -- lifecycle hook --------------------------------------------------

    def _on_container_start(self, container: Container) -> None:
        if not container.name.startswith(f"{self.spec_name}-"):
            return  # another service's container
        node = container.node
        self.scoreboard.add(container.name, state=ReplicaState.ATTESTING)
        attest_from = node.clock.now
        identity = self.platform.provision_runtime(
            container.runtime, node, self.session
        )
        self._identities[container.name] = identity
        # Cold start = container image setup (already charged by
        # Container.start) + the attestation/provisioning round-trips
        # that just ran.  Measured here so watchdog-launched
        # replacements are timed identically to scale-outs.
        cold = self.platform.cost_model.container_start_cost + (
            node.clock.now - attest_from
        )
        entry = self.scoreboard.get(container.name)
        if entry is not None:
            entry.cold_start_latency = cold
        self.cold_starts.append(cold)
        backend = (
            self._backend_factory(container, identity)
            if self._backend_factory is not None
            else self._default_backend(container)
        )
        self.platform.network.register(
            container.name,
            node.clock,
            self._make_handler(container, backend),
            syscalls=node.syscall_interface(),
        )
        self.scoreboard.set_state(container.name, ReplicaState.HEALTHY)
        self.record(f"attested {container.name} cold_start={cold:.6f}")

    def _default_backend(self, container: Container) -> Backend:
        """A service-time model: charge the replica's clock a jittered
        per-request cost and echo the payload."""
        rng = container.node.rng.child(f"svc-{container.name}")
        clock = container.node.clock
        base = self.service_time
        jitter = self.service_jitter

        def backend(payload: bytes) -> bytes:
            clock.advance(base * (1.0 + jitter * rng.uniform(-1.0, 1.0)))
            return payload

        return backend

    def _make_handler(self, container: Container, backend: Backend):
        clock = container.node.clock
        dedup: "OrderedDict[str, Tuple[float, bytes]]" = OrderedDict()
        # Each replica is an acceptor for the routing epoch: requests
        # dispatched by a router that has since been superseded carry a
        # stale epoch and are rejected before the backend runs — a
        # zombie router cannot settle work through this replica.
        guard = (
            self.platform.epochs.make_guard("router", name=container.name)
            if self.platform.epochs is not None
            else None
        )

        def handler(raw: bytes) -> bytes:
            if not container.running:
                raise RpcTransportError(
                    f"replica {container.name!r} is not running"
                )
            msg = messages.decode_request(raw)
            request_id = msg["id"]
            now = clock.now
            while dedup:
                key, (stamp, _) = next(iter(dedup.items()))
                if (
                    len(dedup) <= REPLICA_DEDUP_CAPACITY
                    and now - stamp <= REPLICA_DEDUP_TTL
                ):
                    break
                del dedup[key]
            hit = dedup.get(request_id)
            if hit is not None:
                return hit[1]  # duplicate delivery: replay, don't re-run
            if guard is not None:
                fence = msg.get("fence")
                epoch = fence.get("epoch") if isinstance(fence, dict) else None
                guard.check(epoch if isinstance(epoch, int) else None)
            deadline = msg.get("deadline")
            if deadline is not None and now > deadline:
                # Server-side shed: the budget died in flight or in
                # queue; answer with the typed error instead of burning
                # enclave time on a reply nobody is waiting for.
                raise DeadlineExceededError(
                    f"deadline expired at replica {container.name!r} "
                    f"({now:.6f} > {deadline:.6f})"
                )
            reply = messages.encode_ok(
                request_id, backend(msg["payload"]), container.name
            )
            dedup[request_id] = (clock.now, reply)
            return reply

        return handler

    # -- membership ------------------------------------------------------

    def containers(self) -> List[Container]:
        return self.orchestrator.replicas(self.spec_name)

    def container(self, address: str) -> Optional[Container]:
        for candidate in self.orchestrator.all_containers():
            if candidate.name == address:
                return candidate
        return None

    def size(self) -> int:
        return len(self.containers())

    # -- elasticity ------------------------------------------------------

    def scale_out(self, count: int = 1) -> List[Container]:
        """Launch ``count`` fresh replicas (each attests before joining)."""
        launched = []
        for _ in range(count):
            launched.append(self.orchestrator.launch(self.spec))
        return launched

    def drain_one(self) -> Optional[str]:
        """Begin draining the most recently launched routable replica.

        The replica stops taking new work immediately; a scheduler
        activity polls its in-flight count and stops the container only
        once it reaches zero.  Returns the draining address (or None if
        nothing was drainable).
        """
        drainable = [
            e
            for e in self.scoreboard.entries()
            if e.state in (ReplicaState.HEALTHY, ReplicaState.DEGRADED)
        ]
        if not drainable:
            return None
        address = drainable[-1].address
        self.scoreboard.set_state(address, ReplicaState.DRAINING)
        self.record(f"drain {address}")
        container = self.container(address)
        clock = container.node.clock if container is not None else None

        def drain_activity():
            while self.scoreboard.in_flight(address) > 0:
                yield self.platform.scheduler.timer(
                    clock, self.drain_poll, label=f"drain-poll:{address}"
                )
            self.platform.network.unregister(address)
            if container is not None and container.running:
                container.stop()
            self.scoreboard.set_state(address, ReplicaState.STOPPED)
            self.record(f"drained {address}")

        self.platform.scheduler.spawn(
            drain_activity(), name=f"drain:{address}", clock=clock
        )
        return address

    def scale_to(self, target: int) -> None:
        """Elastic scaling with drain-on-shrink semantics."""
        if target < 0:
            raise ClusterError(f"cannot scale to {target} replicas")
        current = self.size()
        if target > current:
            self.scale_out(target - current)
        else:
            for _ in range(current - target):
                if self.drain_one() is None:
                    break

    # -- chaos + supervision ---------------------------------------------

    def crash(self, address: str) -> None:
        """Kill one replica (no graceful teardown): the container fails,
        the endpoint vanishes, the scoreboard records it.  The watchdog's
        next tick restarts (or quarantines) the lineage."""
        container = self.container(address)
        if container is None:
            raise ClusterError(f"no replica named {address!r}")
        if container.running:
            container.fail()
        self.platform.network.unregister(address)
        self.scoreboard.set_state(address, ReplicaState.FAILED)
        self.record(f"crash {address}")
        _probe.flight(container.node.clock, "crash", address, "replica failed")
        _probe.incident(
            "replica.crash", address, clock=container.node.clock,
            detail="replica killed without graceful teardown",
        )

    def reconcile(self) -> None:
        """Sync supervision outcomes into the scoreboard (watchdog tick).

        Dead entries whose lineage was restarted disappear (the
        replacement registered itself via the start hook under a fresh
        name); lineages that exhausted their budget show QUARANTINED.
        """
        quarantined = {
            c.name for c in self.orchestrator.quarantined(self.spec_name)
        }
        running = {c.name for c in self.containers()}
        for entry in self.scoreboard.entries():
            if entry.address in quarantined:
                if entry.state is not ReplicaState.QUARANTINED:
                    self.scoreboard.set_state(
                        entry.address, ReplicaState.QUARANTINED
                    )
                    self.record(f"quarantined {entry.address}")
                    _probe.flight(
                        None, "watchdog", entry.address, "scoreboard quarantine"
                    )
            elif entry.state is ReplicaState.FAILED and entry.address not in running:
                self.scoreboard.remove(entry.address)
                self.record(f"reap {entry.address}")

    def watch(self) -> None:
        """Register pool supervision with the orchestrator's watchdog:
        container restarts are handled by the watchdog's spec sweep; the
        scoreboard sync rides the service-probe pass of the same tick."""
        self.orchestrator.register_service(
            f"{self.spec_name}-scoreboard",
            probe=self._sync_probe,
            recover=lambda: None,
        )

    def _sync_probe(self) -> bool:
        self.reconcile()
        return True  # the sync itself never needs "recovery"
