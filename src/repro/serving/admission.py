"""Admission control: shed load *explicitly* at the front door.

An overloaded secure service has exactly two honest choices: queue the
request (bounded — unbounded queues just convert overload into timeout
storms) or refuse it with a typed error the client can act on.  This
module implements the refuse half:

- :class:`TokenBucket` — a rate limiter refilled by **simulated time**,
  so a traffic spike above the provisioned rate sheds deterministically
  at the same simulated instants every seeded run.
- :class:`AdmissionController` — the router's front door: rate check
  first (cheapest), then the capacity check the caller derives from the
  replica scoreboard.  Every shed raises
  :class:`~repro.errors.OverloadError` and increments a counter — load
  shedding is an observable decision, never a silent drop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, OverloadError


class TokenBucket:
    """A token bucket refilled continuously by simulated seconds."""

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst < 1:
            raise ConfigurationError(
                f"token bucket needs rate > 0 and burst >= 1: rate={rate}, "
                f"burst={burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._refilled_at = 0.0

    def allow(self, now: float) -> bool:
        """Spend one token at simulated time ``now`` if one is available."""
        if now > self._refilled_at:
            self._tokens = min(
                self.burst, self._tokens + (now - self._refilled_at) * self.rate
            )
            self._refilled_at = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


@dataclass
class AdmissionStats:
    """Front-door accounting: every arrival lands in exactly one bucket."""

    admitted: int = 0
    shed_rate: int = 0       # token bucket empty
    shed_capacity: int = 0   # every routable replica's queue is full
    shed_expired: int = 0    # deadline already passed on arrival

    @property
    def arrivals(self) -> int:
        return self.admitted + self.shed_rate + self.shed_capacity + self.shed_expired


class AdmissionController:
    """The router's front door: rate limit, then capacity."""

    def __init__(self, bucket: TokenBucket) -> None:
        self.bucket = bucket
        self.stats = AdmissionStats()

    def admit(self, now: float, has_capacity: bool) -> None:
        """Admit one arrival or raise :class:`OverloadError`.

        Rate is checked before capacity so a flood beyond the
        provisioned rate is shed without consuming queue headroom that
        conforming traffic could use.
        """
        if not self.bucket.allow(now):
            self.stats.shed_rate += 1
            raise OverloadError(
                f"rate limit exceeded at t={now:.6f} (bucket empty)"
            )
        if not has_capacity:
            self.stats.shed_capacity += 1
            raise OverloadError(
                f"all replica queues full at t={now:.6f}"
            )
        self.stats.admitted += 1
