"""Wire format of the serving plane (canonically encoded envelopes).

Requests carry their **absolute deadline** so every hop — router
admission, replica dispatch, the retry loop — can decide locally whether
work is still worth doing; replies are either a payload or a *typed*
error (the error class name travels in the envelope and is resolved
back to the real exception type on the client, exactly like
:mod:`repro.cluster.rpc` does for its remote errors).  Everything is
:mod:`repro.crypto.encoding` — deterministic bytes, so seeded runs are
byte-identical end to end.
"""

from __future__ import annotations

from typing import Optional

import repro.errors as _errors
from repro.crypto import encoding
from repro.errors import FencingError, RpcError

#: Typed serving errors resolvable from a reply envelope.  Built from
#: the error module's namespace so a newly added RpcError subclass is
#: automatically round-trippable.
_ERROR_TYPES = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, Exception)
}


def encode_request(
    request_id: str,
    payload: bytes,
    deadline: Optional[float] = None,
    fence: Optional[dict] = None,
) -> bytes:
    """A client → router (or router → replica) inference request.

    ``fence`` is the sending leader's epoch stamp
    (``EpochLease.stamp()``): on the router → replica hop it proves the
    dispatching router still holds the routing epoch, so a replica never
    executes work for a router that was already superseded.  Omitted
    fields keep the envelope byte-identical to a pre-fencing build.
    """
    msg = {"kind": "req", "id": request_id, "payload": payload}
    if deadline is not None:
        msg["deadline"] = float(deadline)
    if fence is not None:
        msg["fence"] = fence
    return encoding.encode(msg)


def decode_request(raw: bytes) -> dict:
    msg = encoding.decode(raw)
    if not isinstance(msg, dict) or msg.get("kind") != "req":
        raise RpcError(f"malformed serving request: {msg!r}")
    if not isinstance(msg.get("id"), str) or not isinstance(msg.get("payload"), bytes):
        raise RpcError("serving request is missing id/payload")
    deadline = msg.get("deadline")
    if deadline is not None and not isinstance(deadline, float):
        raise RpcError(f"serving request deadline must be a float: {deadline!r}")
    return msg


def encode_ok(request_id: str, payload: bytes, replica: str) -> bytes:
    """A successful reply, stamped with the replica that served it."""
    return encoding.encode(
        {"kind": "ok", "id": request_id, "payload": payload, "replica": replica}
    )


def encode_error(request_id: str, error: BaseException) -> bytes:
    """A typed error reply (class name + message travel on the wire)."""
    return encoding.encode(
        {
            "kind": "err",
            "id": request_id,
            "error": type(error).__name__,
            "message": str(error),
        }
    )


def decode_reply(raw: bytes) -> dict:
    """Decode a reply envelope; typed error replies **raise**.

    The raised exception is the same class the far side raised (falling
    back to :class:`~repro.errors.RpcError` for unknown names), so
    client code handles remote sheds exactly like local ones.
    """
    msg = encoding.decode(raw)
    if not isinstance(msg, dict):
        raise RpcError(f"malformed serving reply: {msg!r}")
    kind = msg.get("kind")
    if kind == "ok":
        return msg
    if kind == "err":
        error_type = _ERROR_TYPES.get(msg.get("error", ""), RpcError)
        # Raisable remote types: RPC errors, plus the fencing branch —
        # a FencedError must survive the hop *as itself*, because the
        # retry layer's authoritative-never-retry decision keys on the
        # type (downgrading it to RpcError would make it look like a
        # transient failure worth re-executing).
        if not issubclass(error_type, (RpcError, FencingError)):
            error_type = RpcError
        raise error_type(msg.get("message", "remote serving error"))
    raise RpcError(f"unknown serving reply kind: {kind!r}")
