"""Closed-loop traffic: thousands of clients as heap activities.

Each simulated client is a coroutine activity on the global scheduler:
think (an exponential draw scaled by the diurnal profile), send one
request with a propagated deadline, park on the reply, classify the
outcome, repeat.  All clients share the client node's clock — the event
heap executes events in global time order, so the clock reads exactly
the reply time at each resume and per-request latency is measured
precisely even on a shared clock.

Outcome accounting is total: every request a client sends terminates in
exactly one of {ok, overload-shed, deadline-exceeded, transport error,
other typed error} — the client-side half of the serving plane's
no-silent-drops invariant (the router's
:class:`~repro.serving.router.RouterStats` is the server-side half).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro._sim.rng import DeterministicRng
from repro._sim.scheduler import Completion
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadError,
    RpcError,
    RpcTransportError,
)
from repro.observability.metrics import Histogram
from repro.serving import messages


@dataclass(frozen=True)
class DiurnalProfile:
    """Think-time scaling over a repeating day: (duration, factor) phases.

    ``factor < 1`` means *shorter* think times — a load spike.  The
    default models a quiet phase, a ramp, and a rush-hour spike.
    """

    base_think: float = 0.5
    phases: Sequence[Tuple[float, float]] = ((4.0, 1.0), (2.0, 0.5), (2.0, 0.2))

    def cycle(self) -> float:
        return sum(duration for duration, _ in self.phases)

    def factor_at(self, t: float) -> float:
        position = t % self.cycle()
        for duration, factor in self.phases:
            if position < duration:
                return factor
            position -= duration
        return self.phases[-1][1]

    def think(self, t: float, rng: DeterministicRng) -> float:
        """One exponential think-time draw at simulated time ``t``."""
        u = rng.uniform(0.0, 1.0)  # in [0, 1): log(1 - u) is finite
        return -self.base_think * self.factor_at(t) * math.log(1.0 - u)


@dataclass
class TrafficStats:
    """Client-side outcome accounting (every send lands in one bucket)."""

    sent: int = 0
    ok: int = 0
    overload: int = 0
    deadline: int = 0
    transport: int = 0
    other_errors: int = 0
    latency: Histogram = field(default_factory=lambda: Histogram("client.latency"))

    @property
    def outcomes(self) -> int:
        return self.ok + self.overload + self.deadline + self.transport + self.other_errors

    def assert_accounted(self) -> None:
        """The no-silent-drops invariant, client side."""
        if self.sent != self.outcomes:
            raise AssertionError(
                f"{self.sent} requests sent but {self.outcomes} outcomes "
                "recorded: something was silently dropped"
            )


class TrafficGenerator:
    """A fleet of closed-loop clients driving the serving plane."""

    def __init__(
        self,
        network: Network,
        node: Node,
        router_address: str,
        clients: int,
        duration: float,
        rng: DeterministicRng,
        profile: Optional[DiurnalProfile] = None,
        deadline_budget: float = 1.0,
        payload: bytes = b"\x00" * 64,
    ) -> None:
        if clients < 1:
            raise ConfigurationError(f"need at least one client: {clients}")
        if duration <= 0:
            raise ConfigurationError(f"duration must be positive: {duration}")
        self.network = network
        self.node = node
        self.router_address = router_address
        self.clients = clients
        self.duration = duration
        self.profile = profile if profile is not None else DiurnalProfile()
        self.deadline_budget = deadline_budget
        self.payload = payload
        self._rng = rng
        self.stats = TrafficStats()

    def start(self) -> List[Completion]:
        """Spawn every client activity; completions resolve at client exit."""
        return [
            self.network.scheduler.spawn(
                self._client(index),
                name=f"client-{index}",
                clock=self.node.clock,
            )
            for index in range(self.clients)
        ]

    def run(self) -> TrafficStats:
        """Drive the simulation until every client finished.

        Parks on each client's completion rather than draining the heap:
        recurring events (watchdog probes, autoscaler ticks) reschedule
        themselves forever, so "heap empty" never comes while they run.
        """
        completions = self.start()
        for completion in completions:
            # run_until re-raises any client programming error.
            self.network.scheduler.run_until(completion)
        self.stats.assert_accounted()
        return self.stats

    # -- one client ------------------------------------------------------

    def _client(self, index: int):
        rng = self._rng.child(f"client-{index}")
        clock = self.node.clock
        scheduler = self.network.scheduler
        stats = self.stats
        address = f"client-{index}"
        # Desynchronized start: clients phase in across one base think
        # time instead of stampeding at t=0.
        yield scheduler.timer(
            clock, rng.uniform(0.0, self.profile.base_think), label=f"warmup:{address}"
        )
        sequence = 0
        while clock.now < self.duration:
            yield scheduler.timer(
                clock, self.profile.think(clock.now, rng), label=f"think:{address}"
            )
            if clock.now >= self.duration:
                break
            request_id = f"{address}/{sequence}"
            sequence += 1
            sent_at = clock.now
            stats.sent += 1
            request = messages.encode_request(
                request_id, self.payload, deadline=sent_at + self.deadline_budget
            )
            try:
                completion = self.network.call_async(
                    address, clock, self.router_address, request
                )
            except RpcTransportError:
                stats.transport += 1
                continue
            try:
                raw = yield completion
            except OverloadError:
                stats.overload += 1
                continue
            except DeadlineExceededError:
                stats.deadline += 1
                continue
            except RpcTransportError:
                stats.transport += 1
                continue
            except RpcError:
                stats.other_errors += 1
                continue
            try:
                messages.decode_reply(raw)
            except OverloadError:
                stats.overload += 1
                continue
            except DeadlineExceededError:
                stats.deadline += 1
                continue
            except RpcError:
                stats.other_errors += 1
                continue
            stats.ok += 1
            stats.latency.observe(clock.now - sent_at)
