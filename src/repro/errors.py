"""Exception hierarchy for the secureTF reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without masking programming errors.  Security
failures form their own branch (:class:`SecurityError`) because the
paper's threat model requires that tampering is *detected*, never
silently tolerated — tests assert these exact exception types.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was configured inconsistently or incompletely."""


class SecurityError(ReproError):
    """Base class for violations of confidentiality/integrity/freshness."""


class IntegrityError(SecurityError):
    """Authenticated data failed verification (MAC/tag/measurement)."""


class AttestationError(SecurityError):
    """An enclave quote or measurement could not be verified."""


class FreshnessError(SecurityError):
    """Stale state was presented (rollback / replay detected)."""


class IagoError(SecurityError):
    """The untrusted OS returned a malformed or hostile syscall result."""


class HandshakeError(SecurityError):
    """A secure-channel handshake failed or was tampered with."""


class PolicyError(SecurityError):
    """A CAS policy denied access to a secret or session."""


class EnclaveError(ReproError):
    """Illegal enclave lifecycle operation or resource exhaustion."""


class SyscallError(ReproError):
    """A simulated system call failed."""


class ShieldError(IntegrityError):
    """A file-system or network shield operation failed verification.

    Shield failures are integrity failures: protected data (or its
    metadata) did not authenticate.  Subclassing :class:`IntegrityError`
    lets callers that handle "authenticated data failed verification"
    treat shield-layer detections uniformly with AEAD/MAC failures.
    """


class StorageCrash(ReproError):
    """The (simulated) process died at a storage syscall boundary.

    Raised by the storage fault injector to model kill -9 / power loss
    mid-commit.  Deliberately *not* a :class:`SecurityError` — a crash is
    an availability event, and *not* an RPC error — retry machinery must
    never swallow it.  Tests catch it, then "remount" by constructing a
    fresh shield over the surviving :class:`VirtualFileSystem`.
    """


class GraphError(ReproError):
    """Malformed dataflow graph (unknown op, shape mismatch, cycles)."""


class ShapeError(GraphError):
    """Tensor shapes are incompatible for the requested operation."""


class CheckpointError(ReproError):
    """A checkpoint or frozen graph could not be read or verified."""


class LiteConversionError(ReproError):
    """A graph could not be converted to the Lite flat format."""


class ClusterError(ReproError):
    """Node/container lifecycle failure in the simulated cluster."""


class FencingError(ClusterError):
    """Base class for epoch-fencing rejections.

    Fencing errors are *authoritative*, exactly like security errors: a
    request rejected because its sender lost the leadership epoch must
    never be retried — the rejection IS the answer, and retrying it
    against another endpoint would let a zombie leader commit work after
    its replacement was promoted (split-brain).
    """


class FencedError(FencingError):
    """An acceptor rejected a request stamped with a stale epoch.

    Raised server-side when a leader-shaped sender (CAS primary,
    parameter server, serving router) presents an epoch below the
    highest this acceptor has seen — the sender is a zombie on the wrong
    side of a partition and its writes must not commit.
    """


class LeaseExpiredError(FencingError):
    """A leader consulted the epoch authority and learned it was
    superseded: its lease epoch is no longer current.  Raised holder-side
    (the polite self-check), where :class:`FencedError` is the acceptor
    slamming the door."""


class RpcError(ClusterError):
    """A simulated RPC failed (timeout, node down, channel closed)."""


class RpcTransportError(RpcError):
    """A message was lost in transit (drop, partition, dead endpoint).

    The one *retryable* RPC failure: the operation may or may not have
    executed remotely, so retries must be idempotent (call-ID dedup).
    """


class StaleConnectionError(RpcError):
    """A secure session is no longer valid on the server (restart or
    expiry); the client should re-handshake and resend."""


class CircuitOpenError(RpcError):
    """A circuit breaker is open: calls to the endpoint are being shed
    until the cooldown elapses."""


class OverloadError(RpcError):
    """A server shed the request under admission control (queue bound or
    rate limit).  Deliberately typed — load shedding must be an explicit,
    observable decision, never a silent drop — and deliberately *not*
    retryable by default: hammering an overloaded service makes the
    overload worse; backpressure belongs at the client."""


class DeadlineExceededError(RpcError):
    """A request's propagated deadline expired before a reply was
    produced.  Raised client-side when the budget runs out waiting, and
    server-side when already-expired work is shed instead of burning
    enclave time on a reply nobody is waiting for."""
