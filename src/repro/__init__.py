"""secureTF reproduction — a secure TensorFlow framework on simulated SGX.

Reproduces "secureTF: A Secure TensorFlow Framework" (Quoc et al.,
Middleware 2020).  See DESIGN.md for the system inventory and the
substitution map (what ran on real SGX hardware in the paper vs what is
mechanistically simulated here), and EXPERIMENTS.md for paper-vs-measured
results for every figure.

Start with ``examples/quickstart.py`` for the end-to-end flow:
deploy a platform, attest CAS, upload an encrypted model, and serve
classifications from an attested enclave over TLS.
"""

__version__ = "1.0.0"

from repro import errors

__all__ = ["errors", "__version__"]
