"""Process-wide registry of shield statistics objects.

The platform object doesn't own its shields — containers construct them
inside :class:`~repro.runtime.scone.SconeRuntime`, handshakes mint
:class:`~repro.runtime.net_shield.ShieldedChannel` pairs on the fly, and
owner-side deploy helpers build throwaway shields — so monitoring has no
object graph to walk to find shield counters.  Instead every shield
registers its stats object here under the simulation clock of the node
it runs on.  :func:`fs_stats_for`/:func:`net_stats_for` then filter by
clock, which scopes aggregation to one platform even when several
platforms live in the same test process.

The registry is weakly keyed by *clock*: entries disappear when a
platform (and its node clocks) is garbage-collected, but stats outlive
their shield — a short-lived owner-side shield still shows up in the
platform snapshot after the deploy helper returned.
"""

from __future__ import annotations

import weakref
from typing import Iterator, List

from repro._sim.clock import SimClock

_FS_STATS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_NET_STATS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_RECOVERY_STATS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_SYSCALL_STATS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_TRAINING_STATS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_MONITORING_STATS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def register_fs_stats(stats: object, clock: SimClock) -> None:
    """Track a file-system shield's stats object under its node clock."""
    _FS_STATS.setdefault(clock, []).append(stats)


def register_net_stats(stats: object, clock: SimClock) -> None:
    """Track a network shield's stats object under its node clock."""
    _NET_STATS.setdefault(clock, []).append(stats)


def register_recovery_stats(stats: object, clock: SimClock) -> None:
    """Track an RPC endpoint's resilience counters under its node clock."""
    _RECOVERY_STATS.setdefault(clock, []).append(stats)


def register_syscall_stats(stats: object, clock: SimClock) -> None:
    """Track a syscall interface's counters under its node clock."""
    _SYSCALL_STATS.setdefault(clock, []).append(stats)


def register_training_stats(stats: object, clock: SimClock) -> None:
    """Track a parameter-server shard's training counters under its
    node clock."""
    _TRAINING_STATS.setdefault(clock, []).append(stats)


def register_monitoring_stats(stats: object, clock: SimClock) -> None:
    """Track a monitoring session's SLO/flight/incident counters under
    the clock its evaluator runs on."""
    _MONITORING_STATS.setdefault(clock, []).append(stats)


def _collect(
    registry: "weakref.WeakKeyDictionary", clocks: List[SimClock]
) -> Iterator[object]:
    for clock in clocks:
        yield from registry.get(clock, [])


def fs_stats_for(clocks: List[SimClock]) -> List[object]:
    """All registered fs-shield stats whose clock is in ``clocks``."""
    return list(_collect(_FS_STATS, clocks))


def net_stats_for(clocks: List[SimClock]) -> List[object]:
    """All registered net-shield stats whose clock is in ``clocks``."""
    return list(_collect(_NET_STATS, clocks))


def recovery_stats_for(clocks: List[SimClock]) -> List[object]:
    """All registered recovery stats whose clock is in ``clocks``."""
    return list(_collect(_RECOVERY_STATS, clocks))


def syscall_stats_for(clocks: List[SimClock]) -> List[object]:
    """All registered syscall stats whose clock is in ``clocks``."""
    return list(_collect(_SYSCALL_STATS, clocks))


def training_stats_for(clocks: List[SimClock]) -> List[object]:
    """All registered per-shard training stats whose clock is in
    ``clocks``."""
    return list(_collect(_TRAINING_STATS, clocks))


def monitoring_stats_for(clocks: List[SimClock]) -> List[object]:
    """All registered monitoring stats whose clock is in ``clocks``."""
    return list(_collect(_MONITORING_STATS, clocks))
