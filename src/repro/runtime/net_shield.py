"""The network shield: transparent TLS on every socket.

Paper §3.3.3: TensorFlow has no end-to-end encryption of its own, and
under the threat model no byte may leave the enclave unprotected, so the
shield wraps sockets and runs all traffic through TLS terminated inside
the enclave.  Keys/certificates are provisioned by CAS and protected by
the file-system shield.

The shield is transport-agnostic: anything with ``send``/``recv`` works
(the simulated cluster channel, or the in-memory pair used in tests).
Handshakes and record protection are the real TLS-1.3-shaped protocol
from :mod:`repro.crypto.tls`; a Dolev-Yao adversary on the transport is
detected by record authentication.

Because the simulation is single-threaded and event-driven, handshakes
are exposed as explicit state machines (:class:`ClientHandshake`,
:class:`ServerHandshake`) whose messages the caller moves across the
transport; :func:`establish_pair` drives both ends for co-located
parties and tests.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Protocol

from repro._sim import probe
from repro._sim.clock import SimClock
from repro._sim.rng import DeterministicRng
from repro.crypto.ed25519 import Ed25519PublicKey
from repro.crypto.tls import RecordLayer, TlsClient, TlsIdentity, TlsServer
from repro.enclave.cost_model import CostModel
from repro.errors import ShieldError
from repro.runtime import stats_registry
from repro.runtime.syscall import SyscallInterface

#: TLS record payload ceiling; only affects per-record overhead charging.
RECORD_SIZE = 16 * 1024


class Transport(Protocol):
    """Minimal duplex byte-message transport."""

    def send(self, data: bytes) -> None: ...

    def recv(self) -> bytes: ...


class QueueEndpoint:
    """One end of an in-memory transport pair (tests, co-located parties)."""

    def __init__(self, out_queue: Deque[bytes], in_queue: Deque[bytes]) -> None:
        self._out = out_queue
        self._in = in_queue

    def send(self, data: bytes) -> None:
        self._out.append(data)

    def recv(self) -> bytes:
        if not self._in:
            raise ShieldError("transport has no pending message")
        return self._in.popleft()


def transport_pair() -> "tuple[QueueEndpoint, QueueEndpoint]":
    """A connected pair of in-memory transports."""
    a_to_b: Deque[bytes] = deque()
    b_to_a: Deque[bytes] = deque()
    return QueueEndpoint(a_to_b, b_to_a), QueueEndpoint(b_to_a, a_to_b)


@dataclass(eq=False)
class NetShieldStats:
    handshakes: int = 0
    records_protected: int = 0
    records_opened: int = 0
    crypto_bytes: int = 0
    crypto_time: float = 0.0
    # Real (wall-clock) record cryptography, next to the simulated
    # crypto_time charged through the cost model.
    real_crypto_time: float = 0.0
    bytes_by_cipher: Dict[str, int] = field(default_factory=dict)


def charge_record_crypto(
    cost_model: CostModel,
    clock: SimClock,
    stats: NetShieldStats,
    n_bytes: int,
) -> None:
    """Charge the AEAD record protection cost for ``n_bytes`` of payload."""
    n_records = max(1, -(-n_bytes // RECORD_SIZE))
    duration = (
        n_bytes / cost_model.net_shield_crypto_bandwidth
        + n_records * cost_model.net_shield_record_overhead
    )
    clock.advance(duration)
    if probe.ACTIVE is not None:
        probe.ACTIVE.charge(clock, "crypto", duration)
    stats.crypto_bytes += n_bytes
    stats.crypto_time += duration


def protect_timed(records: RecordLayer, stats: NetShieldStats, payload: bytes) -> bytes:
    """Record-protect ``payload``, accounting real wall-clock crypto time."""
    started = time.perf_counter()
    record = records.protect(payload)
    stats.real_crypto_time += time.perf_counter() - started
    by_cipher = stats.bytes_by_cipher
    by_cipher[records.cipher] = by_cipher.get(records.cipher, 0) + len(payload)
    return record


def unprotect_timed(records: RecordLayer, stats: NetShieldStats, record: bytes) -> bytes:
    """Verify-and-open a record, accounting real wall-clock crypto time."""
    started = time.perf_counter()
    payload = records.unprotect(record)
    stats.real_crypto_time += time.perf_counter() - started
    by_cipher = stats.bytes_by_cipher
    by_cipher[records.cipher] = by_cipher.get(records.cipher, 0) + len(payload)
    return payload


class ShieldedChannel:
    """An established TLS session over some transport."""

    def __init__(
        self,
        transport: Transport,
        records: RecordLayer,
        cost_model: CostModel,
        clock: SimClock,
        stats: NetShieldStats,
        syscalls: Optional[SyscallInterface] = None,
        peer_subject: Optional[str] = None,
    ) -> None:
        self._transport = transport
        self._records = records
        self._model = cost_model
        self._clock = clock
        self._stats = stats
        self._syscalls = syscalls
        #: Subject name from the peer's verified certificate (if any).
        self.peer_subject = peer_subject

    def _charge_crypto(self, n_bytes: int) -> None:
        charge_record_crypto(self._model, self._clock, self._stats, n_bytes)

    def send(self, payload: bytes, declared_size: Optional[int] = None) -> None:
        """Protect and transmit one message."""
        simulated = declared_size if declared_size is not None else len(payload)
        self._charge_crypto(simulated)
        if self._syscalls is not None:
            # I/O is charged through the shared syscall plane: sends are
            # fire-and-forget ring submissions that batch with the rest
            # of this enclave's traffic.
            self._syscalls.socket_send(simulated)
        self._transport.send(protect_timed(self._records, self._stats, payload))
        self._stats.records_protected += 1

    def recv(self, declared_size: Optional[int] = None) -> bytes:
        """Receive and verify one message.

        Raises :class:`~repro.errors.IntegrityError` (via the record
        layer) if the message was tampered with, replayed, or reordered.
        """
        record = self._transport.recv()
        payload = unprotect_timed(self._records, self._stats, record)
        simulated = declared_size if declared_size is not None else len(payload)
        if self._syscalls is not None:
            self._syscalls.socket_recv(simulated)
        self._charge_crypto(simulated)
        self._stats.records_opened += 1
        return payload


class ClientHandshake:
    """Client-side handshake state machine bound to a shield."""

    def __init__(
        self,
        shield: "NetworkShield",
        expected_server: Optional[str],
        mutual: bool,
        now: float,
    ) -> None:
        self._shield = shield
        self._tls = TlsClient(
            trusted_roots=shield.trusted_roots,
            identity=shield.identity if mutual else None,
            random_bytes=shield.rng.random_bytes(64),
            now=now,
            expected_server=expected_server,
        )

    def hello(self) -> bytes:
        """First flight: ClientHello bytes to deliver to the server."""
        return self._tls.client_hello()

    def finish(self, server_flight: bytes) -> bytes:
        """Verify the server flight; returns the client finished flight."""
        return self._tls.process_server_flight(server_flight)

    @property
    def record_layer(self) -> RecordLayer:
        return self._tls.record_layer

    @property
    def peer_subject(self) -> Optional[str]:
        cert = self._tls.server_certificate
        return cert.subject if cert else None

    def channel(
        self, transport: Transport, syscalls: Optional[SyscallInterface] = None
    ) -> ShieldedChannel:
        """The established channel (call after :meth:`finish`)."""
        self._shield.charge_handshake()
        cert = self._tls.server_certificate
        return ShieldedChannel(
            transport,
            self._tls.record_layer,
            self._shield.cost_model,
            self._shield.clock,
            self._shield.stats,
            syscalls=syscalls or self._shield.syscalls,
            peer_subject=cert.subject if cert else None,
        )


class ServerHandshake:
    """Server-side handshake state machine bound to a shield."""

    def __init__(
        self, shield: "NetworkShield", require_client_cert: bool, now: float
    ) -> None:
        self._shield = shield
        self._tls = TlsServer(
            identity=shield.identity,
            random_bytes=shield.rng.random_bytes(32),
            require_client_cert=require_client_cert,
            trusted_roots=shield.trusted_roots if require_client_cert else None,
            now=now,
        )

    def respond(self, client_hello: bytes) -> bytes:
        """Process ClientHello; returns the coalesced server flight."""
        return self._tls.process_client_hello(client_hello)

    def complete(self, client_flight: bytes) -> None:
        """Verify the client finished flight (and client cert if required)."""
        self._tls.process_client_flight(client_flight)

    @property
    def record_layer(self) -> RecordLayer:
        return self._tls.record_layer

    @property
    def peer_subject(self) -> Optional[str]:
        cert = self._tls.client_certificate
        return cert.subject if cert else None

    def channel(
        self, transport: Transport, syscalls: Optional[SyscallInterface] = None
    ) -> ShieldedChannel:
        """The established channel (call after :meth:`complete`)."""
        self._shield.charge_handshake()
        cert = self._tls.client_certificate
        return ShieldedChannel(
            transport,
            self._tls.record_layer,
            self._shield.cost_model,
            self._shield.clock,
            self._shield.stats,
            syscalls=syscalls or self._shield.syscalls,
            peer_subject=cert.subject if cert else None,
        )


class NetworkShield:
    """Per-process shield that establishes shielded channels."""

    def __init__(
        self,
        identity: TlsIdentity,
        trusted_roots: List[Ed25519PublicKey],
        cost_model: CostModel,
        clock: SimClock,
        rng: DeterministicRng,
        syscalls: Optional[SyscallInterface] = None,
    ) -> None:
        self.identity = identity
        self.trusted_roots = trusted_roots
        self.cost_model = cost_model
        self.clock = clock
        self.rng = rng
        self.syscalls = syscalls
        self.stats = NetShieldStats()
        stats_registry.register_net_stats(self.stats, clock)

    def charge_handshake(self) -> None:
        """Charge one handshake's cryptography (two signatures + ECDHE)."""
        self.clock.advance(0.9e-3)
        if probe.ACTIVE is not None:
            probe.ACTIVE.charge(self.clock, "crypto", 0.9e-3)
        self.stats.handshakes += 1

    def client_handshake(
        self,
        expected_server: Optional[str] = None,
        mutual: bool = True,
        now: float = 0.0,
    ) -> ClientHandshake:
        return ClientHandshake(self, expected_server, mutual, now)

    def server_handshake(
        self, require_client_cert: bool = True, now: float = 0.0
    ) -> ServerHandshake:
        return ServerHandshake(self, require_client_cert, now)


def establish_pair(
    client_shield: NetworkShield,
    server_shield: NetworkShield,
    expected_server: Optional[str] = None,
    require_client_cert: bool = True,
    now: float = 0.0,
) -> "tuple[ShieldedChannel, ShieldedChannel]":
    """Run a full handshake between two shields over an in-memory pair.

    Returns ``(client_channel, server_channel)``.
    """
    client_end, server_end = transport_pair()
    client = client_shield.client_handshake(
        expected_server=expected_server, mutual=require_client_cert, now=now
    )
    server = server_shield.server_handshake(
        require_client_cert=require_client_cert, now=now
    )
    flight = server.respond(client.hello())
    server.complete(client.finish(flight))
    return client.channel(client_end), server.channel(server_end)
