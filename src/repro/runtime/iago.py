"""Iago-attack defences: sanity checks on untrusted syscall results.

Checkoway & Shacham showed that a malicious kernel can subvert a
protected application purely through syscall *return values* (Iago
attacks).  SCONE — and therefore secureTF (§3.3.3) — validates every
result crossing into the enclave: buffer lengths against what was
requested, sizes against non-negativity, pointers against the enclave
layout.  Here the checks operate on the simulated syscall results; the
test suite plays the malicious kernel via the hostile hook on
:class:`~repro.runtime.syscall.SyscallInterface`.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import IagoError


def check_read_result(requested: int, returned: bytes) -> bytes:
    """A read may return at most the requested byte count."""
    if len(returned) > requested:
        raise IagoError(
            f"kernel returned {len(returned)} bytes for a {requested}-byte read"
        )
    return returned


def check_size_result(size: int, declared_maximum: Optional[int] = None) -> int:
    """File sizes must be non-negative and below any declared bound."""
    if size < 0:
        raise IagoError(f"kernel returned negative size {size}")
    if declared_maximum is not None and size > declared_maximum:
        raise IagoError(
            f"kernel returned size {size} above the declared maximum "
            f"{declared_maximum}"
        )
    return size


def check_write_result(requested: int, written: int) -> int:
    """A write may not claim to have written more than was passed."""
    if written < 0:
        raise IagoError(f"kernel returned negative write count {written}")
    if written > requested:
        raise IagoError(
            f"kernel claims {written} bytes written for a {requested}-byte write"
        )
    return written


def check_path_listing(prefix: str, paths: list) -> list:
    """Directory listings must honour the queried prefix and be strings."""
    for path in paths:
        if not isinstance(path, str):
            raise IagoError(f"kernel returned a non-string path entry: {path!r}")
        if not path.startswith(prefix):
            raise IagoError(
                f"kernel returned {path!r} outside the queried prefix {prefix!r}"
            )
    return paths
