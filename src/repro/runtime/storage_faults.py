"""Deterministic storage fault injection (the chaos plane for *state*).

PR 2's :mod:`repro.cluster.faults` makes the network/process plane
chaos-testable; this module does the same for the storage plane.  An
actively hostile (or merely crashing) host does not give the shield
atomic writes: real disks tear multi-sector writes, kill -9 lands
between any two syscalls of a multi-chunk commit, media rots at rest,
and an attacker with a snapshot of the disk can restore it wholesale.
A crash-consistency claim is only testable if those faults can be
produced on demand and **reproduced exactly**, so — like the network
plan — every stochastic decision flows through a seeded
:class:`~repro._sim.rng.DeterministicRng` and every injection is
appended to a canonical event trace.

Faults modelled:

- **torn writes** — a write persists only a prefix of the payload and
  the process dies (:class:`~repro.errors.StorageCrash`);
- **crash points** — kill the process immediately *before* or *after*
  mutating-storage operation #N, which lets tests sweep every syscall
  boundary of a multi-file commit exhaustively;
- **bit rot** — a stored byte flips at rest, discovered on read;
- **truncation** — a stored file loses its tail at rest;
- **snapshot-restore rollback** — the whole (prefix-scoped) store is
  captured at one operation index and restored at a later one, the
  classic rollback attack the freshness plane must reject.

The plan composes into :class:`~repro.runtime.vfs.VirtualFileSystem`
via :meth:`StorageFaultPlan.attach`; the VFS consults it on every
mutating operation and every read.  The plan draws a fixed number of
uniforms per in-scope operation (two per write, four per read)
regardless of outcome, keeping the random stream aligned no matter
which faults fire.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro._sim.rng import DeterministicRng
from repro.errors import StorageCrash

#: Mutating-storage operation names the plan counts as commit boundaries.
MUTATING_OPS = ("write", "delete", "rename")


@dataclass(frozen=True)
class StorageFaultSpec:
    """Per-operation fault probabilities (each op rolls independently)."""

    torn_write: float = 0.0       # P(write persists a prefix, process dies)
    torn_keep: float = 0.5        # fraction of the payload that survives a tear
    bit_rot: float = 0.0          # P(read finds one stored bit flipped)
    truncation: float = 0.0       # P(read finds the stored tail missing)
    #: Path prefixes the spec applies to; None = every path.
    prefixes: Optional[Tuple[str, ...]] = None

    def applies_to(self, path: str) -> bool:
        if self.prefixes is None:
            return True
        return any(path.startswith(prefix) for prefix in self.prefixes)


@dataclass(frozen=True)
class CrashPoint:
    """Kill the process at mutating-storage operation ``at_op``.

    ``after=False`` crashes *before* the operation applies (it never
    happened); ``after=True`` crashes immediately after it applied (the
    very next instruction never runs).  Sweeping ``at_op`` over a
    commit's operation count with both polarities visits every syscall
    boundary exactly once.
    """

    at_op: int
    after: bool = False


@dataclass(frozen=True)
class SnapshotRollback:
    """Capture the store at op ``capture_at_op``, restore it at
    ``restore_at_op`` (both indices on the mutating-op counter, checked
    before the operation applies)."""

    capture_at_op: int
    restore_at_op: int
    prefix: str = ""


@dataclass
class StorageFaultCounters:
    """Per-fault injection counts."""

    torn_writes: int = 0
    bit_rot: int = 0
    truncations: int = 0
    crashes: int = 0
    rollbacks: int = 0


@dataclass
class StorageAction:
    """What the VFS should do with one mutating operation."""

    crash_before: bool = False
    crash_after: bool = False
    content: Optional[bytes] = None  # replacement (torn) payload


class StorageFaultPlan:
    """A seeded, replayable schedule of storage faults for one VFS."""

    def __init__(
        self,
        seed: int,
        spec: StorageFaultSpec = StorageFaultSpec(),
        crash_points: Sequence[CrashPoint] = (),
        rollbacks: Sequence[SnapshotRollback] = (),
    ) -> None:
        self.seed = int(seed)
        self.spec = spec
        self.crash_points = sorted(crash_points, key=lambda c: (c.at_op, c.after))
        self.rollbacks = sorted(rollbacks, key=lambda r: r.restore_at_op)
        self.counters = StorageFaultCounters()
        self.events: List[str] = []
        self._rng = DeterministicRng(self.seed, label="storage-faults")
        self._fired: Set[CrashPoint] = set()
        self._rolled: Set[SnapshotRollback] = set()
        self._snapshots: Dict[SnapshotRollback, Dict[str, Tuple[bytes, Optional[int], int]]] = {}
        self._vfs = None
        self._suspended = 0
        #: Index of the next mutating operation (0-based).
        self.op_index = 0

    # -- composition -----------------------------------------------------

    def attach(self, vfs) -> "StorageFaultPlan":
        """Install this plan as ``vfs.faults`` (and remember the VFS for
        snapshot/restore rollbacks)."""
        self._vfs = vfs
        vfs.faults = self
        return self

    @contextlib.contextmanager
    def suspended(self):
        """Temporarily stop injecting (recovery tooling runs clean)."""
        self._suspended += 1
        try:
            yield
        finally:
            self._suspended -= 1

    # -- trace ----------------------------------------------------------

    def record(self, event: str) -> None:
        self.events.append(event)

    def trace_bytes(self) -> bytes:
        """Canonical encoding of the injection trace (for replay tests)."""
        return "\n".join(self.events).encode()

    # -- snapshot/restore rollback ---------------------------------------

    def _capture(self, rollback: SnapshotRollback) -> None:
        assert self._vfs is not None
        self._snapshots[rollback] = self._vfs.capture_state(rollback.prefix)
        self.record(f"snapshot op={self.op_index} prefix={rollback.prefix!r}")

    def _restore(self, rollback: SnapshotRollback) -> None:
        assert self._vfs is not None
        self._vfs.restore_state(
            self._snapshots.pop(rollback), prefix=rollback.prefix
        )
        self.counters.rollbacks += 1
        self.record(f"rollback op={self.op_index} prefix={rollback.prefix!r}")

    # -- mutating operations (VFS hook) ----------------------------------

    def before_mutation(self, op: str, path: str, content: Optional[bytes]) -> StorageAction:
        """Consulted by the VFS before applying ``op``; may schedule a
        crash before/after and may replace a write's payload with a torn
        prefix.  Counts the operation either way."""
        action = StorageAction()
        if self._suspended:
            return action
        index = self.op_index
        self.op_index += 1

        for rollback in self.rollbacks:
            if rollback not in self._snapshots and rollback not in self._rolled:
                if index >= rollback.capture_at_op:
                    self._capture(rollback)
            if rollback in self._snapshots and index >= rollback.restore_at_op:
                self._rolled.add(rollback)
                self._restore(rollback)

        for point in self.crash_points:
            if point.at_op == index and point not in self._fired:
                self._fired.add(point)
                self.counters.crashes += 1
                side = "after" if point.after else "before"
                self.record(f"crash {side} op={index} {op} {path}")
                if point.after:
                    action.crash_after = True
                else:
                    action.crash_before = True
                    return action

        if op == "write" and content is not None and self.spec.applies_to(path):
            # Two draws per write, fixed order, whatever fires.
            u_torn = self._rng.uniform()
            u_keep = self._rng.uniform()
            if u_torn < self.spec.torn_write:
                keep = int(len(content) * self.spec.torn_keep * u_keep * 2) if content else 0
                keep = min(max(keep, 0), max(len(content) - 1, 0))
                self.counters.torn_writes += 1
                self.record(f"torn op={index} {path} kept={keep}/{len(content)}")
                action.content = content[:keep]
                action.crash_after = True
        return action

    # -- reads (VFS hook) -------------------------------------------------

    def on_read(self, path: str, content: bytes) -> Optional[bytes]:
        """Consulted by the VFS on every read; returns corrupted stored
        content (rot/truncation *at rest*) or None to leave it alone."""
        if self._suspended or not self.spec.applies_to(path):
            return None
        # Four draws per read, fixed order, whatever fires.
        u_rot = self._rng.uniform()
        u_pos = self._rng.uniform()
        u_trunc = self._rng.uniform()
        u_keep = self._rng.uniform()
        corrupted: Optional[bytes] = None
        if content and u_rot < self.spec.bit_rot:
            position = min(int(u_pos * len(content)), len(content) - 1)
            flipped = bytearray(content)
            flipped[position] ^= 1 << (position % 8)
            corrupted = bytes(flipped)
            self.counters.bit_rot += 1
            self.record(f"bitrot {path} byte={position}")
        if content and u_trunc < self.spec.truncation:
            base = corrupted if corrupted is not None else content
            keep = min(int(u_keep * len(base)), len(base) - 1)
            corrupted = base[:keep]
            self.counters.truncations += 1
            self.record(f"truncate {path} kept={keep}/{len(content)}")
        return corrupted


def crash() -> None:
    """Raise the canonical storage-crash exception (helper for tests
    and wrappers that simulate death at a non-VFS boundary, e.g. between
    a manifest flip and the freshness commit)."""
    raise StorageCrash("simulated process death at storage boundary")


__all__ = [
    "CrashPoint",
    "MUTATING_OPS",
    "SnapshotRollback",
    "StorageAction",
    "StorageFaultCounters",
    "StorageFaultPlan",
    "StorageFaultSpec",
    "crash",
]
