"""The system-call boundary between a (possibly enclaved) app and the OS.

Cost structure per mode (§3.3.3 and the SCONE paper):

- **NATIVE** — a plain trap: fixed entry cost + kernel service time.
- **SIM** — the SCONE runtime outside SGX: a fraction of calls is
  handled entirely in userspace by the runtime (the paper observes SIM
  sometimes *beats* native because of this); the rest go through the
  async queue.
- **HW, synchronous** — every call pays a full enclave transition.
- **HW, asynchronous** — SCONE's exit-less interface: the request is
  written to a queue served by threads outside the enclave, costing a
  fraction of a transition, with most kernel time overlapped by the
  user-level scheduler running another application thread.

All file operations verify the kernel's answers against Iago checks;
tests install a ``hostile_hook`` to emulate a malicious kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro._sim.clock import SimClock
from repro.enclave.cost_model import CostModel
from repro.enclave.sgx import Enclave, SgxMode
from repro.runtime import iago
from repro.runtime.vfs import VirtualFile, VirtualFileSystem
from repro.errors import SyscallError

#: Maximum bytes moved per read/write syscall (Linux pipe-sized chunks).
IO_CHUNK = 256 * 1024

#: Fraction of syscalls the SCONE runtime services without leaving
#: userspace (futexes, clock reads, memory management fast paths).
USERSPACE_HANDLED_FRACTION = 0.35

#: Fraction of kernel service time hidden by user-level threading when
#: syscalls are asynchronous (another app thread runs meanwhile).
ASYNC_KERNEL_OVERLAP = 0.70


@dataclass
class SyscallStats:
    """Counters for benchmarks and tests."""

    calls: int = 0
    userspace_handled: int = 0
    transitions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    time: float = 0.0
    by_name: Dict[str, int] = field(default_factory=dict)


HostileHook = Callable[[str, object], object]


class SyscallInterface:
    """Mode-aware syscall layer over a :class:`VirtualFileSystem`."""

    def __init__(
        self,
        vfs: VirtualFileSystem,
        cost_model: CostModel,
        clock: SimClock,
        mode: SgxMode = SgxMode.NATIVE,
        enclave: Optional[Enclave] = None,
        asynchronous: bool = True,
    ) -> None:
        if mode is SgxMode.HW and enclave is None:
            raise SyscallError("HW mode requires an enclave for transitions")
        self._vfs = vfs
        self._model = cost_model
        self._clock = clock
        self._mode = mode
        self._enclave = enclave
        self._asynchronous = asynchronous
        self.stats = SyscallStats()
        #: Test hook: called as ``hook(syscall_name, result)`` and may
        #: return a corrupted result, emulating a malicious kernel.
        self.hostile_hook: Optional[HostileHook] = None

    @property
    def mode(self) -> SgxMode:
        return self._mode

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------

    def _charge(self, name: str) -> None:
        """Charge the boundary-crossing cost of one syscall."""
        self.stats.calls += 1
        self.stats.by_name[name] = self.stats.by_name.get(name, 0) + 1
        model = self._model
        before = self._clock.now

        if self._mode is SgxMode.NATIVE:
            self._clock.advance(0.3e-6 + model.syscall_kernel_cost)
        elif self._mode is SgxMode.SIM:
            # Deterministic round-robin stand-in for "a fraction of calls
            # is handled in userspace".
            if self.stats.calls % 100 < USERSPACE_HANDLED_FRACTION * 100:
                self.stats.userspace_handled += 1
                self._clock.advance(model.userlevel_switch_cost)
            else:
                self._clock.advance(model.async_syscall_cost + model.syscall_kernel_cost)
        else:  # HW
            assert self._enclave is not None
            if self._asynchronous:
                self.stats.transitions += 1
                self._enclave.cpu.transition(asynchronous=True)
                self._clock.advance(
                    model.syscall_kernel_cost * (1.0 - ASYNC_KERNEL_OVERLAP)
                )
            else:
                self.stats.transitions += 1
                self._enclave.cpu.transition(asynchronous=False)
                self._clock.advance(model.syscall_kernel_cost)
        self.stats.time += self._clock.now - before

    def _charge_io(self, n_bytes: int, write: bool) -> None:
        """Charge the data movement of a file read/write.

        The payload crosses the boundary in :data:`IO_CHUNK` pieces, each
        a separate syscall; in HW mode the copy into/out of the enclave
        runs at MEE bandwidth.
        """
        chunks = max(1, -(-n_bytes // IO_CHUNK))
        for _ in range(chunks - 1):
            self._charge("rw_continuation")
        before = self._clock.now
        if self._mode is SgxMode.HW:
            assert self._enclave is not None
            self._enclave.memory.charge_bytes(n_bytes)
        else:
            self._clock.advance(n_bytes / self._model.native_memory_bandwidth)
        self.stats.time += self._clock.now - before
        if write:
            self.stats.bytes_written += n_bytes
        else:
            self.stats.bytes_read += n_bytes

    def _maybe_hostile(self, name: str, result: object) -> object:
        if self.hostile_hook is not None:
            return self.hostile_hook(name, result)
        return result

    # ------------------------------------------------------------------
    # File operations (the shield and runtime build on these)
    # ------------------------------------------------------------------

    def read_file(self, path: str) -> VirtualFile:
        """Read a whole file; returns the VirtualFile (content + size)."""
        self._charge("open")
        self._charge("read")
        file = self._vfs.read(path)
        result = self._maybe_hostile("read", file)
        if not isinstance(result, VirtualFile):
            raise SyscallError("kernel returned a non-file object for read")
        iago.check_size_result(result.size)
        iago.check_read_result(result.size, result.content[: result.size + 1])
        self._charge_io(result.size, write=False)
        self._charge("close")
        return result

    def write_file(
        self, path: str, content: bytes, declared_size: Optional[int] = None
    ) -> VirtualFile:
        """Write a whole file (create or replace)."""
        self._charge("open")
        self._charge("write")
        size = declared_size if declared_size is not None else len(content)
        self._charge_io(size, write=True)
        file = self._vfs.write(path, content, declared_size=declared_size)
        written = self._maybe_hostile("write", size)
        if not isinstance(written, int):
            raise SyscallError("kernel returned a non-integer write count")
        iago.check_write_result(size, written)
        self._charge("close")
        return file

    def stat(self, path: str) -> int:
        """Size of a file (simulated size)."""
        self._charge("stat")
        size = self._vfs.read(path).size
        result = self._maybe_hostile("stat", size)
        if not isinstance(result, int):
            raise SyscallError("kernel returned a non-integer stat size")
        return iago.check_size_result(result)

    def exists(self, path: str) -> bool:
        self._charge("stat")
        return self._vfs.exists(path)

    def unlink(self, path: str) -> None:
        self._charge("unlink")
        self._vfs.delete(path)

    def rename(self, src: str, dst: str) -> VirtualFile:
        """Atomically move ``src`` over ``dst`` (the commit primitive of
        the shield's journaled write protocol)."""
        self._charge("rename")
        return self._vfs.rename(src, dst)

    def list_dir(self, prefix: str = "") -> List[str]:
        self._charge("getdents")
        paths = self._vfs.listdir(prefix)
        result = self._maybe_hostile("getdents", paths)
        if not isinstance(result, list):
            raise SyscallError("kernel returned a non-list directory listing")
        return iago.check_path_listing(prefix, result)

    def next_version(self, path: str) -> int:
        """The version the next write to ``path`` will get (0 if new)."""
        self._charge("stat")
        if not self._vfs.exists(path):
            return 0
        version = self._vfs.read(path).version + 1
        result = self._maybe_hostile("version", version)
        if not isinstance(result, int):
            raise SyscallError("kernel returned a non-integer version")
        return iago.check_size_result(result)

    def nop_syscall(self, name: str = "nop") -> None:
        """A syscall with no semantic effect (cost-model microbenchmarks)."""
        self._charge(name)
