"""The system-call boundary between a (possibly enclaved) app and the OS.

Cost structure per mode (§3.3.3 and the SCONE paper):

- **NATIVE** — a plain trap: fixed entry cost + kernel service time.
- **SIM** — the SCONE runtime outside SGX: the same exit-less ring as
  HW mode, minus enclave transitions; the per-name userspace table
  explains why SIM sometimes *beats* native (the paper observes this).
- **HW, synchronous** — every call pays a full enclave transition.
- **HW, asynchronous** — SCONE's exit-less interface: the request goes
  through the :class:`~repro.runtime.syscall_plane.SyscallPlane` — a
  bounded submission/completion ring served by OS-side handler threads,
  with batched fire-and-forget submission, futex-style handler
  sleep/wake, backpressure when the ring fills, and completion waits
  hidden by the user-level scheduler's runnable-thread occupancy.

The sync-vs-async gap and the userspace-served share now *emerge* from
the ring mechanics; the analytic constants that used to stand in for
them (``USERSPACE_HANDLED_FRACTION``, ``ASYNC_KERNEL_OVERLAP``) are
deprecated module attributes returning measured equivalents.

All file operations verify the kernel's answers against Iago checks;
tests install a ``hostile_hook`` to emulate a malicious kernel.  The
checks run identically on the async path — a hostile completion in the
ring is rejected exactly like a hostile synchronous return value.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro._sim import probe
from repro._sim.clock import SimClock
from repro.enclave.cost_model import CostModel
from repro.enclave.sgx import Enclave, SgxMode
from repro.runtime import iago, stats_registry
from repro.runtime.syscall_plane import SyscallPlane, SyscallPlaneConfig
from repro.runtime.vfs import VirtualFile, VirtualFileSystem
from repro.errors import SyscallError

#: Maximum bytes moved per read/write syscall (Linux pipe-sized chunks).
IO_CHUNK = 256 * 1024


@dataclass
class SyscallStats:
    """Counters for benchmarks and tests.

    A plain comparable dataclass on purpose: the determinism regression
    asserts two identically-seeded runs produce *equal* stats objects.
    """

    calls: int = 0
    userspace_handled: int = 0
    transitions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    time: float = 0.0
    # -- submission/completion ring --------------------------------------
    ring_submissions: int = 0
    ring_completions: int = 0
    ring_occupancy_peak: int = 0
    batches: int = 0
    max_batch: int = 0
    flushes_on_block: int = 0
    backpressure_stalls: int = 0
    backpressure_time: float = 0.0
    handler_wakeups: int = 0
    sync_fallbacks: int = 0
    # -- occupancy-derived kernel overlap --------------------------------
    overlap_hidden_time: float = 0.0
    overlap_exposed_time: float = 0.0
    by_name: Dict[str, int] = field(default_factory=dict)


HostileHook = Callable[[str, object], object]


class SyscallInterface:
    """Mode-aware syscall layer over a :class:`VirtualFileSystem`."""

    def __init__(
        self,
        vfs: VirtualFileSystem,
        cost_model: CostModel,
        clock: SimClock,
        mode: SgxMode = SgxMode.NATIVE,
        enclave: Optional[Enclave] = None,
        asynchronous: bool = True,
        plane_config: Optional[SyscallPlaneConfig] = None,
    ) -> None:
        if mode is SgxMode.HW and enclave is None:
            raise SyscallError("HW mode requires an enclave for transitions")
        self._vfs = vfs
        self._model = cost_model
        self._clock = clock
        self._mode = mode
        self._enclave = enclave
        self._asynchronous = asynchronous
        self.stats = SyscallStats()
        stats_registry.register_syscall_stats(self.stats, clock)
        #: The shared submission/completion ring (SIM and HW-async; the
        #: NATIVE and HW-sync paths never touch a ring).
        self.plane: Optional[SyscallPlane] = None
        if mode is SgxMode.SIM or (mode is SgxMode.HW and asynchronous):
            self.plane = SyscallPlane(
                cost_model, clock, self.stats, enclave=enclave, config=plane_config
            )
        #: Test hook: called as ``hook(syscall_name, result)`` and may
        #: return a corrupted result, emulating a malicious kernel.
        self.hostile_hook: Optional[HostileHook] = None

    @property
    def mode(self) -> SgxMode:
        return self._mode

    @property
    def asynchronous(self) -> bool:
        return self._asynchronous

    def attach_scheduler(self, scheduler) -> None:
        """Wire a :class:`~repro.runtime.threading_ul.UserLevelScheduler`
        so the plane hides completion waits behind its runnable threads
        and ``scheduler.block()`` flushes the submission batch."""
        if self.plane is not None:
            self.plane.attach_scheduler(scheduler)
            scheduler.attach_plane(self.plane)

    def flush(self) -> None:
        """Drain any batched fire-and-forget submissions."""
        if self.plane is not None:
            self.plane.flush()

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        self.stats.calls += n
        self.stats.by_name[name] = self.stats.by_name.get(name, 0) + n

    def _charge(self, name: str, posted: bool = False) -> None:
        """Charge the boundary-crossing cost of one syscall.

        ``posted`` marks fire-and-forget calls (writes, closes, unlinks,
        sends): on the ring they batch and never wait for completion.
        """
        self._count(name)
        model = self._model
        before = self._clock.now

        if self.plane is not None:
            if posted:
                self.plane.post(name)
            else:
                self.plane.call(name)
        elif self._mode is SgxMode.NATIVE:
            self._clock.advance(model.syscall_trap_cost + model.syscall_kernel_cost)
        else:  # HW, synchronous
            assert self._enclave is not None
            self.stats.transitions += 1
            self._enclave.cpu.transition(asynchronous=False)
            self._clock.advance(model.syscall_kernel_cost)
        if probe.ACTIVE is not None and self.plane is None:
            # The plane charges its own advances; trap/transition paths
            # are attributed here.
            probe.ACTIVE.charge(self._clock, "syscall_ring", self._clock.now - before)
        self.stats.time += self._clock.now - before

    def _charge_batch(self, name: str, count: int) -> None:
        """Charge ``count`` identical result-bearing syscalls, submitted
        together so ring handlers service them in parallel."""
        if count <= 0:
            return
        self._count(name, count)
        before = self._clock.now
        if self.plane is not None:
            self.plane.call_batch(name, count)
        else:
            model = self._model
            for _ in range(count):
                if self._mode is SgxMode.NATIVE:
                    self._clock.advance(
                        model.syscall_trap_cost + model.syscall_kernel_cost
                    )
                else:
                    assert self._enclave is not None
                    self.stats.transitions += 1
                    self._enclave.cpu.transition(asynchronous=False)
                    self._clock.advance(model.syscall_kernel_cost)
            if probe.ACTIVE is not None:
                probe.ACTIVE.charge(
                    self._clock, "syscall_ring", self._clock.now - before, count=count
                )
        self.stats.time += self._clock.now - before

    def _charge_copy(self, n_bytes: int) -> None:
        """Charge moving a payload across the boundary; in HW mode the
        copy into/out of the enclave runs at MEE bandwidth."""
        before = self._clock.now
        if self._mode is SgxMode.HW:
            assert self._enclave is not None
            self._enclave.memory.charge_bytes(n_bytes)
        else:
            self._clock.advance(n_bytes / self._model.native_memory_bandwidth)
        if probe.ACTIVE is not None:
            probe.ACTIVE.charge(self._clock, "syscall_ring", self._clock.now - before)
        self.stats.time += self._clock.now - before

    def _charge_io(self, n_bytes: int, write: bool) -> None:
        """Charge the data movement of a file read/write.

        The payload crosses the boundary in :data:`IO_CHUNK` pieces, each
        a separate syscall: write continuations post fire-and-forget,
        read continuations submit as one batch the handlers drain in
        parallel.
        """
        chunks = max(1, -(-n_bytes // IO_CHUNK))
        if write:
            for _ in range(chunks - 1):
                self._charge("rw_continuation", posted=True)
        else:
            self._charge_batch("rw_continuation", chunks - 1)
        self._charge_copy(n_bytes)
        if write:
            self.stats.bytes_written += n_bytes
        else:
            self.stats.bytes_read += n_bytes

    def _maybe_hostile(self, name: str, result: object) -> object:
        if self.hostile_hook is not None:
            return self.hostile_hook(name, result)
        return result

    # ------------------------------------------------------------------
    # File operations (the shield and runtime build on these)
    # ------------------------------------------------------------------

    def read_file(self, path: str) -> VirtualFile:
        """Read a whole file; returns the VirtualFile (content + size)."""
        self._charge("open")
        self._charge("read")
        file = self._vfs.read(path)
        result = self._maybe_hostile("read", file)
        if not isinstance(result, VirtualFile):
            raise SyscallError("kernel returned a non-file object for read")
        iago.check_size_result(result.size)
        iago.check_read_result(result.size, result.content[: result.size + 1])
        self._charge_io(result.size, write=False)
        self._charge("close", posted=True)
        return result

    def write_file(
        self, path: str, content: bytes, declared_size: Optional[int] = None
    ) -> VirtualFile:
        """Write a whole file (create or replace)."""
        self._charge("open")
        self._charge("write", posted=True)
        size = declared_size if declared_size is not None else len(content)
        self._charge_io(size, write=True)
        file = self._vfs.write(path, content, declared_size=declared_size)
        written = self._maybe_hostile("write", size)
        if not isinstance(written, int):
            raise SyscallError("kernel returned a non-integer write count")
        iago.check_write_result(size, written)
        self._charge("close", posted=True)
        return file

    def stat(self, path: str) -> int:
        """Size of a file (simulated size)."""
        self._charge("stat")
        size = self._vfs.read(path).size
        result = self._maybe_hostile("stat", size)
        if not isinstance(result, int):
            raise SyscallError("kernel returned a non-integer stat size")
        return iago.check_size_result(result)

    def exists(self, path: str) -> bool:
        self._charge("stat")
        return self._vfs.exists(path)

    def unlink(self, path: str) -> None:
        self._charge("unlink", posted=True)
        self._vfs.delete(path)

    def rename(self, src: str, dst: str) -> VirtualFile:
        """Atomically move ``src`` over ``dst`` (the commit primitive of
        the shield's journaled write protocol).  Result-bearing on the
        ring on purpose: the flush-then-wait makes every posted write
        durable before the commit point returns."""
        self._charge("rename")
        return self._vfs.rename(src, dst)

    def list_dir(self, prefix: str = "") -> List[str]:
        self._charge("getdents")
        paths = self._vfs.listdir(prefix)
        result = self._maybe_hostile("getdents", paths)
        if not isinstance(result, list):
            raise SyscallError("kernel returned a non-list directory listing")
        return iago.check_path_listing(prefix, result)

    def next_version(self, path: str) -> int:
        """The version the next write to ``path`` will get (0 if new)."""
        self._charge("stat")
        if not self._vfs.exists(path):
            return 0
        version = self._vfs.read(path).version + 1
        result = self._maybe_hostile("version", version)
        if not isinstance(result, int):
            raise SyscallError("kernel returned a non-integer version")
        return iago.check_size_result(result)

    # ------------------------------------------------------------------
    # Socket operations (the network shield and RPC stack charge here)
    # ------------------------------------------------------------------

    def socket_send(self, n_bytes: int, name: str = "sendmsg") -> None:
        """Charge transmitting ``n_bytes`` on a socket (fire-and-forget:
        the kernel drains the buffer on a handler thread)."""
        self._charge(name, posted=True)
        chunks = max(1, -(-n_bytes // IO_CHUNK))
        for _ in range(chunks - 1):
            self._charge("rw_continuation", posted=True)
        self._charge_copy(n_bytes)
        self.stats.bytes_sent += n_bytes

    def socket_recv(self, n_bytes: int, name: str = "recvmsg") -> None:
        """Charge receiving ``n_bytes`` from a socket (result-bearing:
        the caller needs the payload)."""
        self._charge(name)
        chunks = max(1, -(-n_bytes // IO_CHUNK))
        self._charge_batch("rw_continuation", chunks - 1)
        self._charge_copy(n_bytes)
        self.stats.bytes_received += n_bytes

    def nop_syscall(self, name: str = "nop") -> None:
        """A syscall with no semantic effect (cost-model microbenchmarks)."""
        self._charge(name)


# ----------------------------------------------------------------------
# Deprecated analytic constants (now measured from the plane)
# ----------------------------------------------------------------------

_DEPRECATED_CONSTANTS = {
    "USERSPACE_HANDLED_FRACTION": "userspace_handled_fraction",
    "ASYNC_KERNEL_OVERLAP": "kernel_overlap",
}


def __getattr__(name: str) -> float:
    measured_key = _DEPRECATED_CONSTANTS.get(name)
    if measured_key is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from repro.runtime.syscall_plane import measured_plane_fractions

    warnings.warn(
        f"{name} is deprecated: the syscall plane models the mechanism "
        "directly; this value is now *measured* from a reference workload "
        "on the default ring (see "
        "repro.runtime.syscall_plane.measured_plane_fractions).",
        DeprecationWarning,
        stacklevel=2,
    )
    return measured_plane_fractions()[measured_key]
