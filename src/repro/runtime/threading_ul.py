"""User-level threading (SCONE's in-enclave scheduler).

Enclave transitions are costly, so SCONE multiplexes M application
threads onto N OS threads *inside* the enclave: when an application
thread blocks, the in-enclave scheduler switches to another application
thread instead of exiting to the kernel (§3.3.3).  Consequences modelled
here:

- a blocking event costs a cheap user-level switch instead of an OS
  context switch (plus, in HW mode, the transition that the OS switch
  would imply);
- full CPU utilization needs no more OS threads than cores;
- parallel compute throughput follows the cost model's core/hyperthread
  yield curve.

The scheduler exposes :meth:`parallel_duration`, which the execution
engine uses to turn "X seconds of single-thread work" into elapsed time
on ``n`` threads, and :meth:`block`, which charges one blocking event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro._sim.clock import SimClock
from repro.enclave.cost_model import CostModel
from repro.enclave.sgx import Enclave, SgxMode
from typing import Optional

from repro.errors import ConfigurationError


class ThreadingModel(enum.Enum):
    """OS threading (native baseline) vs SCONE user-level threading."""

    OS = "os"
    USER_LEVEL = "user-level"


@dataclass
class SchedulerStats:
    blocks: int = 0
    switches: int = 0
    switch_time: float = 0.0
    #: Async-completion wait time hidden by running other app threads.
    hidden_time: float = 0.0


class UserLevelScheduler:
    """Charges scheduling costs and computes parallel elapsed time."""

    def __init__(
        self,
        cost_model: CostModel,
        clock: SimClock,
        mode: SgxMode = SgxMode.NATIVE,
        threading_model: ThreadingModel = ThreadingModel.USER_LEVEL,
        enclave: Optional[Enclave] = None,
    ) -> None:
        if mode is SgxMode.HW and threading_model is ThreadingModel.OS and enclave is None:
            raise ConfigurationError(
                "OS threading in HW mode needs an enclave to charge transitions"
            )
        self._model = cost_model
        self._clock = clock
        self._mode = mode
        self._threading_model = threading_model
        self._enclave = enclave
        self.stats = SchedulerStats()
        #: Runnable application threads right now (occupancy).  The
        #: syscall plane reads this to decide how much of an async
        #: completion wait other threads can hide.
        self._runnable = 1
        self._plane = None

    @property
    def threading_model(self) -> ThreadingModel:
        return self._threading_model

    @property
    def runnable(self) -> int:
        return self._runnable

    def set_runnable(self, threads: int) -> None:
        """Declare how many application threads are currently runnable."""
        if threads < 1:
            raise ConfigurationError(
                f"runnable thread count must be positive: {threads}"
            )
        self._runnable = threads

    def attach_plane(self, plane) -> None:
        """Wire the syscall plane whose batch :meth:`block` must flush."""
        self._plane = plane

    def hide_wait(self, duration: float) -> "tuple[float, float]":
        """Wait ``duration`` for an async completion, hiding the share
        other runnable threads can fill.

        With ``R`` runnable threads, the blocked thread's slot is one of
        ``R``, so a fraction ``(R - 1) / R`` of the wait overlaps other
        threads' work; switching away costs one user-level switch.
        Returns ``(exposed_charged, hidden)``.  OS threading (or a lone
        runnable thread) hides nothing — the wait is fully exposed.
        """
        if duration <= 0:
            return 0.0, 0.0
        extra = self._runnable - 1
        if self._threading_model is not ThreadingModel.USER_LEVEL or extra <= 0:
            self._clock.advance(duration)
            return duration, 0.0
        hidden = duration * (extra / (extra + 1.0))
        switch = self._model.userlevel_switch_cost
        if hidden <= switch:
            # Switching away costs more than it hides: just spin.
            self._clock.advance(duration)
            return duration, 0.0
        hidden -= switch
        exposed = duration - hidden
        self.stats.switches += 1
        self.stats.switch_time += switch
        self.stats.hidden_time += hidden
        self._clock.advance(exposed)
        return exposed, hidden

    def block(self) -> None:
        """One application thread blocked (I/O wait, lock, queue)."""
        if self._plane is not None:
            # The blocking thread's buffered fire-and-forget syscalls
            # must reach the ring before the scheduler switches away.
            self._plane.flush(on_block=True)
        self.stats.blocks += 1
        self.stats.switches += 1
        before = self._clock.now
        if self._threading_model is ThreadingModel.USER_LEVEL:
            self._clock.advance(self._model.userlevel_switch_cost)
        else:
            self._clock.advance(self._model.os_switch_cost)
            if self._mode is SgxMode.HW and self._enclave is not None:
                # An OS-level switch exits and re-enters the enclave.
                self._enclave.cpu.transition(asynchronous=False)
        self.stats.switch_time += self._clock.now - before

    def parallel_duration(self, single_thread_seconds: float, threads: int) -> float:
        """Elapsed time for work that takes ``single_thread_seconds`` on
        one thread when spread over ``threads`` application threads."""
        if single_thread_seconds < 0:
            raise ConfigurationError(
                f"negative work duration: {single_thread_seconds}"
            )
        speedup = self._model.effective_parallel_speedup(threads)
        return single_thread_seconds / speedup

    def run_parallel(self, single_thread_seconds: float, threads: int) -> float:
        """Charge the clock for a parallel region; returns elapsed time."""
        elapsed = self.parallel_duration(single_thread_seconds, threads)
        # The region's thread pool stays runnable afterwards (sticky):
        # syscall waits issued between regions overlap with it.
        self._runnable = max(threads, 1)
        self._clock.advance(elapsed)
        return elapsed
