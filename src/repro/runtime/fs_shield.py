"""The file-system shield: transparent chunked authenticated encryption.

Paper §3.3.3: whenever the application writes a file, the shield —
depending on user-configured *path prefixes* — encrypts and
authenticates, only authenticates, or passes the file through.  Files
are split into chunks handled separately; chunk metadata lives inside
the enclave; keys are configuration parameters provisioned by CAS, not
SGX sealing keys.

Integrity is bound per chunk (AEAD tag with the path, chunk index,
chunk count, and file version in the AAD), so swapping chunks between
files or versions is detected.  *Freshness* (rollback protection) needs
state that outlives the enclave, which is exactly the role of CAS's
auditing service (§3.3.2): the shield reports every committed file
version to a :class:`FreshnessTracker` and verifies against it on read.

Cost model: the paper measures shield cryptography at AES-NI rates
(~4 GB/s, §5.3 #2); real ChaCha20 here runs on the *real* bytes while
time is charged for the *declared* size at that bandwidth.

Crash consistency (the storage-plane hardening): the legacy *inline*
layout stores the whole envelope in one file, which is only atomic if
every OS write is — an assumption a hostile or crashing host does not
honour.  The *journaled* layout (``journal=True``, implied by
``replicas > 1``) therefore commits like a database:

1. every protected chunk is written to its own generation-named shadow
   file (``{path}.__chunk.{version}.{index}.{replica}``), ``replicas``
   copies each, never overwriting the live generation;
2. an authenticated manifest (chunk digests, version, geometry, MAC
   under the file key) is written to ``{path}.__commit``;
3. one atomic ``rename`` flips the manifest over ``{path}`` — THE
   commit point;
4. the version is committed to the freshness tracker, then stale
   generations are garbage-collected.

A crash at *any* syscall boundary leaves the file at exactly the old or
the new version; :meth:`FileSystemShield.recover` (the mount-time scan)
rolls uncommitted flips back, rolls the freshness record forward across
a crash between steps 3 and 4, collects strays, and re-replicates
damaged chunk copies.  Reads self-heal: a torn/rotted replica is
detected (manifest digest + AEAD), repaired from any intact copy, and
counted — the shield fails closed only when no valid replica remains.
"""

from __future__ import annotations

import enum
import hashlib
import struct
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro._sim import probe
from repro._sim.clock import SimClock
from repro.crypto import encoding
from repro.crypto.aead import get_aead
from repro.crypto.kdf import hkdf
from repro.enclave.cost_model import CostModel
from repro.errors import FreshnessError, IntegrityError, ShieldError, SyscallError
from repro.runtime import stats_registry
from repro.runtime.syscall import SyscallInterface

DEFAULT_CHUNK_SIZE = 64 * 1024

#: Suffix of the pending (not yet flipped) manifest of a journaled commit.
COMMIT_SUFFIX = ".__commit"

#: Separator of generation-named shadow chunk files.
CHUNK_MARKER = ".__chunk."

#: Domain separator of the manifest MAC.
_MANIFEST_MAC_INFO = b"securetf-fs-manifest"

# Decrypted chunks cached per shield, capped in bytes (not entries) so a
# few huge model files can't pin unbounded plaintext.
DEFAULT_CHUNK_CACHE_BYTES = 8 * 1024 * 1024


class ShieldPolicy(enum.Enum):
    """Per-path-prefix protection levels (paper §3.3.3)."""

    ENCRYPT = "encrypt"            # confidentiality + integrity
    AUTHENTICATE = "authenticate"  # integrity only
    PASSTHROUGH = "passthrough"    # untouched


@dataclass(frozen=True)
class PathRule:
    """Associates a path prefix with a protection policy."""

    prefix: str
    policy: ShieldPolicy


class FreshnessTracker(Protocol):
    """Rollback-protection interface (implemented by the CAS audit log)."""

    def commit(self, path: str, version: int, digest: bytes) -> None: ...

    def verify(self, path: str, version: int, digest: bytes) -> None: ...


class LocalFreshnessTracker:
    """In-enclave tracker: protects within one enclave lifetime only.

    CAS's audit service (:mod:`repro.cas.audit`) provides the durable,
    distributed version of this interface.
    """

    def __init__(self) -> None:
        self._latest: Dict[str, Tuple[int, bytes]] = {}

    def commit(self, path: str, version: int, digest: bytes) -> None:
        current = self._latest.get(path)
        if current is not None and version <= current[0]:
            raise FreshnessError(
                f"non-monotonic version {version} for {path!r} "
                f"(latest is {current[0]})"
            )
        self._latest[path] = (version, digest)

    def verify(self, path: str, version: int, digest: bytes) -> None:
        current = self._latest.get(path)
        if current is None:
            raise FreshnessError(f"no committed version known for {path!r}")
        expected_version, expected_digest = current
        if version != expected_version or digest != expected_digest:
            raise FreshnessError(
                f"stale or diverged state for {path!r}: saw version {version}, "
                f"latest committed is {expected_version}"
            )


@dataclass(eq=False)
class FsShieldStats:
    files_written: int = 0
    files_read: int = 0
    chunks_sealed: int = 0
    chunks_opened: int = 0
    crypto_bytes: int = 0
    crypto_time: float = 0.0
    # Cache effectiveness and real (wall-clock) crypto cost, as opposed
    # to the simulated time charged through the cost model above.
    key_cache_hits: int = 0
    key_cache_misses: int = 0
    chunk_cache_hits: int = 0
    chunk_cache_misses: int = 0
    real_crypto_time: float = 0.0
    bytes_by_cipher: Dict[str, int] = field(default_factory=dict)
    # Storage-plane robustness counters (journaled layout).
    torn_writes_detected: int = 0     # invalid/missing stored artifacts seen
    chunks_repaired: int = 0          # replicas rewritten from an intact copy
    recovery_scans: int = 0           # mount-time recover() passes
    recoveries_rolled_back: int = 0   # uncommitted flips discarded
    recoveries_rolled_forward: int = 0  # freshness commits completed post-crash
    replicas_written: int = 0         # chunk replica files written


class FileSystemShield:
    """Transparent file protection in front of the syscall layer."""

    def __init__(
        self,
        syscalls: SyscallInterface,
        master_key: bytes,
        rules: List[PathRule],
        cost_model: CostModel,
        clock: SimClock,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        cipher: str = "chacha20-poly1305",
        freshness: Optional[FreshnessTracker] = None,
        chunk_cache_bytes: int = DEFAULT_CHUNK_CACHE_BYTES,
        journal: bool = False,
        replicas: int = 1,
    ) -> None:
        if len(master_key) != 32:
            raise ShieldError("file-system shield needs a 32-byte master key")
        if chunk_size <= 0:
            raise ShieldError(f"chunk size must be positive: {chunk_size}")
        if replicas < 1:
            raise ShieldError(f"replica count must be >= 1: {replicas}")
        #: k-way chunk replication implies the journaled (multi-file)
        #: layout — replicas only exist as separate shadow files.
        self._journal = journal or replicas > 1
        self._replicas = replicas
        self._syscalls = syscalls
        self._master_key = master_key
        self._rules = list(rules)
        self._model = cost_model
        self._clock = clock
        self._chunk_size = chunk_size
        self._cipher = cipher
        self._freshness = freshness
        self._versions: Dict[str, int] = {}
        self._file_keys: Dict[str, bytes] = {}
        # Plaintext chunk cache.  The key binds (path, version, envelope
        # digest, chunk index): any rewrite bumps the version and any
        # tampering changes the digest, so stale or forged content can
        # never be served — the cache fails closed to a decrypt+verify.
        self._chunk_cache: "OrderedDict[Tuple[str, int, bytes, int], bytes]" = (
            OrderedDict()
        )
        self._chunk_cache_capacity = max(0, chunk_cache_bytes)
        self._chunk_cache_used = 0
        self.stats = FsShieldStats()
        stats_registry.register_fs_stats(self.stats, clock)

    # ------------------------------------------------------------------
    # Policy resolution
    # ------------------------------------------------------------------

    def policy_for(self, path: str) -> ShieldPolicy:
        """Longest-prefix rule match; default PASSTHROUGH (paper default)."""
        best: Optional[PathRule] = None
        for rule in self._rules:
            if path.startswith(rule.prefix):
                if best is None or len(rule.prefix) > len(best.prefix):
                    best = rule
        return best.policy if best is not None else ShieldPolicy.PASSTHROUGH

    # ------------------------------------------------------------------
    # Key/nonce derivation
    # ------------------------------------------------------------------

    def _file_key(self, path: str) -> bytes:
        key = self._file_keys.get(path)
        if key is not None:
            self.stats.key_cache_hits += 1
            return key
        self.stats.key_cache_misses += 1
        key = hkdf(
            salt=b"securetf-fs-shield",
            ikm=self._master_key,
            info=path.encode("utf-8"),
            length=32 if self._cipher != "aes-128-gcm" else 16,
        )
        self._file_keys[path] = key
        return key

    @staticmethod
    def _chunk_nonce(version: int, index: int) -> bytes:
        return struct.pack(">IQ", version & 0xFFFFFFFF, index)

    def _charge_crypto(self, simulated_bytes: int, n_chunks: int) -> None:
        duration = (
            simulated_bytes / self._model.fs_shield_crypto_bandwidth
            + n_chunks * self._model.fs_shield_chunk_overhead
        )
        self._clock.advance(duration)
        if probe.ACTIVE is not None:
            probe.ACTIVE.charge(
                self._clock,
                "crypto",
                duration,
                count=max(1, n_chunks),
                histogram="fs.chunk_crypto",
            )
        self.stats.crypto_bytes += simulated_bytes
        self.stats.crypto_time += duration

    def _account_real_crypto(self, label: str, n_bytes: int, elapsed: float) -> None:
        self.stats.real_crypto_time += elapsed
        by_cipher = self.stats.bytes_by_cipher
        by_cipher[label] = by_cipher.get(label, 0) + n_bytes

    # ------------------------------------------------------------------
    # Plaintext chunk cache
    # ------------------------------------------------------------------

    def _chunk_cache_get(
        self, path: str, version: int, digest: bytes, index: int
    ) -> Optional[bytes]:
        entry = self._chunk_cache.get((path, version, digest, index))
        if entry is None:
            self.stats.chunk_cache_misses += 1
            return None
        self._chunk_cache.move_to_end((path, version, digest, index))
        self.stats.chunk_cache_hits += 1
        return entry

    def _chunk_cache_put(
        self, path: str, version: int, digest: bytes, index: int, plaintext: bytes
    ) -> None:
        if self._chunk_cache_capacity <= 0:
            return
        if len(plaintext) > self._chunk_cache_capacity:
            return
        key = (path, version, digest, index)
        old = self._chunk_cache.pop(key, None)
        if old is not None:
            self._chunk_cache_used -= len(old)
        self._chunk_cache[key] = plaintext
        self._chunk_cache_used += len(plaintext)
        while self._chunk_cache_used > self._chunk_cache_capacity:
            _, evicted = self._chunk_cache.popitem(last=False)
            self._chunk_cache_used -= len(evicted)

    # ------------------------------------------------------------------
    # Chunk protection (shared by both layouts)
    # ------------------------------------------------------------------

    def _protect_chunks(
        self, path: str, policy: ShieldPolicy, version: int, chunks: List[bytes]
    ) -> Tuple[List[bytes], str]:
        protected: List[bytes] = []
        if policy is ShieldPolicy.ENCRYPT:
            aead = get_aead(self._cipher, self._file_key(path))
            for index, chunk in enumerate(chunks):
                aad = self._aad(path, policy, version, index, len(chunks))
                protected.append(
                    aead.encrypt(self._chunk_nonce(version, index), chunk, aad)
                )
                self.stats.chunks_sealed += 1
            return protected, self._cipher
        # AUTHENTICATE: plaintext chunks, keyed digests alongside
        key = self._file_key(path)
        for index, chunk in enumerate(chunks):
            aad = self._aad(path, policy, version, index, len(chunks))
            mac = hashlib.sha256(key + aad + chunk).digest()
            protected.append(mac + chunk)
            self.stats.chunks_sealed += 1
        return protected, "sha256-auth"

    def _open_chunk(
        self,
        path: str,
        policy: ShieldPolicy,
        version: int,
        index: int,
        n_chunks: int,
        protected: bytes,
        cipher: str,
    ) -> bytes:
        """Verify and open one protected chunk (raises IntegrityError)."""
        aad = self._aad(path, policy, version, index, n_chunks)
        if policy is ShieldPolicy.ENCRYPT:
            aead = get_aead(cipher, self._file_key(path))
            return aead.decrypt(self._chunk_nonce(version, index), protected, aad)
        if len(protected) < 32:
            raise IntegrityError(f"chunk {index} of {path!r} truncated")
        mac, body = protected[:32], protected[32:]
        if hashlib.sha256(self._file_key(path) + aad + body).digest() != mac:
            raise IntegrityError(f"chunk {index} of {path!r} failed authentication")
        return body

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def write_file(
        self, path: str, plaintext: bytes, declared_size: Optional[int] = None
    ) -> None:
        """Protect and persist a file according to its path's policy."""
        policy = self.policy_for(path)
        simulated = declared_size if declared_size is not None else len(plaintext)
        # Version = what the OS says the next write will get, floored by
        # this shield instance's own counter.  The floor matters: a lying
        # kernel reporting a stale version would otherwise trick us into
        # reusing a (key, nonce) pair — a nonce-reuse Iago attack.  The
        # OS-reported value is what lets a *fresh* shield instance (e.g.
        # the owner re-deploying a model) continue the version sequence
        # that the CAS audit log enforces monotonically.
        version = max(
            self._syscalls.next_version(path), self._versions.get(path, -1) + 1
        )
        self._versions[path] = version

        if policy is ShieldPolicy.PASSTHROUGH:
            self._syscalls.write_file(path, plaintext, declared_size=declared_size)
            self.stats.files_written += 1
            return

        chunks = self._split(plaintext)
        n_chunks = max(1, -(-simulated // self._chunk_size))
        started = time.perf_counter()
        protected, crypto_label = self._protect_chunks(path, policy, version, chunks)
        self._account_real_crypto(
            crypto_label, len(plaintext), time.perf_counter() - started
        )

        if self._journal:
            self._write_journaled(
                path,
                policy,
                version,
                chunks,
                protected,
                plaintext_size=len(plaintext),
                simulated=simulated,
                n_chunks=n_chunks,
                declared_size=declared_size,
            )
            return

        envelope = encoding.encode(
            {
                "policy": policy.value,
                "version": version,
                "cipher": self._cipher,
                "chunk_size": self._chunk_size,
                "plaintext_size": len(plaintext),
                "chunks": protected,
            }
        )
        self._charge_crypto(simulated, n_chunks)
        self._syscalls.write_file(path, envelope, declared_size=declared_size)
        self.stats.files_written += 1
        digest = hashlib.sha256(envelope).digest()
        if self._freshness is not None:
            self._freshness.commit(path, version, digest)
        # Warm the chunk cache: an immediate read-back (model deploy
        # followed by service start) then skips the decrypt entirely.
        for index, chunk in enumerate(chunks):
            self._chunk_cache_put(path, version, digest, index, chunk)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def read_file(self, path: str) -> bytes:
        """Read, verify, and (if encrypted) decrypt a protected file."""
        file = self._syscalls.read_file(path)
        policy = self.policy_for(path)
        self.stats.files_read += 1
        if policy is ShieldPolicy.PASSTHROUGH:
            return file.content

        try:
            envelope = encoding.decode(file.content)
        except IntegrityError as exc:
            raise ShieldError(f"corrupt shield envelope for {path!r}") from exc
        if isinstance(envelope, dict) and "mac" in envelope and "body" in envelope:
            return self._read_journaled(path, file, policy, envelope)
        for field in ("policy", "version", "cipher", "chunk_size", "plaintext_size", "chunks"):
            if field not in envelope:
                raise ShieldError(f"shield envelope for {path!r} missing {field!r}")
        if envelope["policy"] != policy.value:
            raise ShieldError(
                f"policy mismatch for {path!r}: stored {envelope['policy']!r}, "
                f"configured {policy.value!r}"
            )
        version = envelope["version"]
        chunks: List[bytes] = envelope["chunks"]
        simulated = file.size
        n_chunks = max(1, -(-simulated // self._chunk_size))
        self._charge_crypto(simulated, n_chunks)

        digest = hashlib.sha256(file.content).digest()
        if self._freshness is not None:
            self._freshness.verify(path, version, digest)

        plaintext_parts: List[bytes] = []
        real_bytes = 0
        started = time.perf_counter()
        if policy is ShieldPolicy.ENCRYPT:
            aead = None
            for index, chunk in enumerate(chunks):
                cached = self._chunk_cache_get(path, version, digest, index)
                if cached is not None:
                    plaintext_parts.append(cached)
                    continue
                if aead is None:
                    aead = get_aead(envelope["cipher"], self._file_key(path))
                aad = self._aad(path, policy, version, index, len(chunks))
                try:
                    part = aead.decrypt(self._chunk_nonce(version, index), chunk, aad)
                except IntegrityError as exc:
                    raise ShieldError(
                        f"chunk {index} of {path!r} failed authentication"
                    ) from exc
                plaintext_parts.append(part)
                real_bytes += len(part)
                self.stats.chunks_opened += 1
                self._chunk_cache_put(path, version, digest, index, part)
            crypto_label = envelope["cipher"]
        else:
            key = None
            for index, chunk in enumerate(chunks):
                cached = self._chunk_cache_get(path, version, digest, index)
                if cached is not None:
                    plaintext_parts.append(cached)
                    continue
                if len(chunk) < 32:
                    raise ShieldError(f"chunk {index} of {path!r} truncated")
                mac, body = chunk[:32], chunk[32:]
                if key is None:
                    key = self._file_key(path)
                aad = self._aad(path, policy, version, index, len(chunks))
                if hashlib.sha256(key + aad + body).digest() != mac:
                    raise ShieldError(
                        f"chunk {index} of {path!r} failed authentication"
                    )
                plaintext_parts.append(body)
                real_bytes += len(body)
                self.stats.chunks_opened += 1
                self._chunk_cache_put(path, version, digest, index, body)
            crypto_label = "sha256-auth"
        if real_bytes:
            self._account_real_crypto(
                crypto_label, real_bytes, time.perf_counter() - started
            )

        plaintext = b"".join(plaintext_parts)
        if len(plaintext) != envelope["plaintext_size"]:
            raise ShieldError(
                f"reassembled size {len(plaintext)} != recorded "
                f"{envelope['plaintext_size']} for {path!r}"
            )
        return plaintext

    # ------------------------------------------------------------------
    # Journaled layout: atomic commits, replicas, self-healing, recovery
    # ------------------------------------------------------------------

    @staticmethod
    def _chunk_path(path: str, version: int, index: int, replica: int) -> str:
        return f"{path}{CHUNK_MARKER}{version}.{index}.{replica}"

    def _manifest_mac(self, path: str, body_bytes: bytes) -> bytes:
        return hashlib.sha256(
            self._file_key(path) + _MANIFEST_MAC_INFO + body_bytes
        ).digest()

    def _decode_manifest(self, path: str, raw: bytes) -> Optional[dict]:
        """Decode + authenticate a journal manifest; None when ``raw`` is
        not a journal manifest at all; IntegrityError when it is one but
        fails authentication or is malformed."""
        try:
            envelope = encoding.decode(raw)
        except IntegrityError:
            return None
        if not isinstance(envelope, dict) or "mac" not in envelope or "body" not in envelope:
            return None
        body_bytes = envelope["body"]
        if envelope["mac"] != self._manifest_mac(path, body_bytes):
            raise IntegrityError(f"manifest of {path!r} failed authentication")
        body = encoding.decode(body_bytes)
        for name in (
            "policy", "version", "cipher", "chunk_size", "plaintext_size",
            "declared_size", "n_chunks", "replicas", "chunk_digests",
        ):
            if name not in body:
                raise IntegrityError(f"manifest of {path!r} missing {name!r}")
        if len(body["chunk_digests"]) != body["n_chunks"]:
            raise IntegrityError(f"manifest of {path!r} has inconsistent geometry")
        return body

    def _write_journaled(
        self,
        path: str,
        policy: ShieldPolicy,
        version: int,
        chunks: List[bytes],
        protected: List[bytes],
        *,
        plaintext_size: int,
        simulated: int,
        n_chunks: int,
        declared_size: Optional[int],
    ) -> None:
        """The crash-consistent commit: shadow chunks -> pending manifest
        -> atomic rename flip -> freshness commit -> GC."""
        digests = [hashlib.sha256(blob).digest() for blob in protected]
        for index, blob in enumerate(protected):
            for replica in range(self._replicas):
                self._syscalls.write_file(
                    self._chunk_path(path, version, index, replica), blob
                )
                self.stats.replicas_written += 1
        body_bytes = encoding.encode(
            {
                "policy": policy.value,
                "version": version,
                "cipher": self._cipher,
                "chunk_size": self._chunk_size,
                "plaintext_size": plaintext_size,
                "declared_size": simulated,
                "n_chunks": len(chunks),
                "replicas": self._replicas,
                "chunk_digests": digests,
            }
        )
        manifest = encoding.encode(
            {"body": body_bytes, "mac": self._manifest_mac(path, body_bytes)}
        )
        self._charge_crypto(simulated, n_chunks)
        pending = path + COMMIT_SUFFIX
        declared = (
            declared_size
            if declared_size is not None and declared_size >= len(manifest)
            else None
        )
        self._syscalls.write_file(pending, manifest, declared_size=declared)
        self._syscalls.rename(pending, path)  # THE commit point
        self.stats.files_written += 1
        digest = hashlib.sha256(manifest).digest()
        if self._freshness is not None:
            self._freshness.commit(path, version, digest)
        self._gc_generations(path, keep_version=version)
        for index, chunk in enumerate(chunks):
            self._chunk_cache_put(path, version, digest, index, chunk)

    def _gc_generations(self, path: str, keep_version: int) -> None:
        """Unlink shadow chunks of every generation except ``keep_version``."""
        marker = path + CHUNK_MARKER
        for chunk_file in self._syscalls.list_dir(marker):
            try:
                generation = int(chunk_file[len(marker):].split(".", 1)[0])
            except ValueError:
                continue
            if generation != keep_version:
                self._syscalls.unlink(chunk_file)

    def _load_chunk_replicas(
        self,
        path: str,
        version: int,
        index: int,
        replicas: int,
        expected_digest: bytes,
    ) -> Tuple[Optional[bytes], List[int]]:
        """Fetch one chunk's replicas; returns (first intact copy or
        None, list of damaged/missing replica indices)."""
        valid: Optional[bytes] = None
        damaged: List[int] = []
        for replica in range(replicas):
            chunk_file = self._chunk_path(path, version, index, replica)
            try:
                content = self._syscalls.read_file(chunk_file).content
            except SyscallError:
                damaged.append(replica)
                self.stats.torn_writes_detected += 1
                continue
            if hashlib.sha256(content).digest() != expected_digest:
                damaged.append(replica)
                self.stats.torn_writes_detected += 1
                continue
            if valid is None:
                valid = content
        return valid, damaged

    def _repair_replicas(
        self, path: str, version: int, index: int, damaged: List[int], blob: bytes
    ) -> None:
        """Re-replicate an intact chunk copy over each damaged replica."""
        for replica in damaged:
            self._syscalls.write_file(
                self._chunk_path(path, version, index, replica), blob
            )
            self.stats.chunks_repaired += 1

    def _read_journaled(
        self, path: str, file, policy: ShieldPolicy, envelope: dict
    ) -> bytes:
        body_bytes = envelope["body"]
        if envelope["mac"] != self._manifest_mac(path, body_bytes):
            raise IntegrityError(f"manifest of {path!r} failed authentication")
        body = self._decode_manifest(path, file.content)
        assert body is not None
        if body["policy"] != policy.value:
            raise ShieldError(
                f"policy mismatch for {path!r}: stored {body['policy']!r}, "
                f"configured {policy.value!r}"
            )
        version = body["version"]
        n_chunks = body["n_chunks"]
        simulated = body["declared_size"]
        self._charge_crypto(simulated, max(1, -(-simulated // self._chunk_size)))

        digest = hashlib.sha256(file.content).digest()
        if self._freshness is not None:
            self._freshness.verify(path, version, digest)

        plaintext_parts: List[bytes] = []
        real_bytes = 0
        started = time.perf_counter()
        for index in range(n_chunks):
            cached = self._chunk_cache_get(path, version, digest, index)
            if cached is not None:
                plaintext_parts.append(cached)
                continue
            blob, damaged = self._load_chunk_replicas(
                path, version, index, body["replicas"], body["chunk_digests"][index]
            )
            if blob is None:
                raise IntegrityError(
                    f"chunk {index} of {path!r}: no intact replica remains"
                )
            part = self._open_chunk(
                path, policy, version, index, n_chunks, blob, body["cipher"]
            )
            if damaged:  # self-heal: rewrite every damaged copy
                self._repair_replicas(path, version, index, damaged, blob)
            plaintext_parts.append(part)
            real_bytes += len(part)
            self.stats.chunks_opened += 1
            self._chunk_cache_put(path, version, digest, index, part)
        if real_bytes:
            self._account_real_crypto(
                body["cipher"] if policy is ShieldPolicy.ENCRYPT else "sha256-auth",
                real_bytes,
                time.perf_counter() - started,
            )

        plaintext = b"".join(plaintext_parts)
        if len(plaintext) != body["plaintext_size"]:
            raise ShieldError(
                f"reassembled size {len(plaintext)} != recorded "
                f"{body['plaintext_size']} for {path!r}"
            )
        return plaintext

    # ------------------------------------------------------------------
    # Mount-time recovery scan
    # ------------------------------------------------------------------

    def recover(self, prefix: str = "", heal: bool = True) -> Dict[str, str]:
        """Reconcile untrusted storage after a crash (run at mount).

        Per journaled file: discards uncommitted manifest flips (the old
        version stays live), completes freshness commits interrupted
        between the flip and the tracker (authenticated roll-forward —
        only the *next* version with a valid MAC qualifies; anything
        older is a rollback and stays rejected), garbage-collects stale
        chunk generations, and (``heal=True``) re-replicates damaged
        chunk copies.  Returns ``{path: outcome}`` with outcomes
        ``clean`` / ``rolled-back`` / ``rolled-forward`` / ``stale`` /
        ``damaged``.  Never raises on a damaged or stale file — those
        fail closed at read time.
        """
        self.stats.recovery_scans += 1
        report: Dict[str, str] = {}
        paths = self._syscalls.list_dir(prefix)

        strays: Dict[str, List[str]] = {}
        bases: List[str] = []
        for p in paths:
            if p.endswith(COMMIT_SUFFIX):
                base = p[: -len(COMMIT_SUFFIX)]
                # An unflipped commit: the crash landed between the
                # pending-manifest write and the rename.  Roll back.
                self._syscalls.unlink(p)
                self.stats.recoveries_rolled_back += 1
                report[base] = "rolled-back"
            elif CHUNK_MARKER in p:
                strays.setdefault(p.split(CHUNK_MARKER, 1)[0], []).append(p)
            else:
                bases.append(p)

        for base in sorted(set(bases) | set(strays)):
            if self.policy_for(base) is ShieldPolicy.PASSTHROUGH:
                continue
            if base not in bases:
                # Shadow chunks without any manifest: the first commit of
                # a new file never flipped.  The file never existed.
                for p in strays.get(base, []):
                    self._syscalls.unlink(p)
                if base not in report:
                    self.stats.recoveries_rolled_back += 1
                    report[base] = "rolled-back"
                continue
            raw = self._syscalls.read_file(base).content
            try:
                body = self._decode_manifest(base, raw)
            except IntegrityError:
                self.stats.torn_writes_detected += 1
                report[base] = "damaged"
                continue
            if body is None:  # inline envelope or foreign file
                for p in strays.get(base, []):
                    self._syscalls.unlink(p)
                continue
            version = body["version"]
            digest = hashlib.sha256(raw).digest()
            outcome = report.get(base, "clean")
            if self._freshness is not None:
                try:
                    self._freshness.verify(base, version, digest)
                except FreshnessError:
                    try:
                        # Roll forward: the commit reached disk but died
                        # before the tracker heard about it.  commit()
                        # enforces monotonicity, so only a genuinely
                        # newer (and MAC-valid) manifest can pass here.
                        self._freshness.commit(base, version, digest)
                        outcome = "rolled-forward"
                        self.stats.recoveries_rolled_forward += 1
                    except FreshnessError:
                        outcome = "stale"
            # GC stale generations (crash during a previous GC).
            marker = base + CHUNK_MARKER
            for p in strays.get(base, []):
                try:
                    generation = int(p[len(marker):].split(".", 1)[0])
                except ValueError:
                    continue
                if generation != version:
                    self._syscalls.unlink(p)
            if heal and outcome in ("clean", "rolled-forward"):
                for index in range(body["n_chunks"]):
                    blob, damaged = self._load_chunk_replicas(
                        base, version, index, body["replicas"],
                        body["chunk_digests"][index],
                    )
                    if blob is None:
                        outcome = "damaged"
                        break
                    if damaged:
                        self._repair_replicas(base, version, index, damaged, blob)
            report[base] = outcome
        return report

    def drop_caches(self) -> None:
        """Forget cached file keys and plaintext chunks (never required
        for correctness — the caches are version- and digest-bound — but
        lets tests and benchmarks force the cold path)."""
        self._file_keys.clear()
        self._chunk_cache.clear()
        self._chunk_cache_used = 0

    def stat(self, path: str) -> int:
        return self._syscalls.stat(path)

    def exists(self, path: str) -> bool:
        return self._syscalls.exists(path)

    # ------------------------------------------------------------------

    def _split(self, data: bytes) -> List[bytes]:
        if not data:
            return [b""]
        return [
            data[i: i + self._chunk_size]
            for i in range(0, len(data), self._chunk_size)
        ]

    @staticmethod
    def _aad(
        path: str, policy: ShieldPolicy, version: int, index: int, n_chunks: int
    ) -> bytes:
        return encoding.encode(
            {
                "path": path,
                "policy": policy.value,
                "version": version,
                "index": index,
                "n_chunks": n_chunks,
            }
        )
