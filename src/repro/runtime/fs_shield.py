"""The file-system shield: transparent chunked authenticated encryption.

Paper §3.3.3: whenever the application writes a file, the shield —
depending on user-configured *path prefixes* — encrypts and
authenticates, only authenticates, or passes the file through.  Files
are split into chunks handled separately; chunk metadata lives inside
the enclave; keys are configuration parameters provisioned by CAS, not
SGX sealing keys.

Integrity is bound per chunk (AEAD tag with the path, chunk index,
chunk count, and file version in the AAD), so swapping chunks between
files or versions is detected.  *Freshness* (rollback protection) needs
state that outlives the enclave, which is exactly the role of CAS's
auditing service (§3.3.2): the shield reports every committed file
version to a :class:`FreshnessTracker` and verifies against it on read.

Cost model: the paper measures shield cryptography at AES-NI rates
(~4 GB/s, §5.3 #2); real ChaCha20 here runs on the *real* bytes while
time is charged for the *declared* size at that bandwidth.
"""

from __future__ import annotations

import enum
import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

from repro._sim.clock import SimClock
from repro.crypto import encoding
from repro.crypto.aead import get_aead
from repro.crypto.kdf import hkdf
from repro.enclave.cost_model import CostModel
from repro.errors import FreshnessError, IntegrityError, ShieldError
from repro.runtime.syscall import SyscallInterface

DEFAULT_CHUNK_SIZE = 64 * 1024


class ShieldPolicy(enum.Enum):
    """Per-path-prefix protection levels (paper §3.3.3)."""

    ENCRYPT = "encrypt"            # confidentiality + integrity
    AUTHENTICATE = "authenticate"  # integrity only
    PASSTHROUGH = "passthrough"    # untouched


@dataclass(frozen=True)
class PathRule:
    """Associates a path prefix with a protection policy."""

    prefix: str
    policy: ShieldPolicy


class FreshnessTracker(Protocol):
    """Rollback-protection interface (implemented by the CAS audit log)."""

    def commit(self, path: str, version: int, digest: bytes) -> None: ...

    def verify(self, path: str, version: int, digest: bytes) -> None: ...


class LocalFreshnessTracker:
    """In-enclave tracker: protects within one enclave lifetime only.

    CAS's audit service (:mod:`repro.cas.audit`) provides the durable,
    distributed version of this interface.
    """

    def __init__(self) -> None:
        self._latest: Dict[str, Tuple[int, bytes]] = {}

    def commit(self, path: str, version: int, digest: bytes) -> None:
        current = self._latest.get(path)
        if current is not None and version <= current[0]:
            raise FreshnessError(
                f"non-monotonic version {version} for {path!r} "
                f"(latest is {current[0]})"
            )
        self._latest[path] = (version, digest)

    def verify(self, path: str, version: int, digest: bytes) -> None:
        current = self._latest.get(path)
        if current is None:
            raise FreshnessError(f"no committed version known for {path!r}")
        expected_version, expected_digest = current
        if version != expected_version or digest != expected_digest:
            raise FreshnessError(
                f"stale or diverged state for {path!r}: saw version {version}, "
                f"latest committed is {expected_version}"
            )


@dataclass
class FsShieldStats:
    files_written: int = 0
    files_read: int = 0
    chunks_sealed: int = 0
    chunks_opened: int = 0
    crypto_bytes: int = 0
    crypto_time: float = 0.0


class FileSystemShield:
    """Transparent file protection in front of the syscall layer."""

    def __init__(
        self,
        syscalls: SyscallInterface,
        master_key: bytes,
        rules: List[PathRule],
        cost_model: CostModel,
        clock: SimClock,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        cipher: str = "chacha20-poly1305",
        freshness: Optional[FreshnessTracker] = None,
    ) -> None:
        if len(master_key) != 32:
            raise ShieldError("file-system shield needs a 32-byte master key")
        if chunk_size <= 0:
            raise ShieldError(f"chunk size must be positive: {chunk_size}")
        self._syscalls = syscalls
        self._master_key = master_key
        self._rules = list(rules)
        self._model = cost_model
        self._clock = clock
        self._chunk_size = chunk_size
        self._cipher = cipher
        self._freshness = freshness
        self._versions: Dict[str, int] = {}
        self.stats = FsShieldStats()

    # ------------------------------------------------------------------
    # Policy resolution
    # ------------------------------------------------------------------

    def policy_for(self, path: str) -> ShieldPolicy:
        """Longest-prefix rule match; default PASSTHROUGH (paper default)."""
        best: Optional[PathRule] = None
        for rule in self._rules:
            if path.startswith(rule.prefix):
                if best is None or len(rule.prefix) > len(best.prefix):
                    best = rule
        return best.policy if best is not None else ShieldPolicy.PASSTHROUGH

    # ------------------------------------------------------------------
    # Key/nonce derivation
    # ------------------------------------------------------------------

    def _file_key(self, path: str) -> bytes:
        return hkdf(
            salt=b"securetf-fs-shield",
            ikm=self._master_key,
            info=path.encode("utf-8"),
            length=32 if self._cipher != "aes-128-gcm" else 16,
        )

    @staticmethod
    def _chunk_nonce(version: int, index: int) -> bytes:
        return struct.pack(">IQ", version & 0xFFFFFFFF, index)

    def _charge_crypto(self, simulated_bytes: int, n_chunks: int) -> None:
        duration = (
            simulated_bytes / self._model.fs_shield_crypto_bandwidth
            + n_chunks * self._model.fs_shield_chunk_overhead
        )
        self._clock.advance(duration)
        self.stats.crypto_bytes += simulated_bytes
        self.stats.crypto_time += duration

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def write_file(
        self, path: str, plaintext: bytes, declared_size: Optional[int] = None
    ) -> None:
        """Protect and persist a file according to its path's policy."""
        policy = self.policy_for(path)
        simulated = declared_size if declared_size is not None else len(plaintext)
        # Version = what the OS says the next write will get, floored by
        # this shield instance's own counter.  The floor matters: a lying
        # kernel reporting a stale version would otherwise trick us into
        # reusing a (key, nonce) pair — a nonce-reuse Iago attack.  The
        # OS-reported value is what lets a *fresh* shield instance (e.g.
        # the owner re-deploying a model) continue the version sequence
        # that the CAS audit log enforces monotonically.
        version = max(
            self._syscalls.next_version(path), self._versions.get(path, -1) + 1
        )
        self._versions[path] = version

        if policy is ShieldPolicy.PASSTHROUGH:
            self._syscalls.write_file(path, plaintext, declared_size=declared_size)
            self.stats.files_written += 1
            return

        chunks = self._split(plaintext)
        n_chunks = max(1, -(-simulated // self._chunk_size))
        protected: List[bytes] = []
        if policy is ShieldPolicy.ENCRYPT:
            aead = get_aead(self._cipher, self._file_key(path))
            for index, chunk in enumerate(chunks):
                aad = self._aad(path, policy, version, index, len(chunks))
                protected.append(
                    aead.encrypt(self._chunk_nonce(version, index), chunk, aad)
                )
                self.stats.chunks_sealed += 1
        else:  # AUTHENTICATE: plaintext chunks, keyed digests alongside
            key = self._file_key(path)
            for index, chunk in enumerate(chunks):
                aad = self._aad(path, policy, version, index, len(chunks))
                mac = hashlib.sha256(key + aad + chunk).digest()
                protected.append(mac + chunk)
                self.stats.chunks_sealed += 1

        envelope = encoding.encode(
            {
                "policy": policy.value,
                "version": version,
                "cipher": self._cipher,
                "chunk_size": self._chunk_size,
                "plaintext_size": len(plaintext),
                "chunks": protected,
            }
        )
        self._charge_crypto(simulated, n_chunks)
        self._syscalls.write_file(path, envelope, declared_size=declared_size)
        self.stats.files_written += 1
        if self._freshness is not None:
            self._freshness.commit(path, version, hashlib.sha256(envelope).digest())

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def read_file(self, path: str) -> bytes:
        """Read, verify, and (if encrypted) decrypt a protected file."""
        file = self._syscalls.read_file(path)
        policy = self.policy_for(path)
        self.stats.files_read += 1
        if policy is ShieldPolicy.PASSTHROUGH:
            return file.content

        try:
            envelope = encoding.decode(file.content)
        except IntegrityError as exc:
            raise ShieldError(f"corrupt shield envelope for {path!r}") from exc
        for field in ("policy", "version", "cipher", "chunk_size", "plaintext_size", "chunks"):
            if field not in envelope:
                raise ShieldError(f"shield envelope for {path!r} missing {field!r}")
        if envelope["policy"] != policy.value:
            raise ShieldError(
                f"policy mismatch for {path!r}: stored {envelope['policy']!r}, "
                f"configured {policy.value!r}"
            )
        version = envelope["version"]
        chunks: List[bytes] = envelope["chunks"]
        simulated = file.size
        n_chunks = max(1, -(-simulated // self._chunk_size))
        self._charge_crypto(simulated, n_chunks)

        if self._freshness is not None:
            self._freshness.verify(
                path, version, hashlib.sha256(file.content).digest()
            )

        plaintext_parts: List[bytes] = []
        if policy is ShieldPolicy.ENCRYPT:
            aead = get_aead(envelope["cipher"], self._file_key(path))
            for index, chunk in enumerate(chunks):
                aad = self._aad(path, policy, version, index, len(chunks))
                try:
                    plaintext_parts.append(
                        aead.decrypt(self._chunk_nonce(version, index), chunk, aad)
                    )
                except IntegrityError as exc:
                    raise ShieldError(
                        f"chunk {index} of {path!r} failed authentication"
                    ) from exc
                self.stats.chunks_opened += 1
        else:
            key = self._file_key(path)
            for index, chunk in enumerate(chunks):
                if len(chunk) < 32:
                    raise ShieldError(f"chunk {index} of {path!r} truncated")
                mac, body = chunk[:32], chunk[32:]
                aad = self._aad(path, policy, version, index, len(chunks))
                if hashlib.sha256(key + aad + body).digest() != mac:
                    raise ShieldError(
                        f"chunk {index} of {path!r} failed authentication"
                    )
                plaintext_parts.append(body)
                self.stats.chunks_opened += 1

        plaintext = b"".join(plaintext_parts)
        if len(plaintext) != envelope["plaintext_size"]:
            raise ShieldError(
                f"reassembled size {len(plaintext)} != recorded "
                f"{envelope['plaintext_size']} for {path!r}"
            )
        return plaintext

    def stat(self, path: str) -> int:
        return self._syscalls.stat(path)

    def exists(self, path: str) -> bool:
        return self._syscalls.exists(path)

    # ------------------------------------------------------------------

    def _split(self, data: bytes) -> List[bytes]:
        if not data:
            return [b""]
        return [
            data[i: i + self._chunk_size]
            for i in range(0, len(data), self._chunk_size)
        ]

    @staticmethod
    def _aad(
        path: str, policy: ShieldPolicy, version: int, index: int, n_chunks: int
    ) -> bytes:
        return encoding.encode(
            {
                "path": path,
                "policy": policy.value,
                "version": version,
                "index": index,
                "n_chunks": n_chunks,
            }
        )
