"""libc flavours: glibc, musl, and the SCONE libc.

Section 4.2 of the paper walks through compiling TensorFlow against
musl (Alpine) and the SCONE libc, and §5.3 #1 discusses the measured
glibc-vs-musl difference.  What matters for the simulation:

- a **compute factor** (glibc is tuned for speed, musl for size; SCONE's
  modified musl adds a little interposition overhead),
- the **binary size** the libc contributes to the enclave image (the
  decisive term for EPC pressure — Graphene ships an entire libOS,
  SCONE only a slim libc, see Fig. 5's discussion), and
- whether system calls can be issued **asynchronously** (SCONE's
  exit-less interface).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._sim.units import MiB


@dataclass(frozen=True)
class LibcFlavor:
    """A C library variant an application can be linked against."""

    name: str
    compute_factor: float
    binary_size: int
    supports_async_syscalls: bool
    description: str
    #: Code footprint of this libc touched per executed op (allocator,
    #: memcpy, syscall shims).  Library OSes interpose far more (every
    #: call walks the shim + PAL), which matters for EPC residency.
    hot_bytes_per_op: int = 64 * 1024

    def __str__(self) -> str:
        return self.name


#: Stock GNU libc on Ubuntu — the fastest native baseline.
GLIBC = LibcFlavor(
    name="glibc",
    compute_factor=1.000,
    binary_size=int(12.5 * MiB),
    supports_async_syscalls=False,
    description="GNU C library (Ubuntu), tuned for performance",
    hot_bytes_per_op=96 * 1024,
)

#: musl on Alpine — smaller and a touch slower (paper §5.3 #1).
MUSL = LibcFlavor(
    name="musl",
    compute_factor=1.025,
    binary_size=int(1.0 * MiB),
    supports_async_syscalls=False,
    description="musl libc (Alpine), tuned for size",
    hot_bytes_per_op=48 * 1024,
)

#: SCONE's modified musl — small, with the asynchronous syscall interface.
SCONE_LIBC = LibcFlavor(
    name="scone",
    compute_factor=1.015,
    binary_size=int(1.6 * MiB),
    supports_async_syscalls=True,
    description="SCONE libc (modified musl with exit-less syscalls)",
    hot_bytes_per_op=64 * 1024,
)
