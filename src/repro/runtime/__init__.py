"""SCONE-like shielded runtime (the secureTF controller's substrate).

The paper builds secureTF on SCONE (§3.3): applications are linked
against a modified libc; system calls leave the enclave asynchronously;
a user-level scheduler keeps threads inside the enclave; and two shields
transparently protect all state that crosses the enclave boundary —
the **file-system shield** (chunked authenticated encryption of files)
and the **network shield** (transparent TLS on all sockets).  Results
returned by the untrusted OS are sanity-checked to stop Iago attacks.

This package implements each of those pieces against the simulated
enclave/OS, with real cryptography on real bytes.
"""

from repro.runtime.vfs import VirtualFile, VirtualFileSystem
from repro.runtime.libc import LibcFlavor, GLIBC, MUSL, SCONE_LIBC
from repro.runtime.syscall import SyscallInterface, SyscallStats
from repro.runtime.threading_ul import UserLevelScheduler, ThreadingModel
from repro.runtime.fs_shield import FileSystemShield, ShieldPolicy, PathRule
from repro.runtime.net_shield import NetworkShield, ShieldedChannel
from repro.runtime.scone import SconeRuntime, RuntimeConfig

__all__ = [
    "VirtualFile",
    "VirtualFileSystem",
    "LibcFlavor",
    "GLIBC",
    "MUSL",
    "SCONE_LIBC",
    "SyscallInterface",
    "SyscallStats",
    "UserLevelScheduler",
    "ThreadingModel",
    "FileSystemShield",
    "ShieldPolicy",
    "PathRule",
    "NetworkShield",
    "ShieldedChannel",
    "SconeRuntime",
    "RuntimeConfig",
]
