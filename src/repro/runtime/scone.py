"""The SCONE runtime facade: one object tying the controller together.

A :class:`SconeRuntime` is what the paper calls the *secureTF
controller* substrate (§3.3.3): it builds the measured enclave image
(application binary + libc), instantiates the syscall layer, user-level
scheduler, and file-system shield for the configured mode, and exposes
attestation.  The same facade also runs NATIVE (no SCONE, no enclave)
so that every benchmark mode goes through identical code paths and the
mode differences come only from the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro._sim import probe
from repro._sim.clock import SimClock
from repro._sim.rng import DeterministicRng
from repro.enclave.attestation import Quote
from repro.enclave.cost_model import CostModel
from repro.enclave.memory import EnclaveMemory
from repro.enclave.sgx import Enclave, EnclaveImage, Segment, SgxCpu, SgxMode
from repro.errors import ConfigurationError, EnclaveError, SecurityError
from repro.runtime.fs_shield import (
    FileSystemShield,
    FreshnessTracker,
    PathRule,
)
from repro.runtime.libc import GLIBC, SCONE_LIBC, LibcFlavor
from repro.runtime.net_shield import NetworkShield
from repro.runtime.syscall import SyscallInterface
from repro.runtime.syscall_plane import SyscallPlaneConfig
from repro.runtime.threading_ul import ThreadingModel, UserLevelScheduler
from repro.runtime.vfs import VirtualFileSystem


@dataclass
class RuntimeConfig:
    """Configuration of one secureTF process."""

    name: str
    mode: SgxMode = SgxMode.HW
    libc: Optional[LibcFlavor] = None  # default: SCONE libc in SIM/HW, glibc native
    binary_size: int = 2 * 1024 * 1024
    binary_identity: bytes = b""
    heap_size: int = 64 * 1024 * 1024
    max_threads: int = 8
    async_syscalls: bool = True
    #: Slots in the exit-less submission/completion ring.
    syscall_ring_depth: int = 64
    #: OS-side syscall handler threads serving the ring.
    syscall_handler_threads: int = 2
    threading: ThreadingModel = ThreadingModel.USER_LEVEL
    fs_shield_enabled: bool = True
    fs_rules: List[PathRule] = field(default_factory=list)
    fs_key: Optional[bytes] = None
    fs_chunk_size: int = 64 * 1024
    #: Crash-consistent (journaled) shield layout: atomic rename commits
    #: plus mount-time recovery.  Implied by ``fs_replicas > 1``.
    fs_journal: bool = False
    #: k-way replica placement for shielded chunks (self-healing reads).
    fs_replicas: int = 1
    freshness: Optional[FreshnessTracker] = None
    #: SCONE_ALLOW_DLOPEN analogue: permit runtime library loading, with
    #: mandatory fs-shield authentication (§4.1 — required for Python).
    allow_dlopen: bool = False
    #: Register this process with the active telemetry recorder (spans,
    #: layer charges).  Deliberately *not* part of the enclave image:
    #: turning tracing on must not change the measurement.
    tracing: bool = False

    def resolved_libc(self) -> LibcFlavor:
        if self.libc is not None:
            return self.libc
        return GLIBC if self.mode is SgxMode.NATIVE else SCONE_LIBC


def build_enclave_image(config: RuntimeConfig) -> EnclaveImage:
    """The measured enclave image a config produces.

    Exposed separately so policy authors can compute the *expected*
    measurement of a service before any container exists — CAS policies
    are written against measurements, not running enclaves.
    """
    libc = config.resolved_libc()
    return EnclaveImage(
        name=config.name,
        segments=[
            Segment.declared(
                "binary",
                config.binary_size,
                config.binary_identity or config.name.encode(),
                kind="code",
            ),
            Segment.declared(
                "libc", libc.binary_size, libc.name.encode(), kind="code"
            ),
        ],
        heap_size=config.heap_size,
        max_threads=config.max_threads,
    )


def expected_measurement(config: RuntimeConfig) -> bytes:
    """MRENCLAVE a container started from ``config`` will have."""
    return build_enclave_image(config).measurement()


class SconeRuntime:
    """A running secureTF process in NATIVE, SIM, or HW mode."""

    def __init__(
        self,
        config: RuntimeConfig,
        vfs: VirtualFileSystem,
        cost_model: CostModel,
        clock: SimClock,
        cpu: Optional[SgxCpu] = None,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        if config.mode is not SgxMode.NATIVE and cpu is None:
            raise ConfigurationError(
                f"{config.mode.value} mode needs an SgxCpu to run on"
            )
        if config.mode is not SgxMode.NATIVE and config.resolved_libc() is GLIBC:
            raise ConfigurationError(
                "SCONE links against its own libc; glibc is native-only"
            )
        self.config = config
        self.cost_model = cost_model
        self.clock = clock
        self.cpu = cpu
        self.rng = rng or DeterministicRng(0, label=config.name)
        self._libc = config.resolved_libc()

        self.enclave: Optional[Enclave] = None
        if config.mode is SgxMode.NATIVE:
            # Plain process: anonymous memory, native bandwidth, no EPC.
            self.memory = EnclaveMemory(0, cost_model, clock, epc=None)
            self.memory.alloc("binary", config.binary_size, kind="code")
            self.memory.alloc("libc", self._libc.binary_size, kind="code")
            self.memory.alloc("heap", config.heap_size, kind="heap")
        else:
            image = build_enclave_image(config)
            assert cpu is not None
            self.enclave = cpu.create_enclave(image, config.mode)
            self.memory = self.enclave.memory

        self.syscalls = SyscallInterface(
            vfs,
            cost_model,
            clock,
            mode=config.mode,
            enclave=self.enclave,
            asynchronous=config.async_syscalls and self._libc.supports_async_syscalls,
            plane_config=SyscallPlaneConfig(
                ring_depth=config.syscall_ring_depth,
                handler_threads=config.syscall_handler_threads,
            ),
        )
        self.scheduler = UserLevelScheduler(
            cost_model,
            clock,
            mode=config.mode,
            threading_model=config.threading,
            enclave=self.enclave,
        )
        # Completion waits hide behind the scheduler's runnable threads,
        # and scheduler blocks flush the ring's submission batch.
        self.syscalls.attach_scheduler(self.scheduler)
        self.fs: Optional[FileSystemShield] = None
        #: Paths dlopen'd (and authenticated) during this runtime's life.
        self.loaded_libraries: List[str] = []
        if config.fs_shield_enabled and config.mode is not SgxMode.NATIVE:
            if config.fs_key is not None:
                self.install_fs_key(config.fs_key, config.freshness)
            # else: the key arrives later, from CAS, via install_fs_key().
        if config.tracing and probe.ACTIVE is not None:
            # Label first-wins in the tracer: a container sharing its
            # node's clock cannot relabel the node.
            probe.ACTIVE.register_clock(clock, config.name)

    # ------------------------------------------------------------------

    @property
    def mode(self) -> SgxMode:
        return self.config.mode

    @property
    def libc(self) -> LibcFlavor:
        return self._libc

    @property
    def compute_factor(self) -> float:
        """Multiplier on pure compute time from the linked libc."""
        return self._libc.compute_factor

    @property
    def measurement(self) -> bytes:
        if self.enclave is None:
            raise EnclaveError("NATIVE mode has no measurement")
        return self.enclave.measurement

    def attest(self, report_data: bytes = b"") -> Quote:
        """Produce a quote for this process (debug-flagged in SIM mode)."""
        if self.enclave is None:
            raise EnclaveError("NATIVE mode cannot be attested")
        with probe.span(
            self.clock,
            "attestation.quote",
            category="attestation",
            attrs={"process": self.config.name},
        ):
            return self.enclave.get_quote(report_data)

    def install_fs_key(self, key: bytes, freshness=None) -> None:
        """Arm the file-system shield with a (CAS-provisioned) key."""
        if not self.config.fs_shield_enabled:
            raise ConfigurationError(
                f"runtime {self.config.name!r} has the fs shield disabled"
            )
        if self.config.mode is SgxMode.NATIVE:
            raise ConfigurationError("NATIVE mode has no file-system shield")
        self.fs = FileSystemShield(
            self.syscalls,
            key,
            self.config.fs_rules,
            self.cost_model,
            self.clock,
            chunk_size=self.config.fs_chunk_size,
            freshness=freshness if freshness is not None else self.config.freshness,
            journal=self.config.fs_journal,
            replicas=self.config.fs_replicas,
        )

    def make_net_shield(self, identity, trusted_roots) -> NetworkShield:
        """Build the network shield once CAS has provisioned an identity."""
        return NetworkShield(
            identity,
            trusted_roots,
            self.cost_model,
            self.clock,
            self.rng.child("netshield"),
            syscalls=self.syscalls,
        )

    def dlopen(self, path: str) -> bytes:
        """Load a dynamic library at runtime, SCONE-style (paper §4.1).

        SGX cannot extend an enclave's measurement after EINIT, so a
        dlopen'd library is invisible to attestation; SCONE therefore
        forbids dlopen unless ``SCONE_ALLOW_DLOPEN`` is set *and* the
        library is authenticated by the file-system shield — which is
        exactly how secureTF supports the Python interpreter's imports.

        Returns the library bytes after authentication.  Raises
        :class:`~repro.errors.SecurityError` when dlopen is disabled, the
        shield is not armed, or the path is not under an authenticated
        (or encrypted) rule.
        """
        from repro.runtime.fs_shield import ShieldPolicy

        if not self.config.allow_dlopen:
            raise SecurityError(
                "dlopen is disabled (set RuntimeConfig.allow_dlopen, the "
                "SCONE_ALLOW_DLOPEN analogue)"
            )
        if self.mode is SgxMode.NATIVE:
            # Native processes load libraries unauthenticated.
            return self.syscalls.read_file(path).content
        if self.fs is None:
            raise SecurityError(
                "dlopen requires the file-system shield to authenticate "
                "loaded libraries (paper §4.1)"
            )
        policy = self.fs.policy_for(path)
        if policy is ShieldPolicy.PASSTHROUGH:
            raise SecurityError(
                f"library {path!r} is not under an authenticated path "
                f"prefix; refusing to load unverified code"
            )
        library = self.fs.read_file(path)
        self.loaded_libraries.append(path)
        return library

    def read_protected(self, path: str) -> bytes:
        """Read a file through the shield if enabled, else the raw syscalls."""
        if self.fs is not None:
            return self.fs.read_file(path)
        return self.syscalls.read_file(path).content

    def write_protected(self, path: str, data: bytes, declared_size=None) -> None:
        if self.fs is not None:
            self.fs.write_file(path, data, declared_size=declared_size)
        else:
            self.syscalls.write_file(path, data, declared_size=declared_size)

    def shutdown(self) -> None:
        if self.enclave is not None:
            self.enclave.destroy()
            self.enclave = None
