"""An in-memory virtual file system (the untrusted OS's storage).

Files hold *real bytes* — what the file-system shield encrypts and
authenticates — plus an optional **declared size** used for cost
accounting, which lets a 163 MB model be represented by its real
(small) serialized weights while I/O and cryptography are charged for
the full simulated size.  This is the substitution DESIGN.md documents
for the paper's pretrained models.

The VFS is deliberately *untrusted*: tests mutate stored bytes directly
to emulate a malicious OS and assert that the shield detects it.

Writes are **not** assumed atomic: a :class:`~repro.runtime
.storage_faults.StorageFaultPlan` attached via :attr:`VirtualFileSystem
.faults` can tear a write, kill the "process" at any mutating-operation
boundary (:class:`~repro.errors.StorageCrash`), rot stored bytes, or
roll the whole store back to a snapshot.  :meth:`rename` is the one
atomic mutating primitive (as on a real POSIX filesystem) — the shield's
commit protocol is built on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import StorageCrash, SyscallError


@dataclass
class VirtualFile:
    """One stored file: real content plus simulated (declared) size."""

    path: str
    content: bytes = b""
    declared_size: Optional[int] = None
    version: int = 0

    @property
    def size(self) -> int:
        """The simulated size used for cost accounting."""
        return self.declared_size if self.declared_size is not None else len(self.content)


class VirtualFileSystem:
    """Flat-namespace file store owned by a (simulated) node's OS."""

    def __init__(self) -> None:
        self._files: Dict[str, VirtualFile] = {}
        #: Optional attached :class:`~repro.runtime.storage_faults
        #: .StorageFaultPlan` (or anything with its hook signature).
        self.faults = None

    def exists(self, path: str) -> bool:
        return path in self._files

    def _fault_mutation(self, op: str, path: str, content: Optional[bytes]):
        if self.faults is None:
            return None
        action = self.faults.before_mutation(op, path, content)
        if action is not None and action.crash_before:
            raise StorageCrash(
                f"simulated crash before {op} of {path!r}"
            )
        return action

    @staticmethod
    def _fault_after(op: str, path: str, action) -> None:
        if action is not None and action.crash_after:
            raise StorageCrash(f"simulated crash after {op} of {path!r}")

    def write(
        self, path: str, content: bytes, declared_size: Optional[int] = None
    ) -> VirtualFile:
        """Create or replace a file (NOT atomic under an attached fault
        plan: the payload may be torn and the caller killed)."""
        if declared_size is not None and declared_size < len(content):
            raise SyscallError(
                f"declared size {declared_size} smaller than real content "
                f"({len(content)} bytes) for {path!r}"
            )
        action = self._fault_mutation("write", path, content)
        if action is not None and action.content is not None:
            content = action.content  # torn write: only a prefix persists
        existing = self._files.get(path)
        version = existing.version + 1 if existing else 0
        file = VirtualFile(
            path=path, content=content, declared_size=declared_size, version=version
        )
        self._files[path] = file
        self._fault_after("write", path, action)
        return file

    def read(self, path: str) -> VirtualFile:
        if path not in self._files:
            raise SyscallError(f"no such file: {path!r}")
        file = self._files[path]
        if self.faults is not None:
            corrupted = self.faults.on_read(path, file.content)
            if corrupted is not None:
                file.content = corrupted  # rot/truncation at rest persists
        return file

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise SyscallError(f"no such file: {path!r}")
        action = self._fault_mutation("delete", path, None)
        del self._files[path]
        self._fault_after("delete", path, action)

    def rename(self, src: str, dst: str) -> VirtualFile:
        """Atomically move ``src`` over ``dst`` (POSIX rename semantics:
        either the old ``dst`` or the complete new one is ever visible —
        a fault plan can crash before or after, never tear it)."""
        if src not in self._files:
            raise SyscallError(f"no such file: {src!r}")
        action = self._fault_mutation("rename", src, None)
        existing = self._files.get(dst)
        version = existing.version + 1 if existing else 0
        source = self._files.pop(src)
        file = VirtualFile(
            path=dst,
            content=source.content,
            declared_size=source.declared_size,
            version=version,
        )
        self._files[dst] = file
        self._fault_after("rename", src, action)
        return file

    def listdir(self, prefix: str = "") -> List[str]:
        return sorted(path for path in self._files if path.startswith(prefix))

    def __iter__(self) -> Iterator[VirtualFile]:
        return iter(self._files.values())

    def __len__(self) -> int:
        return len(self._files)

    # ------------------------------------------------------------------
    # Adversary interface (tests only): the OS is untrusted, so tampering
    # is modelled as direct mutation of the stored bytes.
    # ------------------------------------------------------------------

    def tamper(self, path: str, content: bytes) -> None:
        """Replace file content *without* bumping the version (a stealthy
        malicious-OS modification)."""
        file = self.read(path)
        file.content = content

    def rollback(self, path: str, old: VirtualFile) -> None:
        """Replace a file with an older captured copy (rollback attack)."""
        self._files[path] = old

    def capture_state(
        self, prefix: str = ""
    ) -> Dict[str, Tuple[bytes, Optional[int], int]]:
        """Snapshot every file under ``prefix`` (disk-image capture)."""
        return {
            path: (file.content, file.declared_size, file.version)
            for path, file in self._files.items()
            if path.startswith(prefix)
        }

    def restore_state(
        self,
        snapshot: Dict[str, Tuple[bytes, Optional[int], int]],
        prefix: str = "",
    ) -> None:
        """Restore a captured snapshot wholesale (disk-image rollback):
        files under ``prefix`` created since the capture disappear,
        mutated ones revert — versions included, exactly as a restored
        block device would look."""
        for path in [p for p in self._files if p.startswith(prefix)]:
            del self._files[path]
        for path, (content, declared_size, version) in snapshot.items():
            self._files[path] = VirtualFile(
                path=path,
                content=content,
                declared_size=declared_size,
                version=version,
            )
