"""An in-memory virtual file system (the untrusted OS's storage).

Files hold *real bytes* — what the file-system shield encrypts and
authenticates — plus an optional **declared size** used for cost
accounting, which lets a 163 MB model be represented by its real
(small) serialized weights while I/O and cryptography are charged for
the full simulated size.  This is the substitution DESIGN.md documents
for the paper's pretrained models.

The VFS is deliberately *untrusted*: tests mutate stored bytes directly
to emulate a malicious OS and assert that the shield detects it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import SyscallError


@dataclass
class VirtualFile:
    """One stored file: real content plus simulated (declared) size."""

    path: str
    content: bytes = b""
    declared_size: Optional[int] = None
    version: int = 0

    @property
    def size(self) -> int:
        """The simulated size used for cost accounting."""
        return self.declared_size if self.declared_size is not None else len(self.content)


class VirtualFileSystem:
    """Flat-namespace file store owned by a (simulated) node's OS."""

    def __init__(self) -> None:
        self._files: Dict[str, VirtualFile] = {}

    def exists(self, path: str) -> bool:
        return path in self._files

    def write(
        self, path: str, content: bytes, declared_size: Optional[int] = None
    ) -> VirtualFile:
        """Create or replace a file."""
        if declared_size is not None and declared_size < len(content):
            raise SyscallError(
                f"declared size {declared_size} smaller than real content "
                f"({len(content)} bytes) for {path!r}"
            )
        existing = self._files.get(path)
        version = existing.version + 1 if existing else 0
        file = VirtualFile(
            path=path, content=content, declared_size=declared_size, version=version
        )
        self._files[path] = file
        return file

    def read(self, path: str) -> VirtualFile:
        if path not in self._files:
            raise SyscallError(f"no such file: {path!r}")
        return self._files[path]

    def delete(self, path: str) -> None:
        if path not in self._files:
            raise SyscallError(f"no such file: {path!r}")
        del self._files[path]

    def listdir(self, prefix: str = "") -> List[str]:
        return sorted(path for path in self._files if path.startswith(prefix))

    def __iter__(self) -> Iterator[VirtualFile]:
        return iter(self._files.values())

    def __len__(self) -> int:
        return len(self._files)

    # ------------------------------------------------------------------
    # Adversary interface (tests only): the OS is untrusted, so tampering
    # is modelled as direct mutation of the stored bytes.
    # ------------------------------------------------------------------

    def tamper(self, path: str, content: bytes) -> None:
        """Replace file content *without* bumping the version (a stealthy
        malicious-OS modification)."""
        file = self.read(path)
        file.content = content

    def rollback(self, path: str, old: VirtualFile) -> None:
        """Replace a file with an older captured copy (rollback attack)."""
        self._files[path] = old
