"""The exit-less syscall plane: SCONE's submission/completion ring.

SCONE's core performance mechanism (§3.3.3, SCONE OSDI'16) is that an
enclave thread never exits for a system call: it writes a request
descriptor into a shared-memory *submission ring*, OS-side handler
threads service the requests, and completions come back through a
completion queue while the user-level scheduler runs another
application thread.  Earlier revisions of this reproduction modelled
the net effect with two analytic constants (a flat userspace-handled
fraction and a fixed kernel-overlap factor); this module replaces them
with the mechanism itself:

- a **bounded ring** of ``ring_depth`` slots — submissions stall
  (backpressure) when all slots hold in-flight requests;
- **N handler threads** outside the enclave, each a timeline of when it
  next becomes free; a request is served by the earliest-free handler,
  so kernel service time queues mechanistically under load;
- **sleep/wake**: a handler idle longer than ``handler_spin_time``
  parks on a futex, and the next submission pays a *real* enclave
  transition to wake it — the exit-less path only wins while traffic
  keeps handlers spinning;
- **batched submission** for fire-and-forget calls (writes, closes,
  unlinks, sends): requests buffer and flush together — on batch
  overflow, before any result-bearing call, and when the scheduler
  blocks;
- **synchronous fallback**: when every handler is busy far enough into
  the future that a classic synchronous transition would be faster
  (handler starvation), the call takes the old-fashioned exit instead;
- **occupancy-derived overlap**: the wait for a completion is handed to
  the :class:`~repro.runtime.threading_ul.UserLevelScheduler`, which
  hides the fraction of it that other *runnable* application threads
  can fill — the overlap now emerges from scheduler occupancy instead
  of a constant.

Userspace-served calls (futexes, clock reads, memory management) are
dispatched by a per-syscall-name table, as in the real runtime, and
never touch the ring.

All state is plain floats and lists mutated in program order — no RNG,
no wall clock — so two identical runs produce byte-identical
:class:`~repro.runtime.syscall.SyscallStats` (the chaos/crash replay
suites of PRs 2 and 3 depend on this).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro._sim import probe
from repro._sim.clock import SimClock
from repro.enclave.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.enclave.sgx import Enclave
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.syscall import SyscallStats
    from repro.runtime.threading_ul import UserLevelScheduler


#: Syscalls the SCONE runtime serves entirely inside the enclave,
#: mapped to their cost as a multiple of one user-level context switch.
#: (futexes between application threads, clock reads off the mapped
#: vDSO page, and heap management against the preallocated enclave
#: heap never need the kernel.)
USERSPACE_SYSCALLS: Dict[str, float] = {
    "futex": 1.0,
    "clock_gettime": 0.4,
    "gettimeofday": 0.4,
    "time": 0.3,
    "getpid": 0.3,
    "gettid": 0.3,
    "sched_yield": 1.0,
    "brk": 1.2,
    "mmap": 1.6,
    "munmap": 1.4,
    "madvise": 1.0,
    "nanosleep": 1.2,
    "sigprocmask": 0.5,
}


@dataclass(frozen=True)
class SyscallPlaneConfig:
    """Shape of one enclave's submission/completion ring."""

    #: Slots in the submission ring (in-flight request ceiling).
    ring_depth: int = 64
    #: OS-side syscall handler threads serving the ring.
    handler_threads: int = 2
    #: Fire-and-forget requests buffered before a forced flush.
    batch_max: int = 32

    def __post_init__(self) -> None:
        if self.ring_depth < 1:
            raise ConfigurationError(
                f"ring depth must be positive: {self.ring_depth}"
            )
        if self.handler_threads < 0:
            raise ConfigurationError(
                f"handler thread count cannot be negative: {self.handler_threads}"
            )
        if self.batch_max < 1:
            raise ConfigurationError(
                f"batch size must be positive: {self.batch_max}"
            )


class SyscallPlane:
    """Per-enclave submission/completion ring shared by every shield.

    The plane mutates the owning interface's
    :class:`~repro.runtime.syscall.SyscallStats` in place, so ring
    counters appear next to the per-call counters consumers already
    read.  ``enclave`` is optional: SIM mode runs the same runtime and
    the same ring outside SGX (no transition charges on wake-ups).
    """

    def __init__(
        self,
        cost_model: CostModel,
        clock: SimClock,
        stats: "SyscallStats",
        enclave: Optional[Enclave] = None,
        config: Optional[SyscallPlaneConfig] = None,
    ) -> None:
        self._model = cost_model
        self._clock = clock
        self.stats = stats
        self._enclave = enclave
        self.config = config or SyscallPlaneConfig()
        #: When each handler thread next becomes free (absolute time).
        self._handlers: List[float] = [0.0] * self.config.handler_threads
        #: Completion times of requests still occupying ring slots.
        self._inflight: List[float] = []
        #: Buffered fire-and-forget requests: (name, kernel_cost).
        self._pending: List[Tuple[str, float]] = []
        self._scheduler: Optional["UserLevelScheduler"] = None

    def attach_scheduler(self, scheduler: "UserLevelScheduler") -> None:
        """Wire the scheduler whose runnable-thread occupancy hides
        completion waits (and whose ``block()`` flushes the batch)."""
        self._scheduler = scheduler

    # ------------------------------------------------------------------
    # Ring mechanics
    # ------------------------------------------------------------------

    def occupancy(self) -> int:
        """Ring slots currently held by in-flight requests."""
        self._reap()
        return len(self._inflight)

    def _reap(self) -> None:
        now = self._clock.now
        while self._inflight and self._inflight[0] <= now:
            heapq.heappop(self._inflight)
            self.stats.ring_completions += 1

    def _acquire_slot(self) -> None:
        """Stall (full, unhidden) until the ring has a free slot."""
        self._reap()
        while len(self._inflight) >= self.config.ring_depth:
            target = self._inflight[0]
            stall = target - self._clock.now
            if stall > 0:
                self.stats.backpressure_stalls += 1
                self.stats.backpressure_time += stall
                self._clock.advance_to(target)
                if probe.ACTIVE is not None:
                    probe.ACTIVE.charge(self._clock, "backpressure", stall)
            self._reap()

    def _sync_exit_cost(self) -> float:
        """What a classic synchronous call costs instead of the ring."""
        if self._enclave is not None:
            return self._model.sync_transition_cost
        return self._model.syscall_trap_cost

    def _charge_sync_exit(self, kernel_cost: float) -> None:
        self.stats.sync_fallbacks += 1
        before = self._clock.now
        if self._enclave is not None:
            self.stats.transitions += 1
            self._enclave.cpu.transition(asynchronous=False)
        else:
            self._clock.advance(self._model.syscall_trap_cost)
        self._clock.advance(kernel_cost)
        if probe.ACTIVE is not None:
            probe.ACTIVE.charge(self._clock, "syscall_ring", self._clock.now - before)

    def _starved(self) -> bool:
        """True when the ring cannot win: every handler is busy further
        into the future than a synchronous exit costs (the kernel service
        time is paid on both paths)."""
        if not self._handlers:
            return True
        earliest = min(self._handlers)
        return earliest - self._clock.now > self._sync_exit_cost()

    def _submit_one(self, name: str, kernel_cost: float) -> float:
        """Write one request into the ring; returns its completion time."""
        self._acquire_slot()
        before = self._clock.now  # after the slot wait: stalls are backpressure
        if self._enclave is not None:
            self._enclave.cpu.ring_submit(1)
        else:
            self._clock.advance(self._model.ring_slot_cost)
        self.stats.ring_submissions += 1

        now = self._clock.now
        index = min(range(len(self._handlers)), key=self._handlers.__getitem__)
        free_at = self._handlers[index]
        if now - free_at > self._model.handler_spin_time:
            # The handler spun down and parked on a futex; waking it is a
            # real kernel visit — an enclave exit in HW mode.
            self.stats.handler_wakeups += 1
            if self._enclave is not None:
                self.stats.transitions += 1
                self._enclave.cpu.transition(asynchronous=False)
            else:
                self._clock.advance(
                    self._model.syscall_trap_cost + self._model.syscall_kernel_cost
                )
            now = self._clock.now
        if probe.ACTIVE is not None and now > before:
            probe.ACTIVE.charge(self._clock, "syscall_ring", now - before)
        completion = max(now, free_at) + kernel_cost
        self._handlers[index] = completion
        heapq.heappush(self._inflight, completion)
        if len(self._inflight) > self.stats.ring_occupancy_peak:
            self.stats.ring_occupancy_peak = len(self._inflight)
        return completion

    def _wait_for(self, completion: float) -> None:
        """Wait for a completion, hiding what runnable threads cover."""
        wait = completion - self._clock.now
        if wait > 0:
            before = self._clock.now
            if self._scheduler is not None:
                exposed, hidden = self._scheduler.hide_wait(wait)
            else:
                self._clock.advance(wait)
                exposed, hidden = wait, 0.0
            self.stats.overlap_exposed_time += exposed
            self.stats.overlap_hidden_time += hidden
            if probe.ACTIVE is not None and self._clock.now > before:
                # Only the exposed share advanced the clock; hidden time
                # ran other application threads and stays compute.
                probe.ACTIVE.charge(
                    self._clock, "syscall_ring", self._clock.now - before
                )
        self._reap()

    # ------------------------------------------------------------------
    # The three entry points the syscall interface uses
    # ------------------------------------------------------------------

    def _userspace(self, name: str) -> bool:
        factor = USERSPACE_SYSCALLS.get(name)
        if factor is None:
            return False
        self.stats.userspace_handled += 1
        duration = self._model.userlevel_switch_cost * factor
        self._clock.advance(duration)
        if probe.ACTIVE is not None:
            probe.ACTIVE.charge(self._clock, "syscall_ring", duration)
        return True

    def call(self, name: str, kernel_cost: Optional[float] = None) -> None:
        """One result-bearing syscall: submit, then wait for completion."""
        if self._userspace(name):
            return
        cost = kernel_cost if kernel_cost is not None else self._model.syscall_kernel_cost
        self.flush()
        if self._starved():
            self._charge_sync_exit(cost)
            return
        self._wait_for(self._submit_one(name, cost))

    def call_batch(
        self, name: str, count: int, kernel_cost: Optional[float] = None
    ) -> None:
        """``count`` parallel result-bearing requests (multi-chunk reads):
        all submitted before waiting, serviced across all handlers, the
        caller blocks only on the last completion."""
        if count <= 0:
            return
        cost = kernel_cost if kernel_cost is not None else self._model.syscall_kernel_cost
        self.flush()
        self.stats.batches += 1
        if count > self.stats.max_batch:
            self.stats.max_batch = count
        last = 0.0
        for _ in range(count):
            if self._starved():
                self._charge_sync_exit(cost)
                continue
            last = max(last, self._submit_one(name, cost))
        if last > 0.0:
            self._wait_for(last)

    def post(self, name: str, kernel_cost: Optional[float] = None) -> None:
        """One fire-and-forget syscall: buffered, submitted at the next
        flush, never waited on (its kernel time runs entirely on a
        handler thread)."""
        if self._userspace(name):
            return
        cost = kernel_cost if kernel_cost is not None else self._model.syscall_kernel_cost
        if not self._handlers:
            # Nobody will ever serve the ring: take the classic exit now.
            self._charge_sync_exit(cost)
            return
        self._pending.append((name, cost))
        if len(self._pending) >= self.config.batch_max:
            self.flush()

    def flush(self, on_block: bool = False) -> None:
        """Submit every buffered fire-and-forget request."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        self.stats.batches += 1
        if len(pending) > self.stats.max_batch:
            self.stats.max_batch = len(pending)
        if on_block:
            self.stats.flushes_on_block += 1
        for name, cost in pending:
            self._submit_one(name, cost)


# ----------------------------------------------------------------------
# Measured equivalents of the retired analytic constants
# ----------------------------------------------------------------------

#: A representative syscall mix for TensorFlow under SCONE (rough shape
#: of an strace of a training step: thread synchronization and clock
#: reads dominate the userspace-served share; reads/writes dominate the
#: kernel-bound share).
_REFERENCE_MIX: Tuple[Tuple[str, bool], ...] = tuple(
    [("futex", False)] * 14
    + [("clock_gettime", False)] * 9
    + [("mmap", False)] * 3
    + [("munmap", False)] * 2
    + [("brk", False)] * 2
    + [("sched_yield", False)] * 3
    + [("getpid", False)] * 1
    + [("sigprocmask", False)] * 1
    + [("read", False)] * 20
    + [("write", True)] * 18
    + [("open", False)] * 5
    + [("close", True)] * 6
    + [("stat", False)] * 4
    + [("sendmsg", True)] * 6
    + [("recvmsg", False)] * 6
)

_MEASURED_CACHE: Optional[Dict[str, float]] = None


def measured_plane_fractions() -> Dict[str, float]:
    """Run the reference mix through a default ring and report what the
    two retired constants *measure as* under the mechanistic model:

    - ``userspace_handled_fraction``: share of calls the per-name table
      served without touching the ring;
    - ``kernel_overlap``: share of completion-wait time the scheduler
      hid behind other runnable application threads (at the default
      occupancy of 4 runnable threads).

    Deterministic and cached — callers of the deprecated module
    constants get these numbers.
    """
    global _MEASURED_CACHE
    if _MEASURED_CACHE is not None:
        return _MEASURED_CACHE

    from repro.runtime.syscall import SyscallStats
    from repro.runtime.threading_ul import UserLevelScheduler

    clock = SimClock()
    stats = SyscallStats()
    plane = SyscallPlane(DEFAULT_COST_MODEL, clock, stats)
    scheduler = UserLevelScheduler(DEFAULT_COST_MODEL, clock)
    scheduler.set_runnable(4)
    plane.attach_scheduler(scheduler)
    calls = 0
    for name, posted in _REFERENCE_MIX * 4:
        calls += 1
        if posted:
            plane.post(name)
        else:
            plane.call(name)
    plane.flush()

    waited = stats.overlap_hidden_time + stats.overlap_exposed_time
    _MEASURED_CACHE = {
        "userspace_handled_fraction": stats.userspace_handled / calls,
        "kernel_overlap": (stats.overlap_hidden_time / waited) if waited else 0.0,
    }
    return _MEASURED_CACHE
