"""Synthetic MNIST: 28×28 grayscale digits with learnable structure.

Each class is a deterministic prototype (a smooth random field plus a
class-specific stroke pattern); examples are prototypes with additive
noise, small shifts, and amplitude jitter.  A linear model reaches
~90 %+ and a small CNN >95 %, mirroring real-MNIST difficulty ordering.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.loaders import Dataset

IMAGE_SIZE = 28
NUM_CLASSES = 10


def _prototypes(rng: np.random.Generator) -> np.ndarray:
    """One smooth 28×28 prototype per class."""
    protos = np.zeros((NUM_CLASSES, IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32)
    yy, xx = np.mgrid[0:IMAGE_SIZE, 0:IMAGE_SIZE].astype(np.float32) / IMAGE_SIZE
    for cls in range(NUM_CLASSES):
        field = np.zeros((IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32)
        for _ in range(4):
            fx, fy = rng.uniform(1.0, 4.0, size=2)
            phase_x, phase_y = rng.uniform(0, 2 * np.pi, size=2)
            field += np.sin(2 * np.pi * fx * xx + phase_x) * np.cos(
                2 * np.pi * fy * yy + phase_y
            )
        # A class-distinct "stroke": a bright band whose angle encodes the class.
        angle = np.pi * cls / NUM_CLASSES
        band = np.abs(
            (xx - 0.5) * np.cos(angle) + (yy - 0.5) * np.sin(angle)
        )
        field += 3.0 * np.exp(-((band / 0.12) ** 2))
        field -= field.min()
        field /= field.max()
        protos[cls] = field
    return protos


def synthetic_mnist(
    n_train: int = 60_000, n_test: int = 10_000, seed: int = 0
) -> Tuple[Dataset, Dataset]:
    """Deterministic (train, test) split shaped like MNIST."""
    rng = np.random.default_rng(seed)
    protos = _prototypes(rng)

    def make(n: int, split_rng: np.random.Generator) -> Dataset:
        labels = split_rng.integers(0, NUM_CLASSES, size=n)
        images = protos[labels].copy()
        shifts = split_rng.integers(-2, 3, size=(n, 2))
        for i, (dy, dx) in enumerate(shifts):
            images[i] = np.roll(np.roll(images[i], dy, axis=0), dx, axis=1)
        amplitude = split_rng.uniform(0.8, 1.2, size=(n, 1, 1)).astype(np.float32)
        noise = split_rng.normal(0, 0.15, size=images.shape).astype(np.float32)
        images = np.clip(images * amplitude + noise, 0.0, 1.0)
        return Dataset(
            images.reshape(n, IMAGE_SIZE, IMAGE_SIZE, 1).astype(np.float32),
            labels.astype(np.int64),
            NUM_CLASSES,
            name="synthetic-mnist",
        )

    return make(n_train, np.random.default_rng(seed + 1)), make(
        n_test, np.random.default_rng(seed + 2)
    )
