"""Synthetic datasets standing in for CIFAR-10 and MNIST.

The paper evaluates on CIFAR-10 (32×32×3, 10 classes, 60k images) and
MNIST (28×28, 10 classes, 60k train / 10k test) — §5.1.  Offline, we
substitute deterministic generators with class-dependent structure
(class prototypes + noise) so models genuinely *learn* and accuracy
comparisons between modes are meaningful, while shapes, value ranges,
and sizes match the originals.  See DESIGN.md's substitution table.
"""

from repro.data.loaders import Dataset, one_hot
from repro.data.mnist import synthetic_mnist
from repro.data.cifar10 import synthetic_cifar10, CIFAR10_CLASSES

__all__ = [
    "Dataset",
    "one_hot",
    "synthetic_mnist",
    "synthetic_cifar10",
    "CIFAR10_CLASSES",
]
