"""Dataset container and batching pipeline."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels -> one-hot float32 matrix."""
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ConfigurationError(f"labels must be rank-1, got shape {labels.shape}")
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ConfigurationError(
            f"labels out of range [0, {num_classes}): "
            f"[{labels.min()}, {labels.max()}]"
        )
    return np.eye(num_classes, dtype=np.float32)[labels]


@dataclass
class Dataset:
    """Images + integer labels, with batching helpers."""

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        if len(self.images) != len(self.labels):
            raise ConfigurationError(
                f"{len(self.images)} images vs {len(self.labels)} labels"
            )

    def __len__(self) -> int:
        return len(self.images)

    @property
    def one_hot_labels(self) -> np.ndarray:
        return one_hot(self.labels, self.num_classes)

    def batches(
        self, batch_size: int, shuffle_seed: Optional[int] = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(images, one_hot_labels)`` batches (last may be short)."""
        if batch_size <= 0:
            raise ConfigurationError(f"batch size must be positive: {batch_size}")
        indices = np.arange(len(self))
        if shuffle_seed is not None:
            np.random.default_rng(shuffle_seed).shuffle(indices)
        onehot = self.one_hot_labels
        for start in range(0, len(self), batch_size):
            batch = indices[start: start + batch_size]
            yield self.images[batch], onehot[batch]

    def take(self, n: int) -> "Dataset":
        """The first ``n`` examples as a new dataset."""
        return Dataset(
            self.images[:n], self.labels[:n], self.num_classes, name=self.name
        )

    def example_bytes(self, index: int) -> bytes:
        """One image serialized as raw float32 bytes (for the fs shield)."""
        return np.ascontiguousarray(self.images[index]).tobytes()
