"""Synthetic CIFAR-10: 32×32×3 colour images with learnable structure.

Same prototype-plus-noise construction as the MNIST stand-in, with
colour channels correlated per class (each class has a characteristic
hue and texture frequency), at CIFAR's exact shape and class count.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.loaders import Dataset

IMAGE_SIZE = 32
NUM_CLASSES = 10

CIFAR10_CLASSES = (
    "airplane", "automobile", "bird", "cat", "deer",
    "dog", "frog", "horse", "ship", "truck",
)


def _prototypes(rng: np.random.Generator) -> np.ndarray:
    protos = np.zeros(
        (NUM_CLASSES, IMAGE_SIZE, IMAGE_SIZE, 3), dtype=np.float32
    )
    yy, xx = np.mgrid[0:IMAGE_SIZE, 0:IMAGE_SIZE].astype(np.float32) / IMAGE_SIZE
    for cls in range(NUM_CLASSES):
        hue = rng.uniform(0, 1, size=3)
        hue /= hue.sum()
        texture = np.zeros((IMAGE_SIZE, IMAGE_SIZE), dtype=np.float32)
        base_freq = 1.5 + 0.6 * cls  # class-distinct texture frequency
        for _ in range(3):
            phase_x, phase_y = rng.uniform(0, 2 * np.pi, size=2)
            texture += np.sin(2 * np.pi * base_freq * xx + phase_x) * np.cos(
                2 * np.pi * base_freq * yy + phase_y
            )
        texture -= texture.min()
        texture /= texture.max()
        for channel in range(3):
            protos[cls, :, :, channel] = texture * (0.4 + 0.6 * hue[channel])
    return protos


def synthetic_cifar10(
    n_train: int = 50_000, n_test: int = 10_000, seed: int = 0
) -> Tuple[Dataset, Dataset]:
    """Deterministic (train, test) split shaped like CIFAR-10."""
    rng = np.random.default_rng(seed ^ 0xC1FA)
    protos = _prototypes(rng)

    def make(n: int, split_rng: np.random.Generator) -> Dataset:
        labels = split_rng.integers(0, NUM_CLASSES, size=n)
        images = protos[labels].copy()
        shifts = split_rng.integers(-3, 4, size=(n, 2))
        for i, (dy, dx) in enumerate(shifts):
            images[i] = np.roll(np.roll(images[i], dy, axis=0), dx, axis=1)
        amplitude = split_rng.uniform(0.75, 1.25, size=(n, 1, 1, 1)).astype(np.float32)
        noise = split_rng.normal(0, 0.12, size=images.shape).astype(np.float32)
        images = np.clip(images * amplitude + noise, 0.0, 1.0)
        return Dataset(
            images.astype(np.float32),
            labels.astype(np.int64),
            NUM_CLASSES,
            name="synthetic-cifar10",
        )

    return make(n_train, np.random.default_rng(seed + 11)), make(
        n_test, np.random.default_rng(seed + 12)
    )
