"""Input preprocessing: normalization for enclave-friendly training (§7.1).

The paper's first proposed mitigation for EPC-bound training is *data
normalization* — e.g. resizing all inputs of an image-recognition
service to 32×32 — shrinking the per-batch working set.  These are the
corresponding utilities: average-pool downscaling and per-dataset
standardization, both pure numpy and deterministic.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.data.loaders import Dataset
from repro.errors import ConfigurationError


def downscale_images(images: np.ndarray, target: int) -> np.ndarray:
    """Downscale NHWC images to ``target``×``target`` by average pooling.

    Requires the source size to be a multiple of the target (the paper's
    use case normalizes to a fixed small size like 32×32).
    """
    if images.ndim != 4:
        raise ConfigurationError(f"expected NHWC images, got shape {images.shape}")
    n, h, w, c = images.shape
    if h % target or w % target:
        raise ConfigurationError(
            f"source size {h}x{w} is not a multiple of target {target}"
        )
    fh, fw = h // target, w // target
    view = images.reshape(n, target, fh, target, fw, c)
    return view.mean(axis=(2, 4)).astype(images.dtype)


def standardize(
    images: np.ndarray, stats: Optional[Tuple[float, float]] = None
) -> Tuple[np.ndarray, Tuple[float, float]]:
    """Zero-mean/unit-variance normalization; returns (images, stats).

    Pass the training set's ``stats`` when normalizing the test set so
    no test-set information leaks into preprocessing.
    """
    if stats is None:
        stats = (float(images.mean()), float(images.std() + 1e-8))
    mean, std = stats
    return ((images - mean) / std).astype(np.float32), stats


def normalize_dataset(dataset: Dataset, target: int) -> Dataset:
    """§7.1's mitigation applied to a whole dataset."""
    return Dataset(
        downscale_images(dataset.images, target),
        dataset.labels,
        dataset.num_classes,
        name=f"{dataset.name}-{target}px",
    )
