"""Continuous SLO monitoring with multi-window burn-rate alerting.

The PR 5 telemetry plane *records*; this module *watches*.  A
:class:`SloMonitor` is a recurring event-heap activity that evaluates
declarative :class:`SloSpec` objects — serving p99 latency, shed rate,
training steps/s, CAS failovers, breaker-open fraction — over sliding
windows of its own samples, and drives a deterministic alert state
machine (``ok → pending → firing → resolved → ok``).

Alerting is **multi-window burn-rate**, the SRE-workbook shape: every
evaluation classifies the current sample as in- or out-of-objective,
and an alert becomes *eligible* only when the violation fraction burns
the error budget faster than ``burn_threshold`` over **both** a short
window (are we failing *right now*?) and a long window (have we been
failing long enough to matter?).  The two windows together reject
one-sample blips without missing slow sustained burns.

Determinism contract: evaluation is read-only — probes may only *read*
platform state; the monitor never advances a clock, so enabling it does
not perturb simulated results, and two seeded runs produce identical
alert transition logs.  All counters flow through
:mod:`repro.runtime.stats_registry` into
:func:`repro.core.monitoring.collect_metrics` / ``format()``.

:class:`MonitoringSession` bundles the full subsystem — flight
recorder (:mod:`.flight`), incident pipeline (:mod:`.incident`), SLO
monitor — installs the probe slots, and restores them on ``close()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro._sim import probe
from repro._sim.clock import SimClock
from repro._sim.scheduler import Scheduler
from repro.observability.flight import FlightRecorder
from repro.observability.incident import IncidentBundle, IncidentPipeline
from repro.runtime import stats_registry

#: Alert states (the machine is ok -> pending -> firing -> ok; the
#: firing -> ok edge records a "resolved" transition).
STATE_OK = "ok"
STATE_PENDING = "pending"
STATE_FIRING = "firing"


@dataclass
class MonitoringStats:
    """Monitoring-plane counters (surfaced through ``collect_metrics``).

    Field names match :class:`repro.core.monitoring.MonitoringMetrics`
    so the generic ``aggregate_into`` folds them without a prefix map.
    """

    slo_evaluations: int = 0
    alerts_pending: int = 0
    alerts_fired: int = 0
    alerts_resolved: int = 0
    flight_events: int = 0
    incidents_triggered: int = 0
    incidents_suppressed: int = 0
    bundles_emitted: int = 0


@dataclass(frozen=True)
class SloSpec:
    """One declarative service-level objective.

    ``value_probe`` reads the *current* value of the signal (it must be
    a deterministic, read-only function of platform state); the sample
    violates the objective when it falls on the wrong side of
    ``objective`` per ``comparison`` (``"<="``: values above the
    objective are violations; ``">="``: values below are).  A probe may
    return None to mean "no signal yet" — those evaluations are skipped
    entirely (they neither burn nor refill the budget).
    """

    name: str
    value_probe: Callable[[], Optional[float]]
    objective: float
    comparison: str = "<="
    #: Error budget: the violation fraction the SLO tolerates (e.g.
    #: 0.01 = 1% of evaluation windows may violate).
    budget: float = 0.01
    #: Sliding windows, in simulated seconds of monitor samples.
    short_window: float = 2.0
    long_window: float = 10.0
    #: Fire only when the budget burns at >= this multiple of its
    #: sustainable rate over *both* windows.
    burn_threshold: float = 2.0
    #: Consecutive eligible evaluations before pending -> firing.
    for_intervals: int = 2
    #: Consecutive calm evaluations before firing -> resolved.
    clear_intervals: int = 2
    description: str = ""

    def violated(self, value: float) -> bool:
        if self.comparison == "<=":
            return value > self.objective
        if self.comparison == ">=":
            return value < self.objective
        raise ValueError(f"unknown comparison {self.comparison!r}")


@dataclass
class Alert:
    """One SLO's alert state, with its full transition history."""

    spec_name: str
    state: str = STATE_OK
    #: (simulated time, new state) — "resolved" appears as a transition
    #: even though the machine lands back in "ok".
    transitions: List[Tuple[float, str]] = field(default_factory=list)
    fired_count: int = 0
    resolved_count: int = 0
    last_value: Optional[float] = None
    burn_short: float = 0.0
    burn_long: float = 0.0

    def transition_lines(self) -> List[str]:
        return [f"{t:.6f} {self.spec_name} {state}" for t, state in self.transitions]


class _SloState:
    """Per-spec evaluation state: sample window + state machine."""

    __slots__ = ("spec", "alert", "samples", "eligible_streak", "calm_streak")

    def __init__(self, spec: SloSpec) -> None:
        self.spec = spec
        self.alert = Alert(spec_name=spec.name)
        #: (time, violated) samples; trimmed to the long window.
        self.samples: List[Tuple[float, bool]] = []
        self.eligible_streak = 0
        self.calm_streak = 0

    def _burn(self, now: float, window: float) -> float:
        cutoff = now - window
        total = 0
        bad = 0
        for t, violated in self.samples:
            if t >= cutoff:
                total += 1
                if violated:
                    bad += 1
        if total == 0:
            return 0.0
        fraction = bad / total
        return fraction / self.spec.budget if self.spec.budget > 0 else (
            float("inf") if bad else 0.0
        )

    def observe(self, now: float, value: Optional[float]) -> None:
        spec = self.spec
        alert = self.alert
        if value is None:
            return
        alert.last_value = value
        self.samples.append((now, spec.violated(value)))
        cutoff = now - spec.long_window
        while self.samples and self.samples[0][0] < cutoff:
            self.samples.pop(0)
        alert.burn_short = self._burn(now, spec.short_window)
        alert.burn_long = self._burn(now, spec.long_window)
        eligible = (
            alert.burn_short >= spec.burn_threshold
            and alert.burn_long >= spec.burn_threshold
        )
        if eligible:
            self.eligible_streak += 1
            self.calm_streak = 0
        else:
            self.eligible_streak = 0
            self.calm_streak += 1


class SloMonitor:
    """Evaluates SloSpecs on a recurring event-heap schedule.

    Like the orchestrator's :class:`~repro.cluster.orchestrator
    .Watchdog`, the monitor reschedules itself every ``interval``
    simulated seconds; unlike the watchdog it never advances its clock —
    evaluation happens *at* the event's due time but is purely
    observational, so the simulated run is unchanged by monitoring.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        clock: SimClock,
        specs: Sequence[SloSpec],
        interval: float = 0.25,
        stats: Optional[MonitoringStats] = None,
        on_fire: Optional[Callable[[Alert, float], None]] = None,
        on_resolve: Optional[Callable[[Alert, float], None]] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"evaluation interval must be positive: {interval}")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate SLO names: {names}")
        self._scheduler = scheduler
        self._clock = clock
        self.interval = interval
        self.stats = stats if stats is not None else MonitoringStats()
        self._on_fire = on_fire
        self._on_resolve = on_resolve
        self._states: List[_SloState] = [_SloState(spec) for spec in specs]
        self._stopped = True
        self.evaluations = 0

    @property
    def clock(self) -> SimClock:
        return self._clock

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self._stopped = False
        self._schedule_next(self._clock.now + self.interval)

    def stop(self) -> None:
        """No further evaluations (the pending event fires as a no-op)."""
        self._stopped = True

    def _schedule_next(self, due: float) -> None:
        self._scheduler.schedule(
            due, lambda: self._tick(due), label="slo:evaluate"
        )

    def _tick(self, due: float) -> None:
        if self._stopped:
            return
        self.evaluate(due)
        self._schedule_next(due + self.interval)

    # -- evaluation ------------------------------------------------------

    def evaluate(self, now: Optional[float] = None) -> None:
        """One evaluation pass (read-only; callable directly in tests)."""
        if now is None:
            now = self._clock.now
        self.evaluations += 1
        self.stats.slo_evaluations += 1
        for state in self._states:
            spec = state.spec
            alert = state.alert
            state.observe(now, spec.value_probe())
            if alert.state == STATE_OK:
                if state.eligible_streak >= 1:
                    alert.state = STATE_PENDING
                    alert.transitions.append((now, STATE_PENDING))
                    self.stats.alerts_pending += 1
            elif alert.state == STATE_PENDING:
                if state.eligible_streak == 0:
                    alert.state = STATE_OK
                    alert.transitions.append((now, STATE_OK))
                elif state.eligible_streak >= spec.for_intervals:
                    alert.state = STATE_FIRING
                    alert.transitions.append((now, STATE_FIRING))
                    alert.fired_count += 1
                    self.stats.alerts_fired += 1
                    if self._on_fire is not None:
                        self._on_fire(alert, now)
            elif alert.state == STATE_FIRING:
                if state.calm_streak >= spec.clear_intervals:
                    alert.state = STATE_OK
                    alert.transitions.append((now, "resolved"))
                    alert.resolved_count += 1
                    self.stats.alerts_resolved += 1
                    if self._on_resolve is not None:
                        self._on_resolve(alert, now)

    # -- introspection ---------------------------------------------------

    def alerts(self) -> List[Alert]:
        return [state.alert for state in self._states]

    def alert(self, name: str) -> Alert:
        for state in self._states:
            if state.spec.name == name:
                return state.alert
        raise KeyError(f"no SLO named {name!r}")

    def firing(self) -> List[Alert]:
        return [a for a in self.alerts() if a.state == STATE_FIRING]

    def transition_log(self) -> str:
        """Canonical transition log, merged across alerts in time order
        (ties break by spec order) — the byte-identity surface."""
        lines: List[Tuple[float, int, str]] = []
        for index, state in enumerate(self._states):
            for t, new_state in state.alert.transitions:
                lines.append((t, index, f"{t:.6f} {state.spec.name} {new_state}"))
        return "\n".join(line for _, _, line in sorted(lines, key=lambda x: (x[0], x[1])))


# -- probe helpers -------------------------------------------------------


def rate_probe(
    counter_fn: Callable[[], float], interval: float
) -> Callable[[], Optional[float]]:
    """A probe turning a cumulative counter into a per-second rate.

    Keeps the previous reading in a closure; the first evaluation
    returns None (no baseline yet).  Deterministic because the monitor
    calls probes exactly once per evaluation, on a fixed schedule.
    """
    last: List[Optional[float]] = [None]

    def probe_fn() -> Optional[float]:
        current = float(counter_fn())
        previous, last[0] = last[0], current
        if previous is None:
            return None
        return (current - previous) / interval

    return probe_fn


def fraction_probe(
    numerator_fn: Callable[[], float], denominator_fn: Callable[[], float]
) -> Callable[[], Optional[float]]:
    """A probe for interval fractions of two cumulative counters
    (e.g. sheds / offered requests per evaluation interval)."""
    last: List[Tuple[float, float]] = [(0.0, 0.0)]

    def probe_fn() -> Optional[float]:
        num, den = float(numerator_fn()), float(denominator_fn())
        (p_num, p_den), last[0] = last[0], (num, den)
        d_den = den - p_den
        if d_den <= 0:
            return None
        return (num - p_num) / d_den

    return probe_fn


def serving_slos(
    router,
    p99_objective: float = 0.5,
    shed_objective: float = 0.05,
    breaker_objective: float = 0.5,
    interval: float = 0.25,
) -> List[SloSpec]:
    """The serving plane's standard SLO set over a FrontEndRouter."""
    admission = router.admission.stats

    def breaker_open_fraction() -> Optional[float]:
        breakers = list(router.breakers._breakers.values())
        if not breakers:
            return None
        open_count = sum(1 for b in breakers if b.state == "open")
        return open_count / len(breakers)

    return [
        SloSpec(
            name="serving.p99_latency",
            value_probe=lambda: (
                router.latency.percentile(99) if len(router.latency) else None
            ),
            objective=p99_objective,
            description="windowed p99 of admitted-request latency",
        ),
        SloSpec(
            name="serving.shed_rate",
            value_probe=fraction_probe(
                lambda: admission.shed_rate
                + admission.shed_capacity
                + admission.shed_expired,
                lambda: admission.arrivals,
            ),
            objective=shed_objective,
            description="sheds / offered requests per interval",
        ),
        SloSpec(
            name="serving.breaker_open_fraction",
            value_probe=breaker_open_fraction,
            objective=breaker_objective,
            description="fraction of per-replica breakers currently open",
        ),
    ]


def training_slos(
    steps_fn: Callable[[], float],
    steps_per_s_objective: float,
    interval: float = 0.25,
) -> List[SloSpec]:
    """Training-plane SLO: sustained steps/s above an objective floor."""
    return [
        SloSpec(
            name="training.steps_per_s",
            value_probe=rate_probe(steps_fn, interval),
            objective=steps_per_s_objective,
            comparison=">=",
            description="training steps per simulated second",
        )
    ]


def cas_slos(platform, failover_objective: float = 0.0) -> List[SloSpec]:
    """CAS availability SLO: failovers per interval stays at zero."""
    pair = platform.cas_pair

    def failovers() -> Optional[float]:
        return float(pair.stats.failovers) if pair is not None else None

    last: List[Optional[float]] = [None]

    def failover_delta() -> Optional[float]:
        current = failovers()
        if current is None:
            return None
        previous, last[0] = last[0], current
        if previous is None:
            return None
        return current - previous

    return [
        SloSpec(
            name="cas.failovers",
            value_probe=failover_delta,
            objective=failover_objective,
            budget=0.001,
            description="CAS primary failovers per evaluation interval",
        )
    ]


# -- the assembled subsystem ---------------------------------------------


class MonitoringSession:
    """SLO monitor + flight recorder + incident pipeline, one handle.

    Installs the recorder and pipeline into :mod:`repro._sim.probe`'s
    ``FLIGHT``/``INCIDENTS`` slots (returned to their previous holders
    on :meth:`close`, so sessions nest like telemetry planes), registers
    one shared :class:`MonitoringStats` under ``clock`` in the stats
    registry, and wires alert firings into incident bundles.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        clock: SimClock,
        specs: Sequence[SloSpec] = (),
        interval: float = 0.25,
        ring_capacity: int = 256,
        incident_window: float = 5.0,
        node_clocks: Sequence[Tuple[SimClock, str]] = (),
        metrics_probe: Optional[Callable[[], Dict[str, object]]] = None,
        max_bundles: int = 64,
    ) -> None:
        self._clock = clock
        self.stats = MonitoringStats()
        stats_registry.register_monitoring_stats(self.stats, clock)
        self.recorder = FlightRecorder(capacity=ring_capacity, stats=self.stats)
        for node_clock, label in node_clocks:
            self.recorder.register_clock(node_clock, label)
        self.recorder.register_clock(clock, self.recorder.label_of(clock))
        self._previous_flight = probe.set_flight(self.recorder)
        tracer = probe.ACTIVE
        self.pipeline = IncidentPipeline(
            self.recorder,
            tracer=tracer,
            metrics_probe=metrics_probe,
            window=incident_window,
            stats=self.stats,
            max_bundles=max_bundles,
        )
        self._previous_incidents = probe.set_incidents(self.pipeline)
        self.monitor = SloMonitor(
            scheduler,
            clock,
            specs,
            interval=interval,
            stats=self.stats,
            on_fire=self._on_alert_fire,
        )
        if specs:
            self.monitor.start()
        self._closed = False

    def _on_alert_fire(self, alert: Alert, now: float) -> None:
        self.pipeline.trigger(
            "alert",
            alert.spec_name,
            clock=self._clock,
            detail=(
                f"burn_short={alert.burn_short:.2f} "
                f"burn_long={alert.burn_long:.2f} value={alert.last_value}"
            ),
        )

    @property
    def bundles(self) -> List[IncidentBundle]:
        return self.pipeline.bundles

    def close(self) -> None:
        """Stop evaluating and restore the probe slots."""
        if self._closed:
            return
        self._closed = True
        self.monitor.stop()
        if probe.FLIGHT is self.recorder:
            probe.set_flight(self._previous_flight)
        if probe.INCIDENTS is self.pipeline:
            probe.set_incidents(self._previous_incidents)

    def __enter__(self) -> "MonitoringSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


__all__ = [
    "Alert",
    "MonitoringSession",
    "MonitoringStats",
    "STATE_FIRING",
    "STATE_OK",
    "STATE_PENDING",
    "SloMonitor",
    "SloSpec",
    "cas_slos",
    "fraction_probe",
    "rate_probe",
    "serving_slos",
    "training_slos",
]
