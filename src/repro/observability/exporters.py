"""Telemetry exporters: Chrome trace_event JSON, Prometheus text, JSON.

Three standard wire formats so the simulated telemetry plugs into real
tooling:

- :func:`to_chrome_trace` emits the `trace_event` format (complete "X"
  events in microseconds, one pid per node) that chrome://tracing and
  Perfetto load directly;
- :func:`to_prometheus` renders a counter snapshot (and histogram
  summaries) in the text exposition format TEEMon's Prometheus stack
  scrapes;
- :func:`to_json` bundles spans + profile + histograms as plain JSON
  for ad-hoc analysis.

:func:`validate_chrome_trace` is the schema check the tier-2 perf smoke
asserts against: required keys, types, and parent/trace referential
integrity.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional

from repro.observability.metrics import Histogram, flatten_metrics
from repro.observability.profiler import profile
from repro.observability.tracer import Tracer

_US = 1e6  # trace_event timestamps are microseconds


def to_chrome_trace(tracer: Tracer, spans=None) -> Dict[str, object]:
    """The run's spans as a Chrome `trace_event` JSON object.

    ``spans`` restricts the export to a subset (the incident pipeline's
    last-N-seconds window); parent links pointing outside the subset are
    dropped so the windowed document stays referentially closed.
    """
    if spans is None:
        spans = tracer.spans
    exported_ids = {span.span_id for span in spans}
    pids: Dict[object, int] = {}
    events: List[Dict[str, object]] = []
    for index, clock in enumerate(tracer.clocks()):
        pids[clock] = index + 1
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": index + 1,
                "tid": 0,
                "args": {"name": tracer.label_of(clock)},
            }
        )
    for span in spans:
        pid = pids.get(span.clock)
        if pid is None:
            pid = len(pids) + 1
            pids[span.clock] = pid
        end = span.end if span.end is not None else span.clock.now
        args: Dict[str, object] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
        }
        if span.parent_id is not None and span.parent_id in exported_ids:
            args["parent_id"] = span.parent_id
        for key, value in span.attrs.items():
            args[str(key)] = value if isinstance(value, (int, float, bool)) else str(value)
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": span.start * _US,
                "dur": (end - span.start) * _US,
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.observability", "clock": "simulated"},
    }


def validate_chrome_trace(doc: Dict[str, object]) -> int:
    """Validate ``doc`` against the trace_event schema; returns the
    number of duration events.  Raises :class:`ValueError` on the first
    violation."""
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("chrome trace must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    span_ids = set()
    duration_events = 0
    for event in events:
        if not isinstance(event, dict):
            raise ValueError(f"event is not an object: {event!r}")
        for key in ("name", "ph", "pid"):
            if key not in event:
                raise ValueError(f"event missing required key {key!r}: {event!r}")
        if not isinstance(event["name"], str):
            raise ValueError(f"event name must be a string: {event!r}")
        ph = event["ph"]
        if ph not in ("X", "B", "E", "M", "i", "C"):
            raise ValueError(f"unknown event phase {ph!r}")
        if ph == "X":
            for key in ("ts", "dur", "tid"):
                if key not in event:
                    raise ValueError(f"X event missing {key!r}: {event!r}")
                if not isinstance(event[key], (int, float)):
                    raise ValueError(f"X event {key!r} must be numeric: {event!r}")
            if event["dur"] < 0:
                raise ValueError(f"negative duration: {event!r}")
            args = event.get("args", {})
            if "span_id" in args:
                span_ids.add(args["span_id"])
            duration_events += 1
    # Referential integrity: a local parent must exist in the trace
    # (remote parents always ride the envelope and are exported too).
    for event in events:
        if event.get("ph") != "X":
            continue
        parent = event.get("args", {}).get("parent_id")
        if parent is not None and parent not in span_ids:
            raise ValueError(f"dangling parent_id {parent!r}")
    return duration_events


_PROM_NAME = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(path: str) -> str:
    return "securetf_" + _PROM_NAME.sub("_", path)


def to_prometheus(
    metrics, histograms: Optional[Dict[str, Histogram]] = None
) -> str:
    """A :class:`~repro.core.monitoring.PlatformMetrics` snapshot (plus
    optional histograms) in Prometheus text exposition format."""
    lines: List[str] = []
    flat = flatten_metrics(metrics.to_json())
    nodes: Dict[str, Dict[str, float]] = {}
    for path, value in sorted(flat.items()):
        if path.startswith("nodes."):
            _, node_id, field = path.split(".", 2)
            nodes.setdefault(field, {})[node_id] = value
            continue
        name = _prom_name(path)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {value:g}")
    for field in sorted(nodes):
        name = _prom_name(f"node.{field}")
        lines.append(f"# TYPE {name} gauge")
        for node_id in sorted(nodes[field]):
            lines.append(f'{name}{{node="{node_id}"}} {nodes[field][node_id]:g}')
    for hist_name in sorted(histograms or {}):
        hist = histograms[hist_name]
        name = _prom_name(hist_name)
        lines.append(f"# TYPE {name} summary")
        for q in (0.5, 0.95, 0.99):
            lines.append(
                f'{name}{{quantile="{q}"}} {hist.percentile(q * 100):g}'
            )
        lines.append(f"{name}_sum {hist.sum:g}")
        lines.append(f"{name}_count {hist.count}")
    return "\n".join(lines) + "\n"


def to_json(tracer: Tracer, metrics=None) -> Dict[str, object]:
    """Spans, per-node profile, and histograms as one JSON-ready dict."""
    profiles = profile(tracer)
    return {
        "spans": [
            {
                "name": span.name,
                "trace_id": span.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "node": tracer.label_of(span.clock),
                "start": span.start,
                "end": span.end if span.end is not None else span.clock.now,
                "category": span.category,
                "attrs": {str(k): str(v) for k, v in span.attrs.items()},
            }
            for span in tracer.spans
        ],
        "dropped_spans": tracer.dropped_spans,
        "profile": {
            label: {"elapsed": p.elapsed, "layers": dict(p.layers)}
            for label, p in profiles.items()
        },
        "histograms": {
            name: hist.summary() for name, hist in sorted(tracer.histograms.items())
        },
        "metrics": metrics.to_json() if metrics is not None else None,
    }


def dump_json(payload: Dict[str, object]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
