"""Simulated-time profiling: per-layer attribution + a text flame report.

Attribution works because of a structural property of the simulation:
every advance of a node's clock is one disjoint serial interval, and
each instrumented mechanism records a *charge* for exactly the interval
it advanced (see :mod:`repro.observability.tracer`).  A node's elapsed
time therefore decomposes exactly:

    elapsed = Σ charged layers + compute (everything uncharged)

so the per-layer exclusive report sums to each node's elapsed simulated
time by construction — the acceptance bar of TensorSCONE-style overhead
breakdowns.  The span tree then *subdivides* that time top-down for the
flame report: a span's self time is its duration minus same-node child
spans, with the charge layers it contains shown inline.  Cross-node
parent links (propagated RPC context) are kept for trace continuity but
never subtracted across clocks.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.observability.tracer import LAYERS, Span, Tracer


@dataclass
class NodeProfile:
    """Exclusive per-layer time for one node (sums to ``elapsed``)."""

    label: str
    elapsed: float
    layers: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.layers.values())

    def share(self, layer: str) -> float:
        return self.layers.get(layer, 0.0) / self.elapsed if self.elapsed else 0.0


def profile(tracer: Tracer) -> Dict[str, NodeProfile]:
    """Per-node exclusive layer attribution, keyed by clock label."""
    profiles: Dict[str, NodeProfile] = {}
    for clock in tracer.clocks():
        record = tracer.clock_record(clock)
        elapsed = clock.now - record.t0
        layers = {layer: 0.0 for layer in LAYERS}
        charged = 0.0
        for layer, duration in record.layer_totals.items():
            layers[layer] = layers.get(layer, 0.0) + duration
            charged += duration
        # Everything no mechanism claimed is application compute.  The
        # clamp only absorbs float rounding: charges describe disjoint
        # clock advances, so their sum cannot truly exceed elapsed.
        layers["compute"] = max(0.0, elapsed - charged)
        profiles[record.label] = NodeProfile(record.label, elapsed, layers)
    return profiles


def format_profile(profiles: Dict[str, NodeProfile]) -> str:
    """The per-layer table (one row per node, one column per layer)."""
    labels = sorted(profiles)
    lines = ["per-node exclusive time by layer (simulated seconds)"]
    header = f"{'node':<14}{'elapsed':>10}" + "".join(
        f"{layer:>14}" for layer in LAYERS
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label in labels:
        p = profiles[label]
        row = f"{label:<14}{p.elapsed:>10.4f}" + "".join(
            f"{p.layers.get(layer, 0.0):>14.4f}" for layer in LAYERS
        )
        lines.append(row)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Flame report
# ----------------------------------------------------------------------


@dataclass
class _Frame:
    """One aggregated tree node: all same-name spans at one tree path."""

    name: str
    count: int = 0
    total: float = 0.0
    charged: Dict[str, float] = field(default_factory=dict)
    children: Dict[str, "_Frame"] = field(default_factory=dict)

    @property
    def children_total(self) -> float:
        return sum(child.total for child in self.children.values())

    @property
    def self_time(self) -> float:
        return max(0.0, self.total - self.children_total)


def _span_layer_charges(tracer: Tracer, span: Span) -> Dict[str, float]:
    """Charged time per layer recorded inside ``span``'s own window."""
    record = tracer.clock_record(span.clock)
    end = span.end if span.end is not None else span.clock.now
    charges: Dict[str, float] = {}
    lo = bisect.bisect_left(record.charge_starts, span.start)
    hi = bisect.bisect_left(record.charge_starts, end)
    for index in range(lo, hi):
        layer = record.charge_layers[index]
        duration = record.charge_cum[index] - (
            record.charge_cum[index - 1] if index else 0.0
        )
        charges[layer] = charges.get(layer, 0.0) + duration
    return charges


def build_flame(tracer: Tracer) -> Dict[str, _Frame]:
    """Aggregate each node's span tree into name-keyed frames."""
    by_clock: Dict[object, List[Span]] = {}
    by_id: Dict[str, Span] = {}
    for span in tracer.spans:
        by_clock.setdefault(span.clock, []).append(span)
        by_id[span.span_id] = span

    children_of: Dict[str, List[Span]] = {}
    roots_by_clock: Dict[object, List[Span]] = {}
    for span in tracer.spans:
        parent = by_id.get(span.parent_id) if span.parent_id else None
        # Same-node parentage only: a propagated (cross-node) parent
        # must not pull the span under another clock's subtree.
        if (
            parent is not None
            and not span.remote_parent
            and parent.clock is span.clock
        ):
            children_of.setdefault(parent.span_id, []).append(span)
        else:
            roots_by_clock.setdefault(span.clock, []).append(span)

    def aggregate(spans: List[Span], frames: Dict[str, _Frame]) -> None:
        for span in spans:
            frame = frames.get(span.name)
            if frame is None:
                frame = _Frame(span.name)
                frames[span.name] = frame
            frame.count += 1
            frame.total += span.duration
            for layer, duration in _span_layer_charges(tracer, span).items():
                frame.charged[layer] = frame.charged.get(layer, 0.0) + duration
            aggregate(children_of.get(span.span_id, []), frame.children)

    trees: Dict[str, _Frame] = {}
    for clock, spans in roots_by_clock.items():
        root = _Frame(tracer.label_of(clock))
        aggregate(spans, root.children)
        root.total = root.children_total
        root.count = len(spans)
        trees[root.name] = root
    return trees


def flame_report(
    tracer: Tracer, min_share: float = 0.001, max_depth: int = 8
) -> str:
    """Top-down text flame report, one tree per node.

    Frames below ``min_share`` of their node's traced total are elided
    (their time still shows in the parent's self time).
    """
    trees = build_flame(tracer)
    lines: List[str] = []
    for label in sorted(trees):
        root = trees[label]
        node_total = root.total
        lines.append(f"{label}: {node_total:.4f}s traced in spans")

        def render(frame: _Frame, depth: int) -> None:
            if depth > max_depth:
                return
            share = frame.total / node_total if node_total else 0.0
            if share < min_share:
                return
            charged = ", ".join(
                f"{layer} {duration:.4f}s"
                for layer, duration in sorted(frame.charged.items())
            )
            lines.append(
                f"{'  ' * depth}{frame.name:<28} "
                f"x{frame.count:<5} total {frame.total:>9.4f}s "
                f"self {frame.self_time:>9.4f}s ({share * 100:5.1f}%)"
                + (f"  [{charged}]" if charged else "")
            )
            for name in sorted(
                frame.children, key=lambda n: -frame.children[n].total
            ):
                render(frame.children[name], depth + 1)

        for name in sorted(root.children, key=lambda n: -root.children[n].total):
            render(root.children[name], 1)
        if tracer.dropped_spans:
            lines.append(
                f"  (span cap reached: {tracer.dropped_spans} spans dropped)"
            )
    return "\n".join(lines) if lines else "(no spans recorded)"
