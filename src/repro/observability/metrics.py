"""Time-series metrics: ring-buffer series, histograms, and a sampler.

TEEMon (the continuous TEE monitor the paper's group runs alongside
production secureTF) scrapes counters on a fixed interval into
Prometheus.  The simulated equivalent: a :class:`MetricsSampler`
subscribed to the node clocks takes a full
:func:`~repro.core.monitoring.collect_metrics` snapshot every
``interval`` simulated seconds, diffs it against the previous one, and
appends every numeric leaf to a fixed-capacity :class:`Series` — so a
long run keeps a bounded, recent window of per-interval rates, exactly
like a scrape-interval'd TSDB.

:class:`Histogram` is the distribution instrument (RPC latency, chunk
decrypt, EPC fault service): weighted observations with percentile
queries, fed by the tracer's charge/span hooks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Series:
    """A fixed-capacity ring buffer of (simulated time, value) points."""

    def __init__(self, name: str, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"series capacity must be positive: {capacity}")
        self.name = name
        self.capacity = capacity
        self._points: List[Tuple[float, float]] = []
        self._head = 0  # next write slot once the buffer is full
        self.total_appended = 0

    def append(self, t: float, value: float) -> None:
        if len(self._points) < self.capacity:
            self._points.append((t, value))
        else:
            self._points[self._head] = (t, value)
            self._head = (self._head + 1) % self.capacity
        self.total_appended += 1

    def points(self) -> List[Tuple[float, float]]:
        """Retained points, oldest first."""
        return self._points[self._head:] + self._points[: self._head]

    def values(self) -> List[float]:
        return [v for _, v in self.points()]

    def latest(self) -> Optional[Tuple[float, float]]:
        pts = self.points()
        return pts[-1] if pts else None

    def __len__(self) -> int:
        return len(self._points)


class Histogram:
    """Weighted-observation distribution with percentile queries."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: List[Tuple[float, int]] = []  # (value, weight)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value`` (one charge for an
        n-chunk decrypt is n identical per-chunk observations)."""
        if count <= 0:
            return
        self._samples.append((value, count))
        self.count += count
        self.sum += value * count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]) by cumulative weight."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = q / 100.0 * self.count
        cumulative = 0
        for value, weight in ordered:
            cumulative += weight
            if cumulative >= rank:
                return value
        return ordered[-1][0]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class WindowedHistogram:
    """Percentiles over the most recent ``window`` observations.

    The serving router's hedge delay tracks the *current* p99, not the
    lifetime p99: a cold-start spike an hour ago must not inflate hedge
    delays forever.  A ring buffer of the last ``window`` raw values
    gives a sliding-window estimate that adapts as the distribution
    moves, at O(window log window) per percentile query — fine at the
    scales the simulator runs.
    """

    def __init__(self, name: str, window: int = 256) -> None:
        if window < 1:
            raise ValueError(f"window must be positive: {window}")
        self.name = name
        self.window = window
        self._values: List[float] = []
        self._head = 0  # next write slot once the window is full
        self.count = 0  # lifetime observations, not window occupancy
        self.sum = 0.0  # lifetime sum

    def observe(self, value: float) -> None:
        if len(self._values) < self.window:
            self._values.append(value)
        else:
            self._values[self._head] = value
            self._head = (self._head + 1) % self.window
        self.count += 1
        self.sum += value

    def __len__(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100]) over the current window,
        or 0.0 before any observation (callers treat that as "no signal
        yet" and fall back to their configured floor)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100]: {q}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(0, min(len(ordered) - 1, int(q / 100.0 * len(ordered) + 0.5) - 1))
        return ordered[rank]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


def flatten_metrics(tree: Dict[str, object], prefix: str = "") -> Dict[str, float]:
    """Flatten a ``PlatformMetrics.to_json()`` tree into dotted numeric
    leaves (booleans become 0/1; the per-node list is keyed by node_id)."""
    flat: Dict[str, float] = {}
    for key, value in tree.items():
        path = f"{prefix}{key}"
        if isinstance(value, bool):
            flat[path] = 1.0 if value else 0.0
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
        elif isinstance(value, dict):
            flat.update(flatten_metrics(value, prefix=f"{path}."))
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, dict) and "node_id" in item:
                    flat.update(
                        flatten_metrics(item, prefix=f"{path}.{item['node_id']}.")
                    )
    flat.pop("nodes.node_id", None)
    return {k: v for k, v in flat.items() if not k.endswith(".node_id")}


class MetricsSampler:
    """Scrapes platform counters into ring-buffer series on a simulated
    interval.

    The sampler subscribes to every node clock; whenever any clock
    crosses the next interval boundary, it snapshots the platform,
    diffs against the previous snapshot, and appends each numeric leaf
    of the delta to its series.  A single large advance that jumps
    several boundaries produces one sample (intermediate states are
    unobservable in a discrete simulation) and the schedule realigns
    past the current time.

    Sampling is read-only — it never advances a clock — so an enabled
    sampler does not perturb simulated results.
    """

    def __init__(self, platform, interval: float, capacity: int = 512) -> None:
        if interval <= 0:
            raise ValueError(f"sample interval must be positive: {interval}")
        from repro.core.monitoring import collect_metrics

        self._platform = platform
        self._collect = collect_metrics
        self.interval = interval
        self.capacity = capacity
        self.series: Dict[str, Series] = {}
        self.samples_taken = 0
        self._previous = collect_metrics(platform)
        self._next_sample = platform.time + interval
        self._sampling = False
        self._clocks = [node.clock for node in platform.nodes]
        for clock in self._clocks:
            clock.subscribe(self._on_advance)
        self._closed = False

    # -- clock observer --------------------------------------------------

    def _on_advance(self, old: float, new: float) -> None:
        if self._sampling or self._closed or new < self._next_sample:
            return
        self._sampling = True
        try:
            self.sample(self._next_sample)
            now = max(clock.now for clock in self._clocks)
            intervals = int((now - self._next_sample) // self.interval) + 1
            self._next_sample += intervals * self.interval
        finally:
            self._sampling = False

    def sample(self, t: Optional[float] = None) -> None:
        """Take one scrape at simulated time ``t`` (default: now)."""
        if t is None:
            t = self._platform.time
        current = self._collect(self._platform)
        delta = current.diff(self._previous)
        self._previous = current
        self.samples_taken += 1
        for name, value in flatten_metrics(delta.to_json()).items():
            series = self.series.get(name)
            if series is None:
                series = Series(name, capacity=self.capacity)
                self.series[name] = series
            series.append(t, value)

    def close(self) -> None:
        """Detach from the clocks (no further samples)."""
        if self._closed:
            return
        self._closed = True
        for clock in self._clocks:
            clock.unsubscribe(self._on_advance)
