"""Automatic incident bundles: frozen evidence plus a causal timeline.

When something goes wrong — an SLO alert fires, an acceptor rejects a
fenced zombie, the watchdog quarantines a crash-looping lineage, a
chaos invariant is violated, a replica crashes — the evidence of *why*
lives in ring buffers that keep overwriting themselves.  The
:class:`IncidentPipeline` turns a trigger into a deterministic
:class:`IncidentBundle`:

1. the flight recorder's rings are frozen (recording pauses so bundle
   assembly cannot observe its own side effects);
2. the last-``window`` seconds of events before the trigger are merged
   across every node into one ``(time, seq)``-ordered **cross-node
   timeline**, with trace IDs from the PR 5 tracer linking spans across
   RPC hops;
3. when a tracer is active, the same window of spans is exported as a
   Chrome ``trace_event`` document (loadable in Perfetto next to the
   full-run trace);
4. an optional metrics probe contributes a counter snapshot;
5. a structured **root-cause summary** names the first fault-kind event
   preceding the trigger on the causal chain — preferring events that
   share the trigger's causal trace, falling back to the nearest
   preceding fault on any node.

Everything in a bundle is a pure function of the seeded run: incident
IDs come from a counter, times from simulated clocks, ordering from the
recorder's sequence numbers — two seeded runs emit byte-identical
bundles (:meth:`IncidentBundle.dump` is the canonical encoding the
tests compare).

:func:`bundle_from_scenario` builds the same bundle shape from a chaos
campaign's recorded history, so every schedule that reproduces a
violation (or survives a fault fenced) ships an explanatory bundle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro._sim.clock import SimClock
from repro.observability.flight import FlightEvent, FlightRecorder

#: Event kinds that can be a root cause (the faults, not the symptoms).
FAULT_KINDS = (
    "crash",
    "partition",
    "fault",
    "fence",
    "watchdog",
    "giveup",
    "violation",
)


@dataclass
class IncidentBundle:
    """One deterministic, self-contained incident report."""

    incident_id: str
    trigger_kind: str
    trigger_name: str
    trigger_detail: str
    trigger_time: float
    trigger_node: str
    window: float
    #: Cross-node causal timeline: canonical event lines in (time, seq)
    #: order, restricted to the last ``window`` seconds.
    timeline: List[str] = field(default_factory=list)
    #: Full frozen rings, label -> canonical event lines (the black box).
    rings: Dict[str, List[str]] = field(default_factory=dict)
    #: Last-N-seconds Chrome trace_event document (None without tracer).
    chrome_trace: Optional[Dict[str, object]] = None
    #: Counter snapshot at trigger time (None without a metrics probe).
    metrics: Optional[Dict[str, object]] = None
    #: Structured root-cause summary (see :func:`find_root_cause`).
    root_cause: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "incident_id": self.incident_id,
            "trigger": {
                "kind": self.trigger_kind,
                "name": self.trigger_name,
                "detail": self.trigger_detail,
                "time": round(self.trigger_time, 9),
                "node": self.trigger_node,
            },
            "window": self.window,
            "timeline": list(self.timeline),
            "rings": {label: list(lines) for label, lines in self.rings.items()},
            "chrome_trace": self.chrome_trace,
            "metrics": self.metrics,
            "root_cause": dict(self.root_cause),
        }

    def dump(self) -> bytes:
        """Canonical byte encoding (compared across seeded runs)."""
        return json.dumps(self.to_json(), sort_keys=True, indent=2).encode()

    def summary(self) -> str:
        cause = self.root_cause.get("summary", "unknown")
        return (
            f"{self.incident_id}: [{self.trigger_kind}] {self.trigger_name} "
            f"at t={self.trigger_time:.6f} on {self.trigger_node} — "
            f"root cause: {cause}"
        )


def find_root_cause(
    events: List[FlightEvent],
    trigger_kind: str,
    trigger_name: str,
    trigger_time: float,
    trigger_trace: Optional[str] = None,
) -> Dict[str, object]:
    """The first fault-kind event preceding the trigger on the causal
    chain.

    Preference order: the *earliest* fault event sharing the trigger's
    trace ID (when span context is available), else the earliest fault
    event in the window, else the trigger itself ("no prior fault
    observed" — the trigger is the first evidence).
    """
    faults = [
        e
        for e in events
        if e.time <= trigger_time and any(e.kind.startswith(k) for k in FAULT_KINDS)
    ]
    chosen: Optional[FlightEvent] = None
    if trigger_trace:
        on_chain = [e for e in faults if trigger_trace in e.detail]
        if on_chain:
            chosen = on_chain[0]
    if chosen is None and faults:
        chosen = faults[0]
    if chosen is None:
        return {
            "summary": f"no prior fault observed before {trigger_name}",
            "kind": trigger_kind,
            "name": trigger_name,
            "time": round(trigger_time, 9),
            "node": "",
        }
    return {
        "summary": (
            f"{chosen.kind} {chosen.name} on {chosen.node} "
            f"at t={chosen.time:.6f}"
            + (f" ({chosen.detail})" if chosen.detail else "")
        ),
        "kind": chosen.kind,
        "name": chosen.name,
        "detail": chosen.detail,
        "time": round(chosen.time, 9),
        "node": chosen.node,
    }


class IncidentPipeline:
    """Turns triggers into bundles; dedups so each distinct trigger key
    emits exactly one bundle per run."""

    def __init__(
        self,
        recorder: FlightRecorder,
        tracer=None,
        metrics_probe: Optional[Callable[[], Dict[str, object]]] = None,
        window: float = 5.0,
        stats=None,
        max_bundles: int = 64,
    ) -> None:
        self.recorder = recorder
        self.tracer = tracer
        self.metrics_probe = metrics_probe
        self.window = window
        self.stats = stats
        self.max_bundles = max_bundles
        self.bundles: List[IncidentBundle] = []
        self._seen: set = set()
        self._next_id = 1
        self.triggers = 0
        self.suppressed = 0

    def trigger(
        self,
        kind: str,
        name: str,
        clock: Optional[SimClock] = None,
        detail: str = "",
    ) -> Optional[IncidentBundle]:
        """Fire one trigger; returns the bundle, or None when suppressed
        (duplicate trigger key or bundle cap reached)."""
        self.triggers += 1
        if self.stats is not None:
            self.stats.incidents_triggered += 1
        key = (kind, name)
        if key in self._seen or len(self.bundles) >= self.max_bundles:
            self.suppressed += 1
            if self.stats is not None:
                self.stats.incidents_suppressed += 1
            return None
        self._seen.add(key)

        trigger_time = clock.now if clock is not None else self.recorder.now()
        trigger_node = self.recorder.label_of(clock)
        frozen = self.recorder.freeze()
        try:
            timeline_events = self.recorder.timeline(
                until=trigger_time, window=self.window
            )
            trigger_trace = self._trigger_trace(clock)
            bundle = IncidentBundle(
                incident_id=f"I{self._next_id}",
                trigger_kind=kind,
                trigger_name=name,
                trigger_detail=str(detail),
                trigger_time=trigger_time,
                trigger_node=trigger_node,
                window=self.window,
                timeline=[e.line() for e in timeline_events],
                rings={
                    label: [e.line() for e in events]
                    for label, events in frozen.items()
                },
                chrome_trace=self._chrome_window(trigger_time),
                metrics=self.metrics_probe() if self.metrics_probe else None,
                root_cause=find_root_cause(
                    timeline_events, kind, name, trigger_time, trigger_trace
                ),
            )
            self._next_id += 1
            self.bundles.append(bundle)
            if self.stats is not None:
                self.stats.bundles_emitted += 1
            return bundle
        finally:
            self.recorder.unfreeze()

    def _trigger_trace(self, clock: Optional[SimClock]) -> Optional[str]:
        """Trace ID of the innermost open span on the trigger's clock —
        the causal chain the root-cause search prefers."""
        if self.tracer is None or clock is None:
            return None
        current = getattr(self.tracer, "current_context", None)
        if current is None:
            return None
        context = current(clock)
        return context["t"] if context else None

    def _chrome_window(self, until: float) -> Optional[Dict[str, object]]:
        """Last-N-seconds Chrome trace from the active tracer."""
        if self.tracer is None:
            return None
        spans = getattr(self.tracer, "spans", None)
        if spans is None:
            return None
        start = until - self.window
        windowed = [
            span
            for span in spans
            if span.start <= until
            and (span.end if span.end is not None else span.start) >= start
        ]
        from repro.observability.exporters import to_chrome_trace

        return to_chrome_trace(self.tracer, spans=windowed)


# -- chaos-campaign bundles ----------------------------------------------


def bundle_from_scenario(schedule, run, fencing: bool) -> IncidentBundle:
    """An incident bundle distilled from a chaos schedule's history.

    The chaos families drive their own schedulers and histories rather
    than the live probe slots, so their bundles are built after the
    fact from the recorded :class:`~repro.chaos.history.History` — which
    is already the run's canonical causal record (total ``(seq, time)``
    order across every actor).  The injected fault is synthesized into
    the timeline at its schedule position, so the causal timeline names
    it even though the history only records its *consequences*.

    Trigger selection:

    - unfenced runs with violations: the first invariant violation;
    - fenced runs: the fault injection itself (the bundle shows the
      fence absorbing it — ``fenced`` ops in the timeline).
    """
    ops = run.history.ops
    injection_line = (
        f"fault-injection {schedule.kind} {schedule.family} "
        f"step={schedule.crash_step}"
        + (" +duplicate-storm" if schedule.duplicate_storm else "")
    )
    if run.violations:
        trigger_kind = "violation"
        trigger_name = run.violations[0].split("]", 1)[0].lstrip("[")
        trigger_detail = run.violations[0]
    else:
        trigger_kind = "fault-injection"
        trigger_name = schedule.kind
        trigger_detail = injection_line
    trigger_time = ops[-1].time if ops else 0.0

    timeline = [op.line() for op in ops]
    # Synthesize the injection marker at its causal position: before the
    # first op recorded after crash_step protocol steps (the runner
    # records in protocol order, so the index is the step count).
    marker = f"* {injection_line}"
    insert_at = min(schedule.crash_step, len(timeline))
    timeline.insert(insert_at, marker)

    root_cause = {
        "summary": (
            f"{schedule.kind} of {schedule.family} leader at protocol "
            f"step {schedule.crash_step}"
            + (" under duplicate storm" if schedule.duplicate_storm else "")
            + ("" if fencing else " with fencing disabled")
        ),
        "kind": schedule.kind,
        "name": schedule.family,
        "detail": schedule.schedule_id,
        "time": round(trigger_time, 9),
        "node": schedule.family,
    }
    return IncidentBundle(
        incident_id=f"I:{schedule.schedule_id}:{'fenced' if fencing else 'unfenced'}",
        trigger_kind=trigger_kind,
        trigger_name=trigger_name,
        trigger_detail=trigger_detail,
        trigger_time=trigger_time,
        trigger_node=schedule.family,
        window=float("inf"),
        timeline=timeline,
        rings={"history": [op.line() for op in ops]},
        chrome_trace=None,
        metrics={
            "ops_recorded": len(ops),
            "fenced_ops": len(run.history.of_kind("fenced")),
            "violations": list(run.violations),
        },
        root_cause=root_cause,
    )


__all__ = [
    "FAULT_KINDS",
    "IncidentBundle",
    "IncidentPipeline",
    "bundle_from_scenario",
    "find_root_cause",
]
