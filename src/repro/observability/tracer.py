"""Distributed span tracing over simulated time.

A :class:`Tracer` records two kinds of evidence about a run:

- **Spans**: named intervals of simulated time on one node's clock,
  forming a tree via parent IDs.  A span's context (trace ID + span ID)
  travels inside the RPC envelope, so the server handler's span on one
  node is parented by the client's call span on another — one trace ID
  across the cluster, exactly like W3C trace-context propagation.
- **Charges**: compact leaf attributions — "this clock just advanced
  ``duration`` seconds doing ``layer`` work" — recorded by the
  mechanism that did the advancing (EPC fault service, shield crypto,
  syscall ring, backpressure stalls, retry backoff, network waits).
  Charges are three parallel float lists per clock, not span objects,
  because hot paths (a paging storm is millions of EPC faults) cannot
  afford an object per event.

Both are pure recordings: the tracer never advances a clock, never
draws randomness (IDs come from a counter), and never mutates the
payloads it observes, so enabling tracing cannot change simulated
results, and two identical runs trace identically.

Everything is keyed by the ``SimClock`` instance doing the work — the
simulation's stand-in for "which process" — mirroring how
``runtime.stats_registry`` scopes its counters.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro._sim import probe
from repro._sim.clock import SimClock
from repro.observability.metrics import Histogram

#: The exclusive layers of the per-node profile.  Everything a charge
#: does not claim is attributed to ``compute`` by the profiler.
LAYERS = (
    "compute",
    "crypto",
    "epc_faults",
    "syscall_ring",
    "backpressure",
    "network_wait",
    "retry_backoff",
)

#: Span names whose durations feed a latency histogram.
_SPAN_HISTOGRAMS = {
    "rpc.call": "rpc.latency",
    "rpc.server": "rpc.server_latency",
    "ps.push": "ps.push_latency",
    "ps.pull": "ps.pull_latency",
    "ps.dequantize": "ps.dequantize_latency",
    "train.quantize": "train.quantize_latency",
    "secure_agg.mask": "secure_agg.mask_latency",
    "secure_agg.combine": "secure_agg.combine_latency",
}


@dataclass
class Span:
    """One named interval of simulated time on one clock."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    clock: SimClock
    start: float
    end: Optional[float] = None
    category: str = ""
    attrs: Dict[str, object] = field(default_factory=dict)
    #: True when the parent span lives on another node (propagated
    #: context): kept in the trace tree but excluded from same-node
    #: exclusive-time subtraction.
    remote_parent: bool = False

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def context(self) -> Dict[str, str]:
        """The propagation context carried in RPC envelopes."""
        return {"t": self.trace_id, "s": self.span_id}


class _ClockRecord:
    """Per-clock recording state: label, origin, span stack, charges."""

    __slots__ = (
        "label",
        "t0",
        "stack",
        "charge_starts",
        "charge_cum",
        "charge_layers",
        "layer_totals",
    )

    def __init__(self, label: str, t0: float) -> None:
        self.label = label
        self.t0 = t0
        self.stack: List[Span] = []
        #: Parallel arrays of charge intervals, in nondecreasing start
        #: order (charges are recorded immediately after the advance
        #: they describe, and clocks are monotonic).
        self.charge_starts: List[float] = []
        self.charge_cum: List[float] = []  # prefix sums of durations
        self.charge_layers: List[str] = []
        self.layer_totals: Dict[str, float] = {}

    def charged_within(self, start: float, end: float) -> float:
        """Total charged time recorded in the window [start, end)."""
        lo = bisect.bisect_left(self.charge_starts, start)
        hi = bisect.bisect_left(self.charge_starts, end)
        if hi <= lo:
            return 0.0
        return self.charge_cum[hi - 1] - (self.charge_cum[lo - 1] if lo else 0.0)


class Tracer:
    """Deterministic span/charge recorder for one telemetry session."""

    #: Ceiling on retained span objects; further spans still nest (the
    #: stack stays coherent) but are not kept, and ``dropped_spans``
    #: counts them.
    MAX_SPANS = 200_000

    def __init__(self, max_spans: int = MAX_SPANS) -> None:
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped_spans = 0
        self.histograms: Dict[str, Histogram] = {}
        self._clocks: Dict[SimClock, _ClockRecord] = {}
        self._next_trace = 1
        self._next_span = 1

    # -- clock registry --------------------------------------------------

    def register_clock(self, clock: SimClock, label: str) -> None:
        """Name the process behind ``clock`` (first registration wins:
        containers share their node's clock and must not relabel it)."""
        record = self._clocks.get(clock)
        if record is None:
            self._clocks[clock] = _ClockRecord(label, clock.now)

    def _record(self, clock: SimClock) -> _ClockRecord:
        record = self._clocks.get(clock)
        if record is None:
            record = _ClockRecord(f"clock-{len(self._clocks)}", clock.now)
            self._clocks[clock] = record
        return record

    def clocks(self) -> List[SimClock]:
        return list(self._clocks)

    def label_of(self, clock: SimClock) -> str:
        return self._record(clock).label

    def clock_record(self, clock: SimClock) -> _ClockRecord:
        return self._record(clock)

    # -- spans -----------------------------------------------------------

    def start_span(
        self,
        clock: SimClock,
        name: str,
        category: str = "",
        attrs: Optional[Dict[str, object]] = None,
        parent_context: Optional[Dict[str, str]] = None,
    ) -> Span:
        """Open a span on ``clock``.

        Parentage: an explicit ``parent_context`` (extracted from an RPC
        envelope) wins and marks the parent remote; otherwise the
        innermost open span on the same clock is the parent; otherwise
        the span roots a fresh trace.
        """
        record = self._record(clock)
        remote = False
        if parent_context is not None:
            trace_id = parent_context["t"]
            parent_id: Optional[str] = parent_context["s"]
            remote = True
        elif record.stack:
            top = record.stack[-1]
            trace_id = top.trace_id
            parent_id = top.span_id
        else:
            trace_id = f"T{self._next_trace}"
            self._next_trace += 1
            parent_id = None
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=f"S{self._next_span}",
            parent_id=parent_id,
            clock=clock,
            start=clock.now,
            category=category,
            attrs=dict(attrs) if attrs else {},
            remote_parent=remote,
        )
        self._next_span += 1
        record.stack.append(span)
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped_spans += 1
        return span

    def end_span(self, span: Span) -> None:
        span.end = span.clock.now
        stack = self._record(span.clock).stack
        if span in stack:
            # Pop through to this span (robust to a child left open by
            # an exception unwinding past its end_span).
            while stack:
                if stack.pop() is span:
                    break
        hist_name = _SPAN_HISTOGRAMS.get(span.name)
        if hist_name is not None:
            self.observe(hist_name, span.duration)
        flight = probe.FLIGHT
        if flight is not None:
            flight.on_span_end(span)

    def span(
        self,
        clock: SimClock,
        name: str,
        category: str = "",
        attrs: Optional[Dict[str, object]] = None,
        parent_context: Optional[Dict[str, str]] = None,
    ) -> "_SpanScope":
        return _SpanScope(self, clock, name, category, attrs, parent_context)

    def event(
        self, clock: SimClock, name: str, attrs: Optional[Dict[str, object]] = None
    ) -> Span:
        """A zero-duration instant (retry fired, worker restarted...)."""
        span = self.start_span(clock, name, category="event", attrs=attrs)
        self.end_span(span)
        return span

    def current_context(self, clock: SimClock) -> Optional[Dict[str, str]]:
        """Context of the innermost open span on ``clock`` (for envelope
        injection), or None outside any span."""
        stack = self._record(clock).stack
        return stack[-1].context() if stack else None

    # -- charges ---------------------------------------------------------

    def charge(
        self,
        clock: SimClock,
        layer: str,
        duration: float,
        count: int = 1,
        histogram: Optional[str] = None,
    ) -> None:
        """Attribute the ``duration`` seconds that just elapsed on
        ``clock`` (i.e. the interval ending at ``clock.now``) to
        ``layer``.  ``count``/``histogram`` feed a per-item latency
        histogram (e.g. per-chunk decrypt from one n-chunk charge)."""
        if duration <= 0.0:
            return
        record = self._record(clock)
        record.charge_starts.append(clock.now - duration)
        previous = record.charge_cum[-1] if record.charge_cum else 0.0
        record.charge_cum.append(previous + duration)
        record.charge_layers.append(layer)
        record.layer_totals[layer] = record.layer_totals.get(layer, 0.0) + duration
        if histogram is not None and count > 0:
            self.observe(histogram, duration / count, count=count)
        flight = probe.FLIGHT
        if flight is not None:
            flight.on_charge(clock, layer, duration)

    # -- histograms ------------------------------------------------------

    def observe(self, name: str, value: float, count: int = 1) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram(name)
            self.histograms[name] = hist
        hist.observe(value, count=count)


class _SpanScope:
    """Context manager form of start_span/end_span."""

    def __init__(self, tracer, clock, name, category, attrs, parent_context) -> None:
        self._tracer = tracer
        self._args = (clock, name, category, attrs, parent_context)
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        clock, name, category, attrs, parent_context = self._args
        self.span = self._tracer.start_span(
            clock, name, category=category, attrs=attrs, parent_context=parent_context
        )
        return self.span

    def __exit__(self, *exc_info: object) -> None:
        assert self.span is not None
        self._tracer.end_span(self.span)


def activate(tracer: Tracer) -> Optional[object]:
    """Install ``tracer`` as the process-wide recorder; returns the
    previous one (restore it for scoped activation)."""
    return probe.set_active(tracer)


def deactivate() -> None:
    probe.set_active(None)


def active_tracer() -> Optional[Tracer]:
    tracer = probe.ACTIVE
    return tracer if isinstance(tracer, Tracer) else None
