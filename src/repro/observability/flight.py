"""The black-box flight recorder: bounded per-node event rings.

An aircraft flight recorder keeps the *last few minutes* of everything,
always, so that when something goes wrong the evidence of why is already
on disk.  This module is the platform equivalent: fixed-capacity ring
buffers — one per node clock, plus a control ring for events with no
owning node — that capture recent spans, layer charges, and
RPC/fence/watchdog events at near-zero cost.

Cost discipline mirrors :mod:`repro._sim.probe`'s tracer slot:

- instrumentation sites call :func:`probe.flight`, whose fast path is a
  single module-global load and a None comparison;
- recording never advances a clock, never draws randomness, and never
  allocates per-event objects beyond one tuple — a run with the
  recorder installed has byte-identical simulated results, and a run
  without it is byte-identical to an interpreter that never imported
  this package;
- rings overwrite their oldest entry when full (``overwritten`` counts
  the loss), so memory is O(nodes * capacity) no matter how long the
  run is.

The :mod:`repro.observability.incident` pipeline freezes these rings
into a deterministic snapshot when a trigger fires — the ring contents
are a pure function of the seeded run, so two seeded runs freeze
byte-identical evidence.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro._sim.clock import SimClock

#: Label of the ring that receives clock-less (control-plane) events.
CONTROL_RING = "control"


class FlightEvent(NamedTuple):
    """One recorded event: global order is ``(time, seq)``."""

    time: float
    seq: int
    node: str
    kind: str
    name: str
    detail: str

    def line(self) -> str:
        """Canonical one-line encoding (stable across runs)."""
        parts = [f"{self.seq}", f"{self.time:.6f}", self.node, self.kind, self.name]
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)


class _Ring:
    """A fixed-capacity overwrite-oldest buffer of FlightEvents."""

    __slots__ = ("capacity", "_events", "_head", "overwritten")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._events: List[FlightEvent] = []
        self._head = 0  # next write slot once the ring is full
        self.overwritten = 0

    def append(self, event: FlightEvent) -> None:
        if len(self._events) < self.capacity:
            self._events.append(event)
        else:
            self._events[self._head] = event
            self._head = (self._head + 1) % self.capacity
            self.overwritten += 1

    def events(self) -> List[FlightEvent]:
        """Retained events, oldest first."""
        return self._events[self._head:] + self._events[: self._head]

    def __len__(self) -> int:
        return len(self._events)


class FlightRecorder:
    """Per-node ring buffers of recent span/charge/fault events.

    Register node clocks up front (:meth:`register_clock`) so events
    carry node labels; an unregistered clock is auto-labelled
    ``clock-N`` in registration order, exactly like the tracer.  All
    sequence numbers come from one shared counter, so merging every
    ring by ``(time, seq)`` yields a deterministic total order — the
    incident bundle's cross-node timeline.
    """

    def __init__(self, capacity: int = 256, stats=None) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be positive: {capacity}")
        self.capacity = capacity
        self._rings: Dict[SimClock, _Ring] = {}
        self._labels: Dict[SimClock, str] = {}
        self._control = _Ring(capacity)
        self._seq = 0
        #: Optional MonitoringStats: counters surface via collect_metrics.
        self.stats = stats
        self.events_recorded = 0
        self._frozen = False

    # -- clock registry --------------------------------------------------

    def register_clock(self, clock: SimClock, label: str) -> None:
        """Name the node behind ``clock`` (first registration wins)."""
        if clock not in self._rings:
            self._rings[clock] = _Ring(self.capacity)
            self._labels[clock] = label

    def _ring(self, clock: Optional[SimClock]) -> _Ring:
        if clock is None:
            return self._control
        ring = self._rings.get(clock)
        if ring is None:
            ring = _Ring(self.capacity)
            self._rings[clock] = ring
            self._labels[clock] = f"clock-{len(self._labels)}"
        return ring

    def label_of(self, clock: Optional[SimClock]) -> str:
        if clock is None:
            return CONTROL_RING
        self._ring(clock)
        return self._labels[clock]

    def clocks(self) -> List[SimClock]:
        return list(self._rings)

    # -- recording -------------------------------------------------------

    def now(self) -> float:
        """Fleet time: max over registered clocks (control-ring events
        with no clock of their own are stamped with it)."""
        return max((c.now for c in self._rings), default=0.0)

    def record(
        self,
        clock: Optional[SimClock],
        kind: str,
        name: str,
        detail: str = "",
    ) -> None:
        """Append one event (the :func:`probe.flight` target).

        Frozen recorders drop events: an incident bundle under assembly
        must not observe the assembly's own side effects.
        """
        if self._frozen:
            return
        time = clock.now if clock is not None else self.now()
        event = FlightEvent(
            time=time,
            seq=self._seq,
            node=self.label_of(clock),
            kind=kind,
            name=name,
            detail=str(detail),
        )
        self._seq += 1
        self._ring(clock).append(event)
        self.events_recorded += 1
        if self.stats is not None:
            self.stats.flight_events += 1

    # -- tracer forwarding -----------------------------------------------

    def on_span_end(self, span) -> None:
        """Called by the tracer when a span closes (recorder + tracer
        both on): the ring keeps the recent span tail even after the
        tracer's own buffer would have scrolled far past it."""
        self.record(
            span.clock,
            "span",
            span.name,
            f"{span.trace_id}/{span.span_id}"
            + (f"<-{span.parent_id}" if span.parent_id else ""),
        )

    def on_charge(self, clock: SimClock, layer: str, duration: float) -> None:
        """Called by the tracer's charge hook (recorder + tracer on)."""
        self.record(clock, "charge", layer, f"{duration:.6f}")

    # -- freezing --------------------------------------------------------

    def freeze(self) -> Dict[str, List[FlightEvent]]:
        """Stop recording and snapshot every ring, label -> events.

        Labels are emitted in deterministic registration order; call
        :meth:`unfreeze` to resume recording after bundle assembly.
        """
        self._frozen = True
        snapshot: Dict[str, List[FlightEvent]] = {}
        for clock, ring in self._rings.items():
            snapshot[self._labels[clock]] = ring.events()
        if len(self._control):
            snapshot[CONTROL_RING] = self._control.events()
        return snapshot

    def unfreeze(self) -> None:
        self._frozen = False

    def timeline(
        self, until: Optional[float] = None, window: Optional[float] = None
    ) -> List[FlightEvent]:
        """All retained events merged into one (time, seq) order,
        optionally restricted to the last ``window`` seconds before
        ``until`` (the incident bundle's last-N-seconds view)."""
        events: List[FlightEvent] = []
        for ring in self._rings.values():
            events.extend(ring.events())
        events.extend(self._control.events())
        if until is not None:
            events = [e for e in events if e.time <= until]
            if window is not None:
                events = [e for e in events if e.time >= until - window]
        return sorted(events, key=lambda e: (e.time, e.seq))


__all__ = ["CONTROL_RING", "FlightEvent", "FlightRecorder"]
