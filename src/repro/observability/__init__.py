"""Continuous telemetry for the simulated secureTF platform.

Three coupled pieces (see DESIGN.md §5f):

- :mod:`.tracer` — distributed span tracing with RPC context
  propagation and compact per-layer charges;
- :mod:`.metrics` — ring-buffer time series (TEEMon-style sampler) and
  weighted histograms with percentile queries;
- :mod:`.profiler` / :mod:`.exporters` — exclusive per-layer profiles
  that sum to each node's elapsed simulated time, a text flame report,
  and Chrome trace_event / Prometheus / JSON exporters.

Recording is off unless a tracer is installed in
:mod:`repro._sim.probe`; instrumented hot paths check that single slot
and do nothing else when it is empty.
"""

from repro.observability.exporters import (
    dump_json,
    to_chrome_trace,
    to_json,
    to_prometheus,
    validate_chrome_trace,
)
from repro.observability.metrics import (
    Histogram,
    MetricsSampler,
    Series,
    WindowedHistogram,
    flatten_metrics,
)
from repro.observability.plane import Telemetry
from repro.observability.profiler import (
    NodeProfile,
    build_flame,
    flame_report,
    format_profile,
    profile,
)
from repro.observability.tracer import (
    LAYERS,
    Span,
    Tracer,
    activate,
    active_tracer,
    deactivate,
)

__all__ = [
    "Histogram",
    "LAYERS",
    "MetricsSampler",
    "NodeProfile",
    "Series",
    "Span",
    "Telemetry",
    "Tracer",
    "WindowedHistogram",
    "activate",
    "active_tracer",
    "build_flame",
    "deactivate",
    "dump_json",
    "flame_report",
    "flatten_metrics",
    "format_profile",
    "profile",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
    "validate_chrome_trace",
]
