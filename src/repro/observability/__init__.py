"""Continuous telemetry for the simulated secureTF platform.

Coupled pieces (see DESIGN.md §5f and §5k):

- :mod:`.tracer` — distributed span tracing with RPC context
  propagation and compact per-layer charges;
- :mod:`.metrics` — ring-buffer time series (TEEMon-style sampler) and
  weighted histograms with percentile queries;
- :mod:`.profiler` / :mod:`.exporters` — exclusive per-layer profiles
  that sum to each node's elapsed simulated time, a text flame report,
  and Chrome trace_event / Prometheus / JSON exporters;
- :mod:`.monitoring` — declarative SLOs with multi-window burn-rate
  alerting, evaluated as recurring event-heap activities;
- :mod:`.flight` — the black-box flight recorder (bounded per-node
  event rings at near-zero cost);
- :mod:`.incident` — trigger-driven deterministic incident bundles
  with cross-node causal timelines and root-cause summaries.

Recording is off unless a recorder is installed in
:mod:`repro._sim.probe`; instrumented hot paths check those single
slots and do nothing else when they are empty.
"""

from repro.observability.exporters import (
    dump_json,
    to_chrome_trace,
    to_json,
    to_prometheus,
    validate_chrome_trace,
)
from repro.observability.metrics import (
    Histogram,
    MetricsSampler,
    Series,
    WindowedHistogram,
    flatten_metrics,
)
from repro.observability.flight import CONTROL_RING, FlightEvent, FlightRecorder
from repro.observability.incident import (
    IncidentBundle,
    IncidentPipeline,
    bundle_from_scenario,
    find_root_cause,
)
from repro.observability.monitoring import (
    Alert,
    MonitoringSession,
    MonitoringStats,
    SloMonitor,
    SloSpec,
    cas_slos,
    fraction_probe,
    rate_probe,
    serving_slos,
    training_slos,
)
from repro.observability.plane import Telemetry
from repro.observability.profiler import (
    NodeProfile,
    build_flame,
    flame_report,
    format_profile,
    profile,
)
from repro.observability.tracer import (
    LAYERS,
    Span,
    Tracer,
    activate,
    active_tracer,
    deactivate,
)

__all__ = [
    "Alert",
    "CONTROL_RING",
    "FlightEvent",
    "FlightRecorder",
    "Histogram",
    "IncidentBundle",
    "IncidentPipeline",
    "LAYERS",
    "MetricsSampler",
    "MonitoringSession",
    "MonitoringStats",
    "NodeProfile",
    "Series",
    "SloMonitor",
    "SloSpec",
    "Span",
    "Telemetry",
    "Tracer",
    "WindowedHistogram",
    "activate",
    "active_tracer",
    "build_flame",
    "bundle_from_scenario",
    "cas_slos",
    "deactivate",
    "dump_json",
    "find_root_cause",
    "flame_report",
    "flatten_metrics",
    "format_profile",
    "fraction_probe",
    "profile",
    "rate_probe",
    "serving_slos",
    "to_chrome_trace",
    "to_json",
    "to_prometheus",
    "training_slos",
    "validate_chrome_trace",
]
