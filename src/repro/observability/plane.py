"""The platform-level telemetry plane: tracer + sampler, one handle.

``SecureTFPlatform`` builds a :class:`Telemetry` when its config says
``tracing=True``: the tracer is installed as the process-wide probe
(:mod:`repro._sim.probe`), every node clock is registered under its
node ID, and (when an interval is configured) a
:class:`~repro.observability.metrics.MetricsSampler` scrapes the
platform's counters continuously.  The handle bundles the export
surface — profile, flame report, Chrome trace, Prometheus text, JSON —
and ``close()`` restores the previous probe so platforms can be traced
in sequence within one process.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._sim import probe
from repro.observability import exporters
from repro.observability.metrics import MetricsSampler
from repro.observability.profiler import (
    NodeProfile,
    flame_report,
    format_profile,
    profile,
)
from repro.observability.tracer import Tracer


class Telemetry:
    """One platform's telemetry session (tracer + optional sampler)."""

    def __init__(self, platform, sample_interval: float = 0.0) -> None:
        self._platform = platform
        self.tracer = Tracer()
        for node in platform.nodes:
            self.tracer.register_clock(node.clock, node.node_id)
        self._previous_probe = probe.set_active(self.tracer)
        self.sampler: Optional[MetricsSampler] = (
            MetricsSampler(platform, sample_interval) if sample_interval > 0 else None
        )
        self._closed = False

    # -- reports ---------------------------------------------------------

    def profile(self) -> Dict[str, NodeProfile]:
        return profile(self.tracer)

    def profile_report(self) -> str:
        return format_profile(self.profile())

    def flame_report(self) -> str:
        return flame_report(self.tracer)

    # -- exporters -------------------------------------------------------

    def chrome_trace(self) -> Dict[str, object]:
        return exporters.to_chrome_trace(self.tracer)

    def prometheus(self) -> str:
        from repro.core.monitoring import collect_metrics

        return exporters.to_prometheus(
            collect_metrics(self._platform), histograms=self.tracer.histograms
        )

    def to_json(self) -> Dict[str, object]:
        from repro.core.monitoring import collect_metrics

        return exporters.to_json(
            self.tracer, metrics=collect_metrics(self._platform)
        )

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Stop recording: detach the sampler and restore the probe."""
        if self._closed:
            return
        self._closed = True
        if self.sampler is not None:
            self.sampler.close()
        if probe.ACTIVE is self.tracer:
            probe.set_active(self._previous_probe)

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
