"""Key management: session keys and in-enclave TLS identity generation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro._sim.rng import DeterministicRng
from repro.crypto import encoding
from repro.crypto.certs import Certificate, CertificateAuthority
from repro.crypto.ed25519 import Ed25519PrivateKey
from repro.crypto.tls import TlsIdentity
from repro.crypto.x25519 import X25519PrivateKey
from repro.errors import IntegrityError


@dataclass
class ProvisionedIdentity:
    """Everything CAS hands an attested enclave to join a session."""

    session: str
    fs_key: bytes
    tls_signing_key: bytes
    tls_certificate: bytes
    trusted_root: bytes
    secrets: Dict[str, bytes] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        return encoding.encode(
            {
                "session": self.session,
                "fs_key": self.fs_key,
                "tls_signing_key": self.tls_signing_key,
                "tls_certificate": self.tls_certificate,
                "trusted_root": self.trusted_root,
                "secrets": dict(self.secrets),
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProvisionedIdentity":
        payload = encoding.decode(data)
        try:
            return cls(
                session=payload["session"],
                fs_key=payload["fs_key"],
                tls_signing_key=payload["tls_signing_key"],
                tls_certificate=payload["tls_certificate"],
                trusted_root=payload["trusted_root"],
                secrets=dict(payload["secrets"]),
            )
        except (KeyError, TypeError) as exc:
            raise IntegrityError("malformed provisioned identity") from exc

    def tls_identity(self) -> TlsIdentity:
        """Materialize the TLS identity (key + certificate)."""
        return TlsIdentity(
            signing_key=Ed25519PrivateKey(self.tls_signing_key),
            certificate=Certificate.from_bytes(self.tls_certificate),
        )


class KeyManager:
    """Generates keys and certificates inside the CAS enclave.

    TLS keys are generated here and shipped sealed to attested enclaves,
    so no human ever handles them (§7.3).
    """

    def __init__(self, rng: DeterministicRng, ca_name: str = "cas-root") -> None:
        self._rng = rng
        self.ca = CertificateAuthority(
            ca_name, Ed25519PrivateKey.generate(rng.random_bytes(32))
        )

    def new_symmetric_key(self) -> bytes:
        return self._rng.random_bytes(32)

    def new_tls_identity(self, subject: str, now: float) -> "tuple[bytes, bytes]":
        """Returns (signing key bytes, serialized certificate)."""
        signing_key = Ed25519PrivateKey.generate(self._rng.random_bytes(32))
        exchange_key = X25519PrivateKey.generate(self._rng.random_bytes(32))
        certificate = self.ca.issue(
            subject=subject,
            ed25519_public=signing_key.public_key().public_bytes(),
            x25519_public=exchange_key.public_key().public_bytes(),
            now=now,
        )
        return signing_key.private_bytes(), certificate.to_bytes()

    def trusted_root_bytes(self) -> bytes:
        return self.ca.public_key().public_bytes()
