"""The freshness audit service: distributed rollback protection.

The file-system shield detects *tampering* by itself (AEAD), but an
attacker who snapshots an encrypted file and later restores it replays
perfectly valid ciphertext.  The paper's answer (§3.3.2) is an auditing
service inside CAS that tracks every protected file's latest committed
version; enclaves verify against it on read.

The log is a hash chain: every commit links to the previous record's
digest, so even an attacker who somehow rewrote an entry would break
every subsequent link — tests assert this tamper evidence.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto import encoding
from repro.errors import FreshnessError


@dataclass(frozen=True)
class AuditRecord:
    """One committed file version in the hash-chained log."""

    sequence: int
    owner: str
    path: str
    version: int
    digest: bytes
    previous: bytes  # digest of the previous record

    def record_digest(self) -> bytes:
        return hashlib.sha256(
            encoding.encode(
                {
                    "sequence": self.sequence,
                    "owner": self.owner,
                    "path": self.path,
                    "version": self.version,
                    "digest": self.digest,
                    "previous": self.previous,
                }
            )
        ).digest()


class FreshnessAuditService:
    """Tracks latest committed versions; append-only hash-chained log."""

    def __init__(self) -> None:
        self._log: List[AuditRecord] = []
        self._latest: Dict[Tuple[str, str], AuditRecord] = {}
        self._head = b"\x00" * 32

    # ------------------------------------------------------------------

    def commit(self, owner: str, path: str, version: int, digest: bytes) -> AuditRecord:
        """Record a new file version; versions must be strictly monotonic."""
        key = (owner, path)
        current = self._latest.get(key)
        if current is not None and version <= current.version:
            raise FreshnessError(
                f"non-monotonic commit for {owner}:{path}: version {version} "
                f"after {current.version}"
            )
        record = AuditRecord(
            sequence=len(self._log),
            owner=owner,
            path=path,
            version=version,
            digest=digest,
            previous=self._head,
        )
        self._log.append(record)
        self._latest[key] = record
        self._head = record.record_digest()
        return record

    def verify(self, owner: str, path: str, version: int, digest: bytes) -> None:
        """Check that (version, digest) is the latest committed state."""
        record = self._latest.get((owner, path))
        if record is None:
            raise FreshnessError(f"no committed state for {owner}:{path}")
        if version != record.version or digest != record.digest:
            raise FreshnessError(
                f"stale state for {owner}:{path}: presented version {version}, "
                f"latest committed {record.version} (rollback attack?)"
            )

    def latest(self, owner: str, path: str) -> Optional[AuditRecord]:
        return self._latest.get((owner, path))

    # ------------------------------------------------------------------

    @property
    def log(self) -> List[AuditRecord]:
        return list(self._log)

    def verify_chain(self) -> None:
        """Walk the whole log checking every hash link."""
        head = b"\x00" * 32
        for index, record in enumerate(self._log):
            if record.previous != head:
                raise FreshnessError(
                    f"audit log chain broken at sequence {index}"
                )
            if record.sequence != index:
                raise FreshnessError(
                    f"audit log sequence gap at {index} (found {record.sequence})"
                )
            head = record.record_digest()


class ScopedFreshnessTracker:
    """Adapter binding one owner to the audit service.

    Implements the file-system shield's ``FreshnessTracker`` protocol, so
    a shield constructed with this object gets CAS-backed, restart-proof
    rollback protection.
    """

    def __init__(self, service: FreshnessAuditService, owner: str) -> None:
        self._service = service
        self._owner = owner

    def commit(self, path: str, version: int, digest: bytes) -> None:
        self._service.commit(self._owner, path, version, digest)

    def verify(self, path: str, version: int, digest: bytes) -> None:
        self._service.verify(self._owner, path, version, digest)
