"""The freshness audit service: distributed rollback protection.

The file-system shield detects *tampering* by itself (AEAD), but an
attacker who snapshots an encrypted file and later restores it replays
perfectly valid ciphertext.  The paper's answer (§3.3.2) is an auditing
service inside CAS that tracks every protected file's latest committed
version; enclaves verify against it on read.

The log is a hash chain: every commit links to the previous record's
digest, so even an attacker who somehow rewrote an entry would break
every subsequent link — tests assert this tamper evidence.

An append-only chain grows without bound, so CAS periodically signs a
**checkpoint** — (sequence, head) under its Ed25519 root — after which
everything before the checkpoint can be truncated: the signed head pins
the entire truncated prefix, so rewriting history still breaks the
chain rooted at the checkpoint.  Commit hooks let a standby CAS mirror
the log record-by-record (the replication channel of
:mod:`repro.cas.failover`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.crypto import encoding
from repro.crypto.ed25519 import Ed25519PrivateKey, Ed25519PublicKey
from repro.errors import FreshnessError


@dataclass(frozen=True)
class AuditRecord:
    """One committed file version in the hash-chained log."""

    sequence: int
    owner: str
    path: str
    version: int
    digest: bytes
    previous: bytes  # digest of the previous record

    def record_digest(self) -> bytes:
        return hashlib.sha256(
            encoding.encode(
                {
                    "sequence": self.sequence,
                    "owner": self.owner,
                    "path": self.path,
                    "version": self.version,
                    "digest": self.digest,
                    "previous": self.previous,
                }
            )
        ).digest()


@dataclass(frozen=True)
class AuditCheckpoint:
    """A signed (sequence, head) pair pinning a log prefix.

    ``sequence`` is the number of records the checkpoint covers; ``head``
    is the chain head after the last covered record.  The signature is
    CAS's Ed25519 root over the canonical encoding, so a truncated
    prefix stays tamper-evident: any rewrite of retained records breaks
    the chain rooted at ``head``, and ``head`` itself cannot be forged.
    """

    sequence: int
    head: bytes
    signature: bytes

    def signed_payload(self) -> bytes:
        return encoding.encode({"sequence": self.sequence, "head": self.head})

    def verify(self, public_key: Ed25519PublicKey) -> None:
        public_key.verify(self.signature, self.signed_payload())


#: Called with each appended record (replication / metrics fan-out).
CommitHook = Callable[[AuditRecord], None]


class FreshnessAuditService:
    """Tracks latest committed versions; append-only hash-chained log."""

    def __init__(self) -> None:
        self._log: List[AuditRecord] = []
        self._latest: Dict[Tuple[str, str], AuditRecord] = {}
        self._head = b"\x00" * 32
        #: Chain state at the truncation boundary: records before
        #: ``_base_sequence`` were dropped, ``_base_head`` (from a signed
        #: checkpoint) is the head they chained up to.
        self._base_sequence = 0
        self._base_head = b"\x00" * 32
        self._checkpoints: List[AuditCheckpoint] = []
        self._commit_hooks: List[CommitHook] = []

    # ------------------------------------------------------------------

    def add_commit_hook(self, hook: CommitHook) -> None:
        """Fan each appended record out (e.g. to a standby replica)."""
        self._commit_hooks.append(hook)

    def commit(self, owner: str, path: str, version: int, digest: bytes) -> AuditRecord:
        """Record a new file version; versions must be strictly monotonic."""
        key = (owner, path)
        current = self._latest.get(key)
        if current is not None and version <= current.version:
            raise FreshnessError(
                f"non-monotonic commit for {owner}:{path}: version {version} "
                f"after {current.version}"
            )
        record = AuditRecord(
            sequence=self._base_sequence + len(self._log),
            owner=owner,
            path=path,
            version=version,
            digest=digest,
            previous=self._head,
        )
        self._log.append(record)
        self._latest[key] = record
        self._head = record.record_digest()
        for hook in self._commit_hooks:
            hook(record)
        return record

    def verify(self, owner: str, path: str, version: int, digest: bytes) -> None:
        """Check that (version, digest) is the latest committed state."""
        record = self._latest.get((owner, path))
        if record is None:
            raise FreshnessError(f"no committed state for {owner}:{path}")
        if version != record.version or digest != record.digest:
            raise FreshnessError(
                f"stale state for {owner}:{path}: presented version {version}, "
                f"latest committed {record.version} (rollback attack?)"
            )

    def latest(self, owner: str, path: str) -> Optional[AuditRecord]:
        return self._latest.get((owner, path))

    # ------------------------------------------------------------------

    @property
    def log(self) -> List[AuditRecord]:
        return list(self._log)

    @property
    def checkpoints(self) -> List[AuditCheckpoint]:
        return list(self._checkpoints)

    @property
    def head(self) -> bytes:
        return self._head

    def verify_chain(self, public_key: Optional[Ed25519PublicKey] = None) -> None:
        """Walk the retained log checking every hash link (and, given the
        CAS root key, every checkpoint signature)."""
        if public_key is not None:
            for checkpoint in self._checkpoints:
                checkpoint.verify(public_key)
        head = self._base_head
        for offset, record in enumerate(self._log):
            index = self._base_sequence + offset
            if record.previous != head:
                raise FreshnessError(
                    f"audit log chain broken at sequence {index}"
                )
            if record.sequence != index:
                raise FreshnessError(
                    f"audit log sequence gap at {index} (found {record.sequence})"
                )
            head = record.record_digest()
        for checkpoint in self._checkpoints:
            if checkpoint.sequence == self._base_sequence + len(self._log):
                if checkpoint.head != head:
                    raise FreshnessError(
                        "audit log head diverges from its checkpoint"
                    )

    # -- bounded growth: signed checkpoints + truncation -----------------

    def checkpoint(self, signing_key: Ed25519PrivateKey) -> AuditCheckpoint:
        """Sign the current (sequence, head); enables truncating history."""
        sequence = self._base_sequence + len(self._log)
        payload = encoding.encode({"sequence": sequence, "head": self._head})
        checkpoint = AuditCheckpoint(
            sequence=sequence,
            head=self._head,
            signature=signing_key.sign(payload),
        )
        self._checkpoints.append(checkpoint)
        return checkpoint

    def truncate(self) -> int:
        """Drop every record covered by the newest checkpoint.

        The per-file ``latest`` index (what :meth:`verify` consults) is
        untouched — truncation bounds the *history*, not the protection.
        Returns the number of records dropped.
        """
        if not self._checkpoints:
            raise FreshnessError("cannot truncate an uncheckpointed audit log")
        checkpoint = self._checkpoints[-1]
        keep_from = checkpoint.sequence - self._base_sequence
        dropped = self._log[:keep_from]
        self._log = self._log[keep_from:]
        self._base_sequence = checkpoint.sequence
        self._base_head = checkpoint.head
        return len(dropped)


class ScopedFreshnessTracker:
    """Adapter binding one owner to the audit service.

    Implements the file-system shield's ``FreshnessTracker`` protocol, so
    a shield constructed with this object gets CAS-backed, restart-proof
    rollback protection.
    """

    def __init__(self, service: FreshnessAuditService, owner: str) -> None:
        self._service = service
        self._owner = owner

    def commit(self, path: str, version: int, digest: bytes) -> None:
        self._service.commit(self._owner, path, version, digest)

    def verify(self, path: str, version: int, digest: bytes) -> None:
        self._service.verify(self._owner, path, version, digest)
