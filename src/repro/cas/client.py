"""Client side of CAS provisioning — direct and over the network.

The joining enclave's half of the protocol described in
:mod:`repro.cas.service`: generate the quote-bound X25519 key, attest,
send the quote, unseal the bundle.  ``CasClient`` talks to a co-located
service object (CAS on the same node / in-process tests);
``RemoteCasClient`` goes through the simulated network, charging LAN
latency — the realistic Fig. 4 configuration.
"""

from __future__ import annotations

from typing import Optional

from repro._sim import probe
from repro._sim.trace import EventTrace
from repro.cas.keys import ProvisionedIdentity
from repro.cas.service import CasService, ProvisionBundle, derive_provision_key
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.retry import RetryPolicy
from repro.cluster.rpc import RpcClient, RpcServer
from repro.crypto import encoding
from repro.crypto.x25519 import X25519PrivateKey, X25519PublicKey
from repro.enclave.attestation import Quote
from repro.errors import AttestationError
from repro.runtime.scone import SconeRuntime


def _request_bundle(
    runtime: SconeRuntime,
    session: str,
    send_quote,
    trace: Optional[EventTrace] = None,
) -> ProvisionedIdentity:
    """Common flow: keygen -> quote -> send -> unseal."""
    with probe.span(
        runtime.clock,
        "attestation.provision",
        category="attestation",
        attrs={"session": session},
    ):
        return _request_bundle_inner(runtime, session, send_quote, trace)


def _request_bundle_inner(
    runtime: SconeRuntime,
    session: str,
    send_quote,
    trace: Optional[EventTrace] = None,
) -> ProvisionedIdentity:
    exchange_key = X25519PrivateKey.generate(
        runtime.rng.child("cas-exchange").random_bytes(32)
    )
    public = exchange_key.public_key().public_bytes()

    if trace is not None:
        with trace.span("quote.generation"):
            quote = runtime.attest(report_data=public)
    else:
        quote = runtime.attest(report_data=public)

    bundle = send_quote(session, quote)

    shared = exchange_key.exchange(X25519PublicKey(bundle.ephemeral_public))
    transcript = quote.report.measurement + public
    opener = derive_provision_key(shared, transcript)
    identity = ProvisionedIdentity.from_bytes(
        opener.open(bundle.sealed_identity)
    )
    if identity.session != session:
        raise AttestationError(
            f"CAS provisioned session {identity.session!r}, requested {session!r}"
        )
    return identity


class CasClient:
    """Provisioning against a co-located :class:`CasService`."""

    def __init__(self, service: CasService, trace: Optional[EventTrace] = None) -> None:
        self._service = service
        self._trace = trace

    def provision(self, runtime: SconeRuntime, session: str) -> ProvisionedIdentity:
        return _request_bundle(
            runtime, session, self._service.provision, trace=self._trace
        )


class RemoteCasClient:
    """Provisioning over the simulated LAN (charges network latency)."""

    def __init__(
        self,
        network: Network,
        node: Node,
        cas_address: str,
        trace: Optional[EventTrace] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._network = network
        self._node = node
        self._cas_address = cas_address
        self._trace = trace
        self._retry = retry

    def provision(self, runtime: SconeRuntime, session: str) -> ProvisionedIdentity:
        client = RpcClient(
            self._network,
            f"cas-client@{self._node.node_id}",
            self._node,
            retry=self._retry,
        )

        def send(sess: str, quote: Quote) -> ProvisionBundle:
            payload = encoding.encode({"session": sess, "quote": quote.to_bytes()})
            if self._trace is not None:
                with self._trace.span("key.transfer"):
                    raw = client.call(self._cas_address, "provision", payload)
            else:
                raw = client.call(self._cas_address, "provision", payload)
            return ProvisionBundle.from_bytes(raw)

        return _request_bundle(runtime, session, send, trace=self._trace)


def serve_cas(network: Network, service: CasService, address: str = "cas") -> RpcServer:
    """Expose a CAS service on the network (provision + audit methods)."""
    server = RpcServer(network, address, service.node)

    def handle_provision(payload: bytes, peer) -> bytes:
        body = encoding.decode(payload)
        quote = Quote.from_bytes(body["quote"])
        return service.provision(body["session"], quote).to_bytes()

    def handle_audit_commit(payload: bytes, peer) -> bytes:
        body = encoding.decode(payload)
        service.audit.commit(
            body["owner"], body["path"], body["version"], body["digest"]
        )
        return b"ok"

    def handle_audit_verify(payload: bytes, peer) -> bytes:
        body = encoding.decode(payload)
        service.audit.verify(
            body["owner"], body["path"], body["version"], body["digest"]
        )
        return b"ok"

    def handle_ping(payload: bytes, peer) -> bytes:
        # Liveness probe for partition-aware supervision: a reply proves
        # the endpoint is reachable *through the network*, which
        # registration alone cannot (a one-way-partitioned zombie stays
        # registered while its replies vanish).
        return b"ok"

    server.register("provision", handle_provision)
    server.register("audit_commit", handle_audit_commit)
    server.register("audit_verify", handle_audit_verify)
    server.register("ping", handle_ping)
    server.start()
    return server


class RemoteFreshnessTracker:
    """FreshnessTracker backed by CAS's audit service over the network."""

    def __init__(
        self,
        network: Network,
        node: Node,
        owner: str,
        cas_address: str = "cas",
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._client = RpcClient(
            network, f"audit-{owner}@{node.node_id}", node, retry=retry
        )
        self._owner = owner
        self._cas_address = cas_address

    def commit(self, path: str, version: int, digest: bytes) -> None:
        self._client.call(
            self._cas_address,
            "audit_commit",
            encoding.encode(
                {"owner": self._owner, "path": path, "version": version, "digest": digest}
            ),
        )

    def verify(self, path: str, version: int, digest: bytes) -> None:
        self._client.call(
            self._cas_address,
            "audit_verify",
            encoding.encode(
                {"owner": self._owner, "path": path, "version": version, "digest": digest}
            ),
        )
