"""The encrypted embedded secrets database (paper: SQLite-in-enclave).

CAS stores keys, certificates, and policies in an embedded database that
is itself encrypted and runs inside the CAS enclave (§4.3).  Persistence
goes to untrusted storage, so the database defends itself:

- the whole store is sealed with an AEAD key derived from the enclave's
  sealing identity (confidentiality + integrity), and
- the store's version is bound to a **hardware monotonic counter**, so
  replaying an old (validly sealed) database snapshot — the rollback
  attack on CAS itself — is detected at load time.

Crash consistency: sealing and bumping the counter are two operations,
and CAS can die between them (or between sealing and the blob reaching
disk).  The protocol is therefore *seal first, bump last*: a snapshot is
sealed under ``counter + 1``, persisted, and only then is the counter
incremented.  Load accepts versions in ``{counter, counter + 1}`` — the
latter is the persisted-but-unacknowledged snapshot, which load *rolls
forward* by bumping the counter itself.  Any older version is a genuine
rollback and stays rejected.  :class:`TwoSlotSealedStore` supplies the
disk half: snapshots alternate between two slot files so a torn write
can never destroy the newest good snapshot.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.crypto import encoding
from repro.errors import FreshnessError, IntegrityError, SecurityError, SyscallError

SealFn = Callable[[bytes], bytes]
UnsealFn = Callable[[bytes], bytes]


class HardwareCounter:
    """A monotonic counter the adversary cannot roll back.

    Stands in for TPM NV counters / SGX monotonic counters: state lives
    "in hardware", outside the VFS an attacker can rewrite.

    A replicated CAS pair shares one counter object (a replicated
    monotonic-counter *service* in production — rollback protection
    across failover requires both instances to bind snapshots to the
    same counter).  A shared counter is a shared acceptor, so it can be
    **fenced**: when ``guard`` is attached (an
    :class:`~repro.cluster.epoch.EpochGuard`, duck-typed here to keep
    this module free of cluster imports), :meth:`increment` demands the
    caller's epoch and rejects a stale one with ``FencedError`` — the
    commit point of the seal-first/bump-last protocol is exactly where a
    zombie primary must be stopped from double-issuing a counter value.
    """

    def __init__(self) -> None:
        self._value = 0
        #: Optional epoch guard over the increment (commit) operation.
        self.guard = None

    @property
    def value(self) -> int:
        return self._value

    def increment(self, epoch: "int | None" = None) -> int:
        if self.guard is not None:
            self.guard.check(epoch)
        self._value += 1
        return self._value


class SecretsDatabase:
    """An in-enclave key-value store with sealed, rollback-proof persistence."""

    def __init__(
        self,
        seal: SealFn,
        unseal: UnsealFn,
        counter: HardwareCounter,
    ) -> None:
        self._seal = seal
        self._unseal = unseal
        self._counter = counter
        self._records: Dict[str, bytes] = {}
        self._version = 0
        #: The owning CAS instance's epoch lease (set by the failover
        #: pair).  Its epoch is presented to the counter's guard at every
        #: commit-point increment, so a fenced zombie's acknowledgements
        #: are rejected by the shared counter service.
        self.lease = None

    # -- in-memory operations -------------------------------------------

    def put(self, key: str, value: bytes) -> None:
        self._records[key] = value

    def get(self, key: str) -> bytes:
        if key not in self._records:
            raise KeyError(f"no secret stored under {key!r}")
        return self._records[key]

    def contains(self, key: str) -> bool:
        return key in self._records

    def delete(self, key: str) -> None:
        if key not in self._records:
            raise KeyError(f"no secret stored under {key!r}")
        del self._records[key]

    def keys(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self._records if k.startswith(prefix))

    def __len__(self) -> int:
        return len(self._records)

    # -- persistence ------------------------------------------------------

    def export_sealed(self) -> bytes:
        """Seal the store for untrusted persistence.

        Seals under ``counter + 1`` **without** bumping the counter — the
        caller must persist the blob and then call
        :meth:`acknowledge_persisted`.  (The old protocol bumped first: a
        crash between the bump and the blob reaching disk left every
        on-disk snapshot older than the counter, bricking the store.)
        """
        version = self._counter.value + 1
        payload = encoding.encode(
            {"version": version, "records": dict(self._records)}
        )
        return self._seal(payload)

    def _lease_epoch(self) -> "int | None":
        return self.lease.epoch if self.lease is not None else None

    def acknowledge_persisted(self) -> int:
        """Bump the hardware counter after the sealed blob is durable.

        The counter is the commit point: once bumped, every older
        snapshot is rejectable as a rollback.  A guarded (shared)
        counter rejects the bump when this instance's epoch is stale —
        the sealed blob then never becomes authoritative.
        """
        self._version = self._counter.increment(self._lease_epoch())
        return self._version

    def load_sealed(self, blob: bytes) -> int:
        """Load a sealed snapshot; rejects tampering and rollback.

        Accepts versions ``counter`` (the acknowledged snapshot) and
        ``counter + 1`` (persisted, crashed before the acknowledgement
        bump) — the latter is rolled forward by bumping the counter now.
        Anything older is a rollback attack.
        """
        try:
            payload = encoding.decode(self._unseal(blob))
        except (IntegrityError, SecurityError) as exc:
            raise IntegrityError("secrets database failed unsealing") from exc
        if not isinstance(payload, dict) or "version" not in payload:
            raise IntegrityError("secrets database snapshot malformed")
        version = payload["version"]
        if version == self._counter.value + 1:
            # Roll forward: the blob was durable, the ack bump was not.
            self._counter.increment(self._lease_epoch())
        elif version != self._counter.value:
            raise FreshnessError(
                f"secrets database rollback detected: snapshot version "
                f"{version}, hardware counter {self._counter.value}"
            )
        self._records = dict(payload["records"])
        self._version = version
        return len(self._records)


class TwoSlotSealedStore:
    """Two-slot crash-consistent persistence for a :class:`SecretsDatabase`.

    Snapshots alternate between ``{prefix}.slot0`` and ``{prefix}.slot1``
    on untrusted storage, so a write — even one torn mid-crash — only
    ever lands on the *older* slot; the newest good snapshot is never
    overwritten.  Combined with the seal-first/bump-last protocol above,
    a crash at any boundary of :meth:`save` leaves the store loadable:

    - before the slot write, or torn during it: the other slot holds the
      acknowledged snapshot (version == counter) — clean load;
    - after the write, before the ack bump: the new slot holds version
      counter + 1 — :meth:`SecretsDatabase.load_sealed` rolls forward;
    - after the bump: clean load of the new snapshot.

    Restoring *both* slots from an old disk image leaves every candidate
    below the hardware counter — :meth:`load` raises FreshnessError, the
    rollback stays detected.
    """

    def __init__(self, syscalls, prefix: str) -> None:
        self._syscalls = syscalls
        self._prefix = prefix
        self._next_slot = 0

    def slot_path(self, slot: int) -> str:
        return f"{self._prefix}.slot{slot}"

    def save(self, db: SecretsDatabase) -> str:
        """Seal, persist to the older slot, then acknowledge (bump)."""
        blob = db.export_sealed()
        path = self.slot_path(self._next_slot)
        self._syscalls.write_file(path, blob)
        self._next_slot = 1 - self._next_slot
        db.acknowledge_persisted()
        return path

    def _candidates(self, db: SecretsDatabase) -> List[Tuple[int, int, bytes]]:
        """(version, slot, blob) of every slot that unseals cleanly."""
        found: List[Tuple[int, int, bytes]] = []
        for slot in (0, 1):
            try:
                blob = self._syscalls.read_file(self.slot_path(slot)).content
            except SyscallError:
                continue
            try:
                payload = encoding.decode(db._unseal(blob))
            except (IntegrityError, SecurityError):
                continue  # torn or tampered slot: ignore, the other wins
            if isinstance(payload, dict) and "version" in payload:
                found.append((payload["version"], slot, blob))
        return found

    def load(self, db: SecretsDatabase) -> int:
        """Load the newest valid slot into ``db`` (mount-time recovery).

        Raises FreshnessError when the best surviving snapshot is older
        than the hardware counter (rollback), IntegrityError when no slot
        unseals at all.
        """
        candidates = self._candidates(db)
        if not candidates:
            raise IntegrityError(
                f"no loadable secrets-database slot under {self._prefix!r}"
            )
        version, slot, blob = max(candidates)
        count = db.load_sealed(blob)
        # Resume alternation so the next save overwrites the older slot.
        self._next_slot = 1 - slot
        return count
