"""The encrypted embedded secrets database (paper: SQLite-in-enclave).

CAS stores keys, certificates, and policies in an embedded database that
is itself encrypted and runs inside the CAS enclave (§4.3).  Persistence
goes to untrusted storage, so the database defends itself:

- the whole store is sealed with an AEAD key derived from the enclave's
  sealing identity (confidentiality + integrity), and
- the store's version is bound to a **hardware monotonic counter**, so
  replaying an old (validly sealed) database snapshot — the rollback
  attack on CAS itself — is detected at load time.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.crypto import encoding
from repro.errors import FreshnessError, IntegrityError, SecurityError

SealFn = Callable[[bytes], bytes]
UnsealFn = Callable[[bytes], bytes]


class HardwareCounter:
    """A monotonic counter the adversary cannot roll back.

    Stands in for TPM NV counters / SGX monotonic counters: state lives
    "in hardware", outside the VFS an attacker can rewrite.
    """

    def __init__(self) -> None:
        self._value = 0

    @property
    def value(self) -> int:
        return self._value

    def increment(self) -> int:
        self._value += 1
        return self._value


class SecretsDatabase:
    """An in-enclave key-value store with sealed, rollback-proof persistence."""

    def __init__(
        self,
        seal: SealFn,
        unseal: UnsealFn,
        counter: HardwareCounter,
    ) -> None:
        self._seal = seal
        self._unseal = unseal
        self._counter = counter
        self._records: Dict[str, bytes] = {}
        self._version = 0

    # -- in-memory operations -------------------------------------------

    def put(self, key: str, value: bytes) -> None:
        self._records[key] = value

    def get(self, key: str) -> bytes:
        if key not in self._records:
            raise KeyError(f"no secret stored under {key!r}")
        return self._records[key]

    def contains(self, key: str) -> bool:
        return key in self._records

    def delete(self, key: str) -> None:
        if key not in self._records:
            raise KeyError(f"no secret stored under {key!r}")
        del self._records[key]

    def keys(self, prefix: str = "") -> List[str]:
        return sorted(k for k in self._records if k.startswith(prefix))

    def __len__(self) -> int:
        return len(self._records)

    # -- persistence ------------------------------------------------------

    def export_sealed(self) -> bytes:
        """Seal the store for untrusted persistence; bumps the counter."""
        self._version = self._counter.increment()
        payload = encoding.encode(
            {"version": self._version, "records": dict(self._records)}
        )
        return self._seal(payload)

    def load_sealed(self, blob: bytes) -> int:
        """Load a sealed snapshot; rejects tampering and rollback."""
        try:
            payload = encoding.decode(self._unseal(blob))
        except (IntegrityError, SecurityError) as exc:
            raise IntegrityError("secrets database failed unsealing") from exc
        if not isinstance(payload, dict) or "version" not in payload:
            raise IntegrityError("secrets database snapshot malformed")
        version = payload["version"]
        if version != self._counter.value:
            raise FreshnessError(
                f"secrets database rollback detected: snapshot version "
                f"{version}, hardware counter {self._counter.value}"
            )
        self._records = dict(payload["records"])
        self._version = version
        return len(self._records)
