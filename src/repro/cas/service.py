"""The CAS service: attest, evaluate policy, provision — inside an enclave.

Provisioning protocol (real cryptography end to end):

1. The joining enclave generates an X25519 keypair and binds the public
   key into its quote's report data (so possession of the private key is
   tied to the attested code identity).
2. CAS verifies the quote offline against the provisioning root
   (<1 ms — the whole Fig. 4 point), evaluates the session policy, and
   assembles the member's bundle: session fs-shield key, a TLS identity
   generated in-enclave, the trust root, and the session's secrets.
3. CAS performs ECDH against the quote-bound key with a fresh ephemeral
   key and returns the bundle sealed under the derived AEAD key — only
   the attested enclave can open it.

CAS state (policies, session keys, secrets) lives in the encrypted
embedded database, persisted sealed + rollback-protected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro._sim.trace import EventTrace
from repro.cas.audit import FreshnessAuditService
from repro.cas.keys import KeyManager, ProvisionedIdentity
from repro.cas.policy import Policy, PolicyEngine
from repro.cas.secrets_db import HardwareCounter, SecretsDatabase, TwoSlotSealedStore
from repro.cluster.node import Node
from repro.crypto import encoding
from repro.crypto.aead import AeadKey
from repro.crypto.kdf import hkdf
from repro.crypto.x25519 import X25519PrivateKey, X25519PublicKey
from repro.enclave.attestation import AttestationVerifier, Quote
from repro.enclave.sgx import SgxMode
from repro.errors import AttestationError, PolicyError
from repro.runtime.scone import RuntimeConfig, SconeRuntime


@dataclass(frozen=True)
class ProvisionBundle:
    """The sealed response to a provisioning request."""

    ephemeral_public: bytes
    sealed_identity: bytes

    def to_bytes(self) -> bytes:
        return encoding.encode(
            {
                "ephemeral_public": self.ephemeral_public,
                "sealed_identity": self.sealed_identity,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ProvisionBundle":
        payload = encoding.decode(data)
        return cls(
            ephemeral_public=payload["ephemeral_public"],
            sealed_identity=payload["sealed_identity"],
        )


def derive_provision_key(shared_secret: bytes, transcript: bytes) -> AeadKey:
    """HKDF the ECDH output into the bundle-sealing key."""
    key = hkdf(
        salt=b"securetf-cas-provision",
        ikm=shared_secret,
        info=transcript,
        length=32,
    )
    return AeadKey("chacha20-poly1305", key)


class CasService:
    """A CAS instance running in its own enclave on one node."""

    def __init__(
        self,
        node: Node,
        provisioning_root,
        mode: SgxMode = SgxMode.HW,
        trace: Optional[EventTrace] = None,
        counter: Optional[HardwareCounter] = None,
        persist_prefix: Optional[str] = None,
    ) -> None:
        self.node = node
        self._trace = trace
        rng = node.rng.child("cas")
        # CAS has zero behaviour-controlling configuration (§4.3): the
        # enclave image is just the CAS binary.
        self._runtime = SconeRuntime(
            RuntimeConfig(
                name="cas",
                mode=mode,
                binary_size=6 * 1024 * 1024,  # slim Rust service binary
                heap_size=64 * 1024 * 1024,
                fs_shield_enabled=False,
            ),
            node.vfs,
            node.cost_model,
            node.clock,
            cpu=node.cpu,
            rng=rng,
        )
        enclave = self._runtime.enclave
        assert enclave is not None
        self._enclave = enclave
        self._counter = counter if counter is not None else HardwareCounter()
        self.db = SecretsDatabase(
            seal=enclave.seal, unseal=enclave.unseal, counter=self._counter
        )
        self.policies = PolicyEngine()
        self.audit = FreshnessAuditService()
        self.keys = KeyManager(rng.child("keys"))
        self._verifier = AttestationVerifier(provisioning_root)
        self._rng = rng.child("provision")
        self._member_counters: Dict[str, int] = {}
        #: Crash-consistent sealed persistence on this node's untrusted
        #: storage (None = in-memory only, the pre-hardening behaviour).
        self.store: Optional[TwoSlotSealedStore] = (
            TwoSlotSealedStore(self._runtime.syscalls, persist_prefix)
            if persist_prefix is not None
            else None
        )
        #: Replication hook: called with ``(op, payload)`` after every
        #: state mutation (installed by :mod:`repro.cas.failover`).
        self.replicator = None
        #: Leadership lease (an :class:`~repro.cluster.epoch.EpochLease`,
        #: installed by the failover pair when fencing is on).  Checked
        #: at every persist so a superseded instance cannot seal new
        #: state — the holder-side half of the fence, modelling the
        #: lease-expiry timer a real CAS runs locally.
        self.lease = None

    # ------------------------------------------------------------------

    @property
    def counter(self) -> HardwareCounter:
        """The monotonic counter this instance binds snapshots to."""
        return self._counter

    def set_lease(self, lease) -> None:
        """Install (or replace) this instance's leadership lease.

        Propagated to the secrets database so the shared counter's
        guard sees the lease epoch at every commit-point increment.
        """
        self.lease = lease
        self.db.lease = lease

    def attest(self, report_data: bytes = b"") -> Quote:
        """A quote over the CAS enclave itself (users verify CAS first)."""
        return self._enclave.get_quote(report_data)

    @property
    def measurement(self) -> bytes:
        return self._enclave.measurement

    def trusted_root_bytes(self) -> bytes:
        return self.keys.trusted_root_bytes()

    # ------------------------------------------------------------------

    def register_policy(
        self, policy: Policy, secrets: Optional[Dict[str, bytes]] = None
    ) -> None:
        """Register a session policy and its secrets (data-owner action)."""
        self.policies.register(policy)
        for name, value in (secrets or {}).items():
            self.db.put(f"secret/{policy.session}/{name}", value)
        self.db.put(f"fs_key/{policy.session}", self.keys.new_symmetric_key())
        self.db.put(f"policy/{policy.session}", self._encode_policy(policy))
        self.persist()
        if self.replicator is not None:
            self.replicator(
                "register_policy",
                {
                    "policy": self._encode_policy(policy),
                    "secrets": dict(secrets or {}),
                    "fs_key": self.db.get(f"fs_key/{policy.session}"),
                },
            )

    def apply_replicated_policy(
        self, policy_bytes: bytes, secrets: Dict[str, bytes], fs_key: bytes
    ) -> None:
        """Install a policy replicated from the primary (standby side).

        Unlike :meth:`register_policy`, the fs-shield key is the
        *primary's* — enclaves re-provisioned after a failover must
        receive the same key or every shielded file becomes unreadable.
        """
        policy = self._decode_policy(policy_bytes)
        self.policies.register(policy)
        for name, value in secrets.items():
            self.db.put(f"secret/{policy.session}/{name}", value)
        self.db.put(f"fs_key/{policy.session}", fs_key)
        self.db.put(f"policy/{policy.session}", policy_bytes)
        self.persist()

    @staticmethod
    def _encode_policy(policy: Policy) -> bytes:
        return encoding.encode(
            {
                "session": policy.session,
                "allowed_measurements": list(policy.allowed_measurements),
                "secret_names": list(policy.secret_names),
                "accept_debug": policy.accept_debug,
                "max_members": policy.max_members,
            }
        )

    @staticmethod
    def _decode_policy(data: bytes) -> Policy:
        payload = encoding.decode(data)
        return Policy(
            session=payload["session"],
            allowed_measurements=list(payload["allowed_measurements"]),
            secret_names=list(payload["secret_names"]),
            accept_debug=payload["accept_debug"],
            max_members=payload["max_members"],
        )

    def persist(self) -> None:
        """Seal + persist the database (two-slot, crash-consistent).

        With a lease installed, a superseded instance is stopped here:
        sealing new state after losing the leadership epoch is exactly
        the zombie write fencing exists to prevent.
        """
        if self.lease is not None:
            self.lease.check()
        if self.store is not None:
            self.store.save(self.db)
        else:
            # No disk: still exercise the seal-then-ack protocol so the
            # counter binds the latest state.
            self.db.export_sealed()
            self.db.acknowledge_persisted()

    def restore(self) -> int:
        """Mount-time recovery: load the newest valid sealed slot and
        rebuild the policy engine from the restored records."""
        if self.store is None:
            raise PolicyError("CAS has no persistence store configured")
        count = self.store.load(self.db)
        self.policies = PolicyEngine()
        for key in self.db.keys("policy/"):
            self.policies.register(self._decode_policy(self.db.get(key)))
        return count

    def owner_fs_key(self, session: str) -> bytes:
        """The session's fs-shield key, released to the *data owner*.

        In production this flows over the owner's attested TLS session to
        CAS (the owner trusts CAS after attesting it); the simulation
        returns it directly.  Owners need it to encrypt models/code they
        upload for the session's enclaves.
        """
        self.policies.get(session)  # raises PolicyError if unknown
        return self.db.get(f"fs_key/{session}")

    def provision(self, session: str, quote: Quote) -> ProvisionBundle:
        """Verify, admit, and provision one enclave into a session."""
        policy = self.policies.get(session)
        with self._span("cas.verification"):
            self.node.clock.advance(self.node.cost_model.quote_verification_cost)
            report = self._verifier.verify(quote, accept_debug=policy.accept_debug)
        self.policies.evaluate(session, report)

        if len(report.report_data) != 32:
            raise AttestationError(
                "provisioning requires a 32-byte X25519 key in report data"
            )

        with self._span("cas.provisioning"):
            self.node.clock.advance(self.node.cost_model.secret_provisioning_cost)
            member_index = self._member_counters.get(session, 0)
            self._member_counters[session] = member_index + 1
            subject = f"{session}/{report.attributes.get('name', 'member')}-{member_index}"

            signing_key, certificate = self.keys.new_tls_identity(
                subject, now=self.node.clock.now
            )
            secrets = {
                name.rsplit("/", 1)[1]: self.db.get(name)
                for name in self.db.keys(f"secret/{session}/")
            }
            identity = ProvisionedIdentity(
                session=session,
                fs_key=self.db.get(f"fs_key/{session}"),
                tls_signing_key=signing_key,
                tls_certificate=certificate,
                trusted_root=self.keys.trusted_root_bytes(),
                secrets=secrets,
            )

            ephemeral = X25519PrivateKey.generate(self._rng.random_bytes(32))
            shared = ephemeral.exchange(X25519PublicKey(report.report_data))
            transcript = report.measurement + report.report_data
            sealer = derive_provision_key(shared, transcript)
            return ProvisionBundle(
                ephemeral_public=ephemeral.public_key().public_bytes(),
                sealed_identity=sealer.seal(identity.to_bytes()),
            )

    # ------------------------------------------------------------------

    def _span(self, name: str):
        if self._trace is not None:
            return self._trace.span(name)
        import contextlib

        return contextlib.nullcontext()
