"""CAS high availability: primary/backup replication + failover.

CAS is the root of the paper's trust story — and therefore its single
point of failure: if the node running CAS dies, no enclave can be
provisioned and every freshness check stalls.  This module pairs two
CAS instances on *different* nodes:

- **Logical replication.**  Sealed blobs cannot cross nodes (the sealing
  key is derived from the CPU's fused root, §4.3), so the pair mirrors
  *operations*, not snapshots: every policy registration and every audit
  record is pushed to the standby over the simulated network, and the
  primary only treats a mutation as committed once the standby has
  acknowledged it (quorum 2/2).  The standby applies records through its
  own hash chain, so after any prefix of replication both heads agree.
- **Promotion.**  Failover re-registers the standby's public CAS server
  at the primary's well-known address.  Clients built on PR 2's retrying
  RPC plumbing (``RemoteCasClient``/``RemoteFreshnessTracker`` with a
  retry policy) see transport errors while the address is vacant, back
  off, and transparently reach the promoted standby — which serves the
  same policies, the same session fs-keys, and a byte-identical audit
  chain.
- **Shared trust root.**  The pair shares its CA identity (exchanged at
  pairing time over an attested channel in production), so certificates
  issued before the failover keep verifying after it.

The orchestrator supervises the pair like any service: a probe checks
the well-known address is served, and the recovery action is
:meth:`ReplicatedCasPair.promote`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cas.client import serve_cas
from repro.cas.service import CasService
from repro.cluster.epoch import EpochLease, EpochService
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.retry import RetryPolicy
from repro.cluster.rpc import RpcClient, RpcServer
from repro.crypto import encoding
from repro.errors import RpcError

#: Epoch role name for the CAS pair's leader.
CAS_PRIMARY_ROLE = "cas-primary"


@dataclass
class CasPairStats:
    """Replication/failover counters (surfaced via collect_metrics)."""

    ops_replicated: int = 0      # policy registrations mirrored
    records_replicated: int = 0  # audit records mirrored
    quorum_acks: int = 0         # standby acknowledgements received
    failovers: int = 0           # promotions performed
    epochs_replicated: int = 0   # epoch records double-written


class ReplicatedCasPair:
    """Two CAS instances, one address, quorum-acked replication."""

    def __init__(
        self,
        network: Network,
        primary: CasService,
        backup: CasService,
        address: str = "cas",
        backup_address: str = "cas-backup",
        retry: Optional[RetryPolicy] = None,
        epochs: Optional[EpochService] = None,
    ) -> None:
        if primary.node is backup.node:
            raise RpcError("a CAS pair must span two nodes to survive one")
        self.network = network
        self.primary = primary
        self.backup = backup
        self.address = address
        self.backup_address = backup_address
        self.stats = CasPairStats()
        #: The instance currently serving the well-known address.
        self.active = primary
        #: Epoch authority (None = fencing off, the pre-fencing plane).
        self._epochs = epochs
        #: The active instance's leadership lease.
        self.lease: Optional[EpochLease] = None
        self._probe_client: Optional[RpcClient] = None

        # Shared trust root (see module docstring): certificates issued
        # by either instance verify against the one CA.
        backup.keys.ca = primary.keys.ca

        # The standby's replication endpoint (internal address).
        self._backup_server = RpcServer(network, backup_address, backup.node)
        self._backup_server.register("repl_policy", self._handle_repl_policy)
        self._backup_server.register("repl_audit", self._handle_repl_audit)
        self._backup_server.start()

        self._repl_client = RpcClient(
            network,
            f"cas-repl@{primary.node.node_id}",
            primary.node,
            retry=retry,
        )

        primary.replicator = self._replicate_op
        primary.audit.add_commit_hook(self._replicate_record)

        if epochs is not None:
            # Grant the founding lease and enroll every acceptor the
            # primary's writes flow through: the standby's replication
            # endpoint (require=True — it only ever serves a fenced
            # leader) and, when the pair shares one monotonic-counter
            # service, the counter's commit-point increment.
            self.lease = epochs.grant(CAS_PRIMARY_ROLE, holder=address)
            primary.set_lease(self.lease)
            self._repl_client.fence = self.lease
            self._backup_server.add_guard(
                epochs.make_guard(
                    CAS_PRIMARY_ROLE, name=backup_address, require=True
                )
            )
            if primary.counter is backup.counter:
                primary.counter.guard = epochs.make_guard(
                    CAS_PRIMARY_ROLE, name="hw-counter"
                )

        # The primary's public CAS API at the well-known address.
        self.primary_server = serve_cas(network, primary, address=address)
        self.backup_public_server: Optional[RpcServer] = None

    # -- primary-side replication ----------------------------------------

    def _quorum_call(self, method: str, payload: bytes) -> None:
        """Push one mutation to the standby; the ack completes the quorum
        (primary + standby = 2/2).  Raises RpcError when the standby is
        unreachable — an unreplicated mutation is not committed."""
        reply = self._repl_client.call(self.backup_address, method, payload)
        if reply != b"ok":
            raise RpcError(f"standby rejected {method}: {reply!r}")
        self.stats.quorum_acks += 1

    def _replicate_op(self, op: str, payload: dict) -> None:
        if op != "register_policy":
            raise RpcError(f"unknown replicated operation {op!r}")
        self._quorum_call("repl_policy", encoding.encode(payload))
        self.stats.ops_replicated += 1

    def _replicate_record(self, record) -> None:
        self._quorum_call(
            "repl_audit",
            encoding.encode(
                {
                    "owner": record.owner,
                    "path": record.path,
                    "version": record.version,
                    "digest": record.digest,
                }
            ),
        )
        self.stats.records_replicated += 1

    # -- standby-side apply ----------------------------------------------

    def _handle_repl_policy(self, payload: bytes, peer) -> bytes:
        body = encoding.decode(payload)
        self.backup.apply_replicated_policy(
            body["policy"], dict(body["secrets"]), body["fs_key"]
        )
        return b"ok"

    def _handle_repl_audit(self, payload: bytes, peer) -> bytes:
        body = encoding.decode(payload)
        self.backup.audit.commit(
            body["owner"], body["path"], body["version"], body["digest"]
        )
        return b"ok"

    # -- control-plane records ---------------------------------------------

    def put_control_record(self, key: str, value: bytes) -> None:
        """Write a control-plane record into *both* instances' databases.

        Epoch records take this administrative path, not the primary's
        replication stream: the epoch authority lives with the
        orchestrator (which has a channel to each instance), and a bump
        during failover — exactly when the record matters most — must
        not depend on primary→standby reachability.  Double-writing from
        the control plane keeps the registry durable on whichever
        replica survives.
        """
        self.primary.db.put(key, value)
        self.backup.db.put(key, value)
        self.stats.epochs_replicated += 1

    # -- failure + promotion ----------------------------------------------

    def fail_primary(self) -> None:
        """Crash the primary's public endpoint (chaos injection)."""
        self.primary_server.abort()
        # A dead primary stops replicating; the hook dies with it.
        self.primary.replicator = None

    def attach_probe(self, node: Node) -> None:
        """Probe the pair by RPC ping from ``node`` instead of by
        registration.  Registration-based probing cannot see chaos-plane
        partitions: a one-way-partitioned zombie primary stays
        registered while being unreachable, so the watchdog never fails
        over.  The ping client deliberately has **no retry policy** —
        one attempt, one verdict — because the watchdog's recurring
        probe events are the retry loop."""
        self._probe_client = RpcClient(
            self.network, f"cas-probe@{node.node_id}", node
        )

    def probe(self) -> bool:
        """Is the well-known CAS address serving (reachably)?"""
        if self._probe_client is None:
            return self.network.is_registered(self.address)
        try:
            return self._probe_client.call(self.address, "ping", b"") == b"ok"
        except RpcError:
            return False

    def promote(self) -> None:
        """Serve the standby at the well-known address (failover).

        Idempotent: promoting an already-active (or healthy) pair is a
        no-op, so the orchestrator's watchdog can call this
        unconditionally.

        With an epoch authority attached, promotion is **fence first**:
        the ``cas-primary`` epoch is bumped (advancing the standby's
        replication guard and the shared counter's guard) *before* the
        standby serves a single request, so there is no window in which
        both instances hold committable authority — anything the old
        primary still sends carries a dead epoch.  The address claim is
        a VIP flip: a zombie still registered at the well-known address
        on the wrong side of a partition is unregistered, exactly as a
        floating IP moves regardless of the old holder's opinion.
        """
        if self.active is self.backup:
            return
        if self.probe():
            return
        if self._epochs is not None:
            self.lease = self._epochs.grant(
                CAS_PRIMARY_ROLE, holder=self.backup_address
            )
            self.backup.set_lease(self.lease)
        if self.network.is_registered(self.address):
            # VIP flip (see docstring): reclaim the address from the
            # partitioned-but-alive previous holder.
            self.network.unregister(self.address)
        self.backup_public_server = serve_cas(
            self.network, self.backup, address=self.address
        )
        self.active = self.backup
        self.stats.failovers += 1


__all__ = ["CAS_PRIMARY_ROLE", "CasPairStats", "ReplicatedCasPair"]
