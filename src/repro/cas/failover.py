"""CAS high availability: primary/backup replication + failover.

CAS is the root of the paper's trust story — and therefore its single
point of failure: if the node running CAS dies, no enclave can be
provisioned and every freshness check stalls.  This module pairs two
CAS instances on *different* nodes:

- **Logical replication.**  Sealed blobs cannot cross nodes (the sealing
  key is derived from the CPU's fused root, §4.3), so the pair mirrors
  *operations*, not snapshots: every policy registration and every audit
  record is pushed to the standby over the simulated network, and the
  primary only treats a mutation as committed once the standby has
  acknowledged it (quorum 2/2).  The standby applies records through its
  own hash chain, so after any prefix of replication both heads agree.
- **Promotion.**  Failover re-registers the standby's public CAS server
  at the primary's well-known address.  Clients built on PR 2's retrying
  RPC plumbing (``RemoteCasClient``/``RemoteFreshnessTracker`` with a
  retry policy) see transport errors while the address is vacant, back
  off, and transparently reach the promoted standby — which serves the
  same policies, the same session fs-keys, and a byte-identical audit
  chain.
- **Shared trust root.**  The pair shares its CA identity (exchanged at
  pairing time over an attested channel in production), so certificates
  issued before the failover keep verifying after it.

The orchestrator supervises the pair like any service: a probe checks
the well-known address is served, and the recovery action is
:meth:`ReplicatedCasPair.promote`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cas.client import serve_cas
from repro.cas.service import CasService
from repro.cluster.network import Network
from repro.cluster.retry import RetryPolicy
from repro.cluster.rpc import RpcClient, RpcServer
from repro.crypto import encoding
from repro.errors import RpcError


@dataclass
class CasPairStats:
    """Replication/failover counters (surfaced via collect_metrics)."""

    ops_replicated: int = 0      # policy registrations mirrored
    records_replicated: int = 0  # audit records mirrored
    quorum_acks: int = 0         # standby acknowledgements received
    failovers: int = 0           # promotions performed


class ReplicatedCasPair:
    """Two CAS instances, one address, quorum-acked replication."""

    def __init__(
        self,
        network: Network,
        primary: CasService,
        backup: CasService,
        address: str = "cas",
        backup_address: str = "cas-backup",
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if primary.node is backup.node:
            raise RpcError("a CAS pair must span two nodes to survive one")
        self.network = network
        self.primary = primary
        self.backup = backup
        self.address = address
        self.backup_address = backup_address
        self.stats = CasPairStats()
        #: The instance currently serving the well-known address.
        self.active = primary

        # Shared trust root (see module docstring): certificates issued
        # by either instance verify against the one CA.
        backup.keys.ca = primary.keys.ca

        # The standby's replication endpoint (internal address).
        self._backup_server = RpcServer(network, backup_address, backup.node)
        self._backup_server.register("repl_policy", self._handle_repl_policy)
        self._backup_server.register("repl_audit", self._handle_repl_audit)
        self._backup_server.start()

        self._repl_client = RpcClient(
            network,
            f"cas-repl@{primary.node.node_id}",
            primary.node,
            retry=retry,
        )

        primary.replicator = self._replicate_op
        primary.audit.add_commit_hook(self._replicate_record)

        # The primary's public CAS API at the well-known address.
        self.primary_server = serve_cas(network, primary, address=address)
        self.backup_public_server: Optional[RpcServer] = None

    # -- primary-side replication ----------------------------------------

    def _quorum_call(self, method: str, payload: bytes) -> None:
        """Push one mutation to the standby; the ack completes the quorum
        (primary + standby = 2/2).  Raises RpcError when the standby is
        unreachable — an unreplicated mutation is not committed."""
        reply = self._repl_client.call(self.backup_address, method, payload)
        if reply != b"ok":
            raise RpcError(f"standby rejected {method}: {reply!r}")
        self.stats.quorum_acks += 1

    def _replicate_op(self, op: str, payload: dict) -> None:
        if op != "register_policy":
            raise RpcError(f"unknown replicated operation {op!r}")
        self._quorum_call("repl_policy", encoding.encode(payload))
        self.stats.ops_replicated += 1

    def _replicate_record(self, record) -> None:
        self._quorum_call(
            "repl_audit",
            encoding.encode(
                {
                    "owner": record.owner,
                    "path": record.path,
                    "version": record.version,
                    "digest": record.digest,
                }
            ),
        )
        self.stats.records_replicated += 1

    # -- standby-side apply ----------------------------------------------

    def _handle_repl_policy(self, payload: bytes, peer) -> bytes:
        body = encoding.decode(payload)
        self.backup.apply_replicated_policy(
            body["policy"], dict(body["secrets"]), body["fs_key"]
        )
        return b"ok"

    def _handle_repl_audit(self, payload: bytes, peer) -> bytes:
        body = encoding.decode(payload)
        self.backup.audit.commit(
            body["owner"], body["path"], body["version"], body["digest"]
        )
        return b"ok"

    # -- failure + promotion ----------------------------------------------

    def fail_primary(self) -> None:
        """Crash the primary's public endpoint (chaos injection)."""
        self.primary_server.abort()
        # A dead primary stops replicating; the hook dies with it.
        self.primary.replicator = None

    def probe(self) -> bool:
        """Is the well-known CAS address being served?"""
        return self.network.is_registered(self.address)

    def promote(self) -> None:
        """Serve the standby at the well-known address (failover).

        Idempotent: promoting an already-active pair is a no-op, so the
        orchestrator's watchdog can call this unconditionally.
        """
        if self.probe():
            return
        if self.active is self.backup:
            return
        self.backup_public_server = serve_cas(
            self.network, self.backup, address=self.address
        )
        self.active = self.backup
        self.stats.failovers += 1


__all__ = ["CasPairStats", "ReplicatedCasPair"]
