"""CAS: the Configuration and Remote Attestation Service (§3.3.2, §4.3).

CAS replaces the WAN-bound Intel Attestation Service with a service on
the local cluster, itself running inside an enclave.  It:

- verifies enclave quotes locally (<1 ms vs ~280 ms — Fig. 4),
- evaluates user-registered *policies* (which measurements may receive
  which secrets, whether simulation-mode quotes are acceptable),
- provisions secrets — file-system-shield keys, TLS identities generated
  inside CAS so "no human ever sees them" (§7.3), application config —
  encrypted to a key the attested enclave proved possession of (the
  X25519 public key bound into the quote's report data),
- stores everything in an encrypted embedded database protected against
  rollback by a hardware monotonic counter, and
- runs the freshness **audit service** that gives the file-system shield
  distributed rollback protection (§3.3.2).
"""

from repro.cas.secrets_db import HardwareCounter, SecretsDatabase, TwoSlotSealedStore
from repro.cas.policy import Policy, PolicyEngine
from repro.cas.audit import AuditCheckpoint, AuditRecord, FreshnessAuditService
from repro.cas.keys import KeyManager, ProvisionedIdentity
from repro.cas.service import CasService, ProvisionBundle
from repro.cas.client import CasClient, RemoteCasClient
from repro.cas.failover import CasPairStats, ReplicatedCasPair

__all__ = [
    "HardwareCounter",
    "SecretsDatabase",
    "TwoSlotSealedStore",
    "Policy",
    "PolicyEngine",
    "FreshnessAuditService",
    "AuditCheckpoint",
    "AuditRecord",
    "KeyManager",
    "ProvisionedIdentity",
    "CasService",
    "ProvisionBundle",
    "CasClient",
    "RemoteCasClient",
    "CasPairStats",
    "ReplicatedCasPair",
]
