"""Attestation policies: who may receive which secrets.

A :class:`Policy` is registered by the data owner (after *they* attest
CAS) and names the enclave measurements allowed into a session, the
secrets those enclaves receive, and whether debug (simulation-mode)
quotes are acceptable.  The measurement is the whole trust statement —
one flipped byte of code or configuration changes MRENCLAVE and the
policy no longer matches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.enclave.attestation import Report
from repro.errors import PolicyError


@dataclass(frozen=True)
class Policy:
    """One session policy."""

    session: str
    allowed_measurements: List[bytes]
    secret_names: List[str] = field(default_factory=list)
    accept_debug: bool = False
    max_members: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.allowed_measurements:
            raise PolicyError(
                f"policy {self.session!r} allows no measurements"
            )


class PolicyEngine:
    """Registry + evaluation of session policies."""

    def __init__(self) -> None:
        self._policies: Dict[str, Policy] = {}
        self._members: Dict[str, int] = {}

    def register(self, policy: Policy) -> None:
        if policy.session in self._policies:
            raise PolicyError(f"session {policy.session!r} already registered")
        self._policies[policy.session] = policy
        self._members[policy.session] = 0

    def get(self, session: str) -> Policy:
        if session not in self._policies:
            raise PolicyError(f"unknown session {session!r}")
        return self._policies[session]

    def sessions(self) -> List[str]:
        return sorted(self._policies)

    def evaluate(self, session: str, report: Report) -> Policy:
        """Admit a verified report into a session, or raise PolicyError."""
        policy = self.get(session)
        if report.measurement not in policy.allowed_measurements:
            raise PolicyError(
                f"measurement {report.measurement.hex()[:16]}… is not "
                f"allowed into session {session!r}"
            )
        if report.debug and not policy.accept_debug:
            raise PolicyError(
                f"session {session!r} requires hardware-mode enclaves "
                f"(debug quote rejected)"
            )
        if (
            policy.max_members is not None
            and self._members[session] >= policy.max_members
        ):
            raise PolicyError(
                f"session {session!r} is full "
                f"({policy.max_members} members)"
            )
        self._members[session] += 1
        return policy

    def members(self, session: str) -> int:
        return self._members.get(session, 0)
