"""Inception analogues (stand-ins for the 91 MB v3 and 163 MB v4)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

import repro.tensor as tf
from repro.tensor.graph import Graph, Tensor


def _inception_module(
    net: Tensor, filters: int, rng: np.random.Generator, name: str
) -> Tensor:
    """Parallel 1×1 / 3×3 / 5×5-ish / pool-projection branches, concatenated."""
    b1 = tf.layers.conv2d(net, filters, 1, activation="relu", name=f"{name}/b1x1", rng=rng)
    b2 = tf.layers.conv2d(net, filters, 1, activation="relu", name=f"{name}/b3_reduce", rng=rng)
    b2 = tf.layers.conv2d(b2, filters, 3, activation="relu", name=f"{name}/b3x3", rng=rng)
    b3 = tf.layers.conv2d(net, filters // 2, 1, activation="relu", name=f"{name}/b5_reduce", rng=rng)
    b3 = tf.layers.conv2d(b3, filters // 2, 3, activation="relu", name=f"{name}/b5a", rng=rng)
    b3 = tf.layers.conv2d(b3, filters // 2, 3, activation="relu", name=f"{name}/b5b", rng=rng)
    b4 = tf.layers.conv2d(net, filters // 2, 1, activation="relu", name=f"{name}/bpool_proj", rng=rng)
    return tf.concat([b1, b2, b3, b4], axis=3, name=f"{name}/concat")


def _inception_net(
    rng: np.random.Generator, modules_per_stage: int, base_filters: int, name: str
) -> Tuple[Graph, Tensor, Tensor]:
    graph = Graph()
    with graph.as_default():
        images = tf.placeholder("float32", (None, 32, 32, 3), name="images")
        net = tf.layers.conv2d(
            images, base_filters, 3, activation="relu", name=f"{name}/stem", rng=rng
        )
        for stage in range(2):
            for module in range(modules_per_stage):
                net = _inception_module(
                    net, base_filters * (stage + 1), rng,
                    name=f"{name}/s{stage}m{module}",
                )
            net = tf.layers.max_pool(net, 2, name=f"{name}/reduce{stage}")
        net = tf.layers.flatten(net, name=f"{name}/flat")
        net = tf.layers.dense(net, 64, activation="relu", name=f"{name}/fc", rng=rng)
        logits = tf.layers.dense(net, 10, name=f"{name}/logits", rng=rng)
    return graph, images, logits


def inception_v3_analogue(
    rng: np.random.Generator, name: str = "inception_v3"
) -> Tuple[Graph, Tensor, Tensor]:
    """Two stages of inception modules (stands in for Inception-v3)."""
    return _inception_net(rng, modules_per_stage=2, base_filters=16, name=name)


def inception_v4_analogue(
    rng: np.random.Generator, name: str = "inception_v4"
) -> Tuple[Graph, Tensor, Tensor]:
    """Deeper/wider variant (stands in for Inception-v4)."""
    return _inception_net(rng, modules_per_stage=3, base_filters=24, name=name)
