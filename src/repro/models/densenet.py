"""DenseNet analogue (stands in for the paper's 42 MB Densenet)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

import repro.tensor as tf
from repro.tensor.graph import Graph, Tensor


def _dense_block(
    net: Tensor, layers: int, growth: int, rng: np.random.Generator, name: str
) -> Tensor:
    """DenseNet block: each layer's output is concatenated to its input."""
    features: List[Tensor] = [net]
    for i in range(layers):
        x = tf.concat(features, axis=3, name=f"{name}/concat{i}") if len(features) > 1 else features[0]
        x = tf.layers.batch_norm(x, name=f"{name}/bn{i}")
        x = tf.relu(x, name=f"{name}/relu{i}")
        x = tf.layers.conv2d(
            x, growth, 3, activation=None, use_bias=False,
            name=f"{name}/conv{i}", rng=rng,
        )
        features.append(x)
    return tf.concat(features, axis=3, name=f"{name}/out")


def densenet_analogue(
    rng: np.random.Generator, name: str = "densenet"
) -> Tuple[Graph, Tensor, Tensor]:
    """Two dense blocks with a transition, CIFAR-shaped input."""
    graph = Graph()
    with graph.as_default():
        images = tf.placeholder("float32", (None, 32, 32, 3), name="images")
        net = tf.layers.conv2d(
            images, 16, 3, activation="relu", name=f"{name}/stem", rng=rng
        )
        net = _dense_block(net, layers=4, growth=12, rng=rng, name=f"{name}/block1")
        # Transition: 1x1 conv + pooling.
        net = tf.layers.conv2d(
            net, 32, 1, activation="relu", name=f"{name}/trans1", rng=rng
        )
        net = tf.layers.avg_pool(net, 2, name=f"{name}/pool1")
        net = _dense_block(net, layers=4, growth=12, rng=rng, name=f"{name}/block2")
        net = tf.layers.avg_pool(net, 2, name=f"{name}/pool2")
        net = tf.layers.flatten(net, name=f"{name}/flat")
        logits = tf.layers.dense(net, 10, name=f"{name}/logits", rng=rng)
    return graph, images, logits
