"""Model registry with declared (paper-scale) footprints.

Each :class:`ModelSpec` declares the real model's size, FLOPs, and node
count; :func:`build_model` builds the stand-in graph, probes its actual
footprint with one forward pass, and sets the graph's cost scales so the
execution engine charges for the declared figures.  This is the
substitution documented in DESIGN.md for the paper's pre-trained models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

import repro.tensor as tf
from repro._sim.units import MiB
from repro.errors import ConfigurationError
from repro.models.densenet import densenet_analogue
from repro.models.inception import inception_v3_analogue, inception_v4_analogue
from repro.models.mnist_net import mnist_cnn
from repro.tensor.graph import Graph, Tensor
from repro.tensor.lite import LiteConverter, LiteModel
from repro.tensor.variables import GLOBAL_VARIABLES

Builder = Callable[[np.random.Generator], Tuple[Graph, Tensor, Tensor]]


@dataclass(frozen=True)
class ModelSpec:
    """A zoo entry: builder plus the real model's declared footprint."""

    name: str
    builder: Builder
    declared_size_bytes: int
    declared_flops: float
    declared_ops: int
    declared_activation_bytes: int
    input_shape: Tuple[int, ...]
    description: str = ""


#: The paper's three classification models (§5.3) and the training net.
MODEL_ZOO: Dict[str, ModelSpec] = {
    "densenet": ModelSpec(
        name="densenet",
        builder=densenet_analogue,
        declared_size_bytes=int(42 * MiB),
        declared_flops=5.7e9,
        declared_ops=420,
        declared_activation_bytes=int(60 * MiB),
        input_shape=(32, 32, 3),
        description="DenseNet, 42 MB model file (Fig. 5a/6a)",
    ),
    "inception_v3": ModelSpec(
        name="inception_v3",
        builder=inception_v3_analogue,
        declared_size_bytes=int(91 * MiB),
        declared_flops=11.4e9,
        declared_ops=500,
        declared_activation_bytes=int(90 * MiB),
        input_shape=(32, 32, 3),
        description="Inception-v3, 91 MB model file (Fig. 5b/6b)",
    ),
    "inception_v4": ModelSpec(
        name="inception_v4",
        builder=inception_v4_analogue,
        declared_size_bytes=int(163 * MiB),
        declared_flops=24.6e9,
        declared_ops=750,
        declared_activation_bytes=int(180 * MiB),
        input_shape=(32, 32, 3),
        description="Inception-v4, 163 MB model file (Fig. 5c/6c)",
    ),
    "mnist_cnn": ModelSpec(
        name="mnist_cnn",
        builder=mnist_cnn,
        declared_size_bytes=int(2 * MiB),
        declared_flops=2.4e7,
        declared_ops=40,
        declared_activation_bytes=int(2 * MiB),
        input_shape=(28, 28, 1),
        description="MNIST CNN used for distributed training (Fig. 8)",
    ),
}


def get_spec(name: str) -> ModelSpec:
    if name not in MODEL_ZOO:
        raise ConfigurationError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
        )
    return MODEL_ZOO[name]


@dataclass
class BuiltModel:
    """A constructed, initialized, cost-calibrated model."""

    spec: ModelSpec
    graph: Graph
    input: Tensor
    logits: Tensor
    actual_weight_bytes: int
    actual_flops: int
    actual_ops: int

    def freeze(self) -> bytes:
        return tf.freeze_graph([self.logits], inputs=[self.input])

    def to_lite(self, name: Optional[str] = None) -> LiteModel:
        converter = LiteConverter(name or self.spec.name)
        return converter.convert(
            self.freeze(), declared_size=self.spec.declared_size_bytes
        )


def build_model(name: str, seed: int = 0) -> BuiltModel:
    """Build, initialize, probe, and cost-calibrate a zoo model."""
    spec = get_spec(name)
    rng = np.random.default_rng(seed)
    graph, inp, logits = spec.builder(rng)

    for var in graph.get_collection(GLOBAL_VARIABLES):
        var.initialize()
    actual_weight_bytes = sum(
        var.nbytes for var in graph.get_collection(GLOBAL_VARIABLES)
    )

    # Probe one batch-1 forward pass to measure actual FLOPs and ops.
    probe = tf.Session(graph=graph)
    dummy = np.zeros((1,) + spec.input_shape, dtype=np.float32)
    probe.run(logits, {inp: dummy})
    stats = probe.last_stats
    assert stats is not None

    graph.weight_scale = spec.declared_size_bytes / max(actual_weight_bytes, 1)
    graph.cost_scale = spec.declared_flops / max(stats.flops, 1)
    graph.op_scale = spec.declared_ops / max(stats.ops, 1)
    graph.activation_scale = spec.declared_activation_bytes / max(
        stats.activation_bytes, 1
    )

    return BuiltModel(
        spec=spec,
        graph=graph,
        input=inp,
        logits=logits,
        actual_weight_bytes=actual_weight_bytes,
        actual_flops=stats.flops,
        actual_ops=stats.ops,
    )


def pretrained_lite_model(name: str, seed: int = 0) -> LiteModel:
    """Build a zoo model and convert it to a Lite blob (\"pretrained\":
    deterministic random weights — the latency benchmarks treat the model
    as an opaque footprint, exactly as the paper does)."""
    return build_model(name, seed=seed).to_lite()
