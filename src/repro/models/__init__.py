"""Model zoo: stand-ins for the paper's benchmark models.

The paper classifies with pre-trained DenseNet (42 MB), Inception-v3
(91 MB), and Inception-v4 (163 MB) — §5.3 — and trains an MNIST network
(batch 100, lr 0.0005) — §5.4.  Offline we cannot ship those weights, so
each zoo entry is an architecturally-representative small network whose
*declared* footprint (bytes, FLOPs, op count) matches the real model;
the graph's cost scales make the execution engine charge for the real
thing while the numerics stay laptop-sized.
"""

from repro.models.zoo import (
    BuiltModel,
    ModelSpec,
    MODEL_ZOO,
    build_model,
    get_spec,
    pretrained_lite_model,
)
from repro.models.mnist_net import mnist_cnn, mnist_mlp
from repro.models.densenet import densenet_analogue
from repro.models.inception import inception_v3_analogue, inception_v4_analogue

__all__ = [
    "ModelSpec",
    "BuiltModel",
    "MODEL_ZOO",
    "build_model",
    "get_spec",
    "pretrained_lite_model",
    "mnist_cnn",
    "mnist_mlp",
    "densenet_analogue",
    "inception_v3_analogue",
    "inception_v4_analogue",
]
