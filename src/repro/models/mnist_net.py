"""MNIST networks for the distributed-training experiments (§5.4)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

import repro.tensor as tf
from repro.tensor.graph import Graph, Tensor


def mnist_cnn(rng: np.random.Generator, name: str = "mnist_cnn") -> Tuple[Graph, Tensor, Tensor]:
    """A small LeNet-style CNN: conv-pool ×2, dense, logits."""
    graph = Graph()
    with graph.as_default():
        images = tf.placeholder("float32", (None, 28, 28, 1), name="images")
        net = tf.layers.conv2d(images, 8, 3, activation="relu", name=f"{name}/c1", rng=rng)
        net = tf.layers.max_pool(net, 2, name=f"{name}/p1")
        net = tf.layers.conv2d(net, 16, 3, activation="relu", name=f"{name}/c2", rng=rng)
        net = tf.layers.max_pool(net, 2, name=f"{name}/p2")
        net = tf.layers.flatten(net, name=f"{name}/flat")
        net = tf.layers.dense(net, 64, activation="relu", name=f"{name}/fc1", rng=rng)
        logits = tf.layers.dense(net, 10, name=f"{name}/logits", rng=rng)
    return graph, images, logits


def mnist_mlp(
    rng: np.random.Generator, hidden: int = 128, name: str = "mnist_mlp"
) -> Tuple[Graph, Tensor, Tensor]:
    """A two-layer MLP (the classic TF-1.x distributed-training example)."""
    graph = Graph()
    with graph.as_default():
        images = tf.placeholder("float32", (None, 28, 28, 1), name="images")
        net = tf.layers.flatten(images, name=f"{name}/flat")
        net = tf.layers.dense(net, hidden, activation="relu", name=f"{name}/fc1", rng=rng)
        logits = tf.layers.dense(net, 10, name=f"{name}/logits", rng=rng)
    return graph, images, logits
