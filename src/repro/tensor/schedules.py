"""Learning-rate schedules and gradient clipping utilities."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.tensor.graph import Graph, Tensor, get_default_graph
from repro.tensor.ops import core as ops
from repro.tensor.variables import Variable


class ExponentialDecay:
    """``lr = initial * decay_rate ** (step / decay_steps)``.

    The step counter is a non-trainable variable bumped by
    :meth:`step_op`; optimizers accept :attr:`tensor` wherever a float
    learning rate is allowed.
    """

    def __init__(
        self,
        initial: float,
        decay_rate: float,
        decay_steps: int,
        graph: Optional[Graph] = None,
        name: str = "lr_schedule",
    ) -> None:
        if initial <= 0 or decay_rate <= 0 or decay_steps <= 0:
            raise GraphError(
                f"invalid schedule: initial={initial}, rate={decay_rate}, "
                f"steps={decay_steps}"
            )
        graph = graph or get_default_graph()
        with graph.as_default():
            self.step = Variable(
                lambda: np.zeros((), dtype=np.float32),
                (),
                name=f"{name}/step",
                trainable=False,
                graph=graph,
            )
            exponent = ops.div(
                self.step.tensor, ops.constant(float(decay_steps), graph=graph)
            )
            self.tensor = ops.mul(
                ops.constant(float(initial), graph=graph),
                ops.pow_(
                    ops.constant(float(decay_rate), graph=graph), exponent
                ),
                name=f"{name}/lr",
            )
            self._bump = self.step.assign_add(
                ops.constant(1.0, graph=graph), name=f"{name}/tick"
            )

    def step_op(self) -> Tensor:
        """Run once per training step to advance the schedule."""
        return self._bump


def global_norm(gradients: List[Tensor]) -> Tensor:
    """sqrt(sum of squared entries over all gradient tensors)."""
    if not gradients:
        raise GraphError("global_norm of nothing")
    total = None
    for grad in gradients:
        term = ops.reduce_sum(ops.square(grad))
        total = term if total is None else ops.add(total, term)
    return ops.sqrt(total, name="global_norm")


def clip_by_global_norm(
    gradients: List[Tensor], max_norm: float
) -> Tuple[List[Tensor], Tensor]:
    """Scale all gradients so their global norm is at most ``max_norm``.

    Returns ``(clipped gradients, the pre-clip norm tensor)`` — the same
    contract as ``tf.clip_by_global_norm``.
    """
    if max_norm <= 0:
        raise GraphError(f"max_norm must be positive: {max_norm}")
    norm = global_norm(gradients)
    graph = gradients[0].graph
    limit = ops.constant(float(max_norm), graph=graph)
    # factor = max_norm / max(norm, max_norm)  -> <= 1, no-op when small.
    denominator = ops.maximum(norm, limit)
    factor = ops.div(limit, denominator, name="clip_factor")
    clipped = [ops.mul(grad, factor) for grad in gradients]
    return clipped, norm
