"""Graph execution: the TF-1.x ``Session``.

``Session.run(fetches, feed_dict)`` evaluates exactly the subgraph the
fetches need, memoizing values per run, honouring control dependencies,
and feeding placeholders.  When an :class:`ExecutionEngine` is attached,
the run's aggregate work (scaled by the graph's ``cost_scale``) is
charged to the simulated clock — so the *same* session code measures
NATIVE, SIM, and HW latency in the benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.errors import GraphError
from repro.tensor.engine import ExecutionEngine, RunStats
from repro.tensor.graph import Graph, Operation, Tensor, get_default_graph
from repro.tensor.ops import flops_of

Fetch = Union[Tensor, Operation, str]

#: Op types whose outputs are persistent state, not per-run activations.
_STATE_OPS = frozenset({"variable", "const", "placeholder"})

#: Linear-algebra ops whose FLOPs a Slalom-style deployment can offload
#: to an untrusted GPU (§7.4).
_LINEAR_OPS = frozenset(
    {"matmul", "conv2d", "conv2d_grad_input", "conv2d_grad_filters"}
)


class Session:
    """Executes subgraphs, optionally charging an execution engine."""

    def __init__(
        self,
        graph: Optional[Graph] = None,
        engine: Optional[ExecutionEngine] = None,
        threads: int = 1,
    ) -> None:
        self.graph = graph or get_default_graph()
        self.engine = engine
        self.threads = threads
        self.last_stats: Optional[RunStats] = None

    # ------------------------------------------------------------------

    def run(
        self,
        fetches: Union[Fetch, Sequence[Fetch], Dict[str, Fetch]],
        feed_dict: Optional[Dict[Union[Tensor, str], Any]] = None,
    ) -> Any:
        """Evaluate ``fetches``; returns matching structure of numpy values."""
        feed = self._normalize_feed(feed_dict or {})
        values: Dict[str, Any] = dict(feed)
        executed: Dict[str, bool] = {}
        stats = RunStats()

        def eval_tensor(tensor: Tensor) -> Any:
            if tensor.name in values:
                return values[tensor.name]
            run_op(tensor.op)
            return values[tensor.name]

        def run_op(op: Operation) -> None:
            if executed.get(op.name):
                return
            for dep in op.control_inputs:
                run_op(dep)
            input_values = [eval_tensor(t) for t in op.inputs]
            # A fed tensor may satisfy this op's (sole) output even though
            # the op itself never runs (feeding intermediate tensors).
            if all(out.name in values for out in op.outputs):
                executed[op.name] = True
                return
            result = op.compute(*input_values)
            if len(op.outputs) == 1:
                outputs = [result]
            else:
                outputs = list(result)
                if len(outputs) != len(op.outputs):
                    raise GraphError(
                        f"op {op.name!r} produced {len(outputs)} values for "
                        f"{len(op.outputs)} outputs"
                    )
            for out, value in zip(op.outputs, outputs):
                values[out.name] = value
            executed[op.name] = True
            self._account(op, input_values, outputs, stats)

        try:
            result = self._eval_fetches(fetches, eval_tensor, run_op)
        finally:
            self.last_stats = stats
            if self.engine is not None:
                graph = self.graph
                charged = RunStats(
                    flops=int(stats.flops * graph.cost_scale),
                    ops=int(stats.ops * graph.op_scale),
                    weight_bytes=int(stats.weight_bytes * graph.weight_scale),
                    activation_bytes=int(
                        stats.activation_bytes * graph.activation_scale
                    ),
                    max_op_bytes=int(stats.max_op_bytes * graph.activation_scale),
                    linear_flops=int(stats.linear_flops * graph.cost_scale),
                )
                self.engine.charge_run(charged, threads=self.threads)
        return result

    # ------------------------------------------------------------------

    def _account(
        self,
        op: Operation,
        input_values: List[Any],
        outputs: List[Any],
        stats: RunStats,
    ) -> None:
        out0 = outputs[0]
        flops = flops_of(op, input_values, out0)
        out_bytes = sum(
            v.nbytes for v in outputs if isinstance(v, np.ndarray)
        )
        in_bytes = sum(
            v.nbytes for v in input_values if isinstance(v, np.ndarray)
        )
        if op.op_type == "variable":
            stats.weight_bytes += out0.nbytes
            stats.ops += 1
        elif op.op_type == "const":
            # Frozen models carry their weights as constants; they are
            # persistent read-only data exactly like variables.
            if isinstance(out0, np.ndarray):
                stats.weight_bytes += out0.nbytes
            stats.ops += 1
        elif op.op_type in _STATE_OPS:
            stats.ops += 1
        else:
            stats.merge_op(
                flops=flops,
                activation_bytes=out_bytes,
                op_bytes=in_bytes + out_bytes,
                linear=op.op_type in _LINEAR_OPS,
            )

    def _normalize_feed(
        self, feed_dict: Dict[Union[Tensor, str], Any]
    ) -> Dict[str, Any]:
        feed: Dict[str, Any] = {}
        for key, value in feed_dict.items():
            tensor = self.graph.get_tensor(key) if isinstance(key, str) else key
            array = np.asarray(value)
            if array.dtype == np.float64 and tensor.dtype == "float32":
                array = array.astype(np.float32)
            self._check_feed_shape(tensor, array)
            feed[tensor.name] = array
        return feed

    @staticmethod
    def _check_feed_shape(tensor: Tensor, array: np.ndarray) -> None:
        if len(array.shape) != len(tensor.shape):
            raise GraphError(
                f"feed for {tensor.name!r} has rank {len(array.shape)}, "
                f"expected {len(tensor.shape)}"
            )
        for actual, declared in zip(array.shape, tensor.shape):
            if declared is not None and actual != declared:
                raise GraphError(
                    f"feed for {tensor.name!r} has shape {array.shape}, "
                    f"declared {tensor.shape}"
                )

    def _eval_fetches(self, fetches: Any, eval_tensor, run_op) -> Any:
        if isinstance(fetches, (list, tuple)):
            return type(fetches)(
                self._eval_fetches(f, eval_tensor, run_op) for f in fetches
            )
        if isinstance(fetches, dict):
            return {
                k: self._eval_fetches(v, eval_tensor, run_op)
                for k, v in fetches.items()
            }
        if isinstance(fetches, str):
            fetches = self.graph.get_tensor(fetches)
        if isinstance(fetches, Operation):
            run_op(fetches)
            return None
        if isinstance(fetches, Tensor):
            return eval_tensor(fetches)
        raise GraphError(f"cannot fetch object of type {type(fetches).__name__}")

    # ------------------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass
