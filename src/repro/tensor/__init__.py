"""A from-scratch TensorFlow-1.x-style dataflow framework.

The paper runs *unmodified TensorFlow applications*; this package is the
TensorFlow stand-in the reproduction protects.  It follows the TF 1.x
architecture the paper describes (§2.1): the user builds a static
directed graph of operations, then executes it in a session.  Training
uses reverse-mode autodiff that *builds a backward graph* (like
``tf.gradients``), so frozen inference graphs and training graphs are
the same kind of object and the checkpoint/freeze/convert pipeline of
§4.1 works exactly as in the paper.

Numerics are real numpy; execution time is charged to the simulated
clock by :mod:`repro.tensor.engine` using per-op FLOP counts, which is
how the same graph exhibits NATIVE/SIM/HW performance differences.

Public API (mirroring the TF 1.x names users know)::

    import repro.tensor as tf

    g = tf.Graph()
    with g.as_default():
        x = tf.placeholder("float32", (None, 784), name="x")
        logits = tf.layers.dense(x, 10, name="fc")
        loss = tf.losses.softmax_cross_entropy(labels, logits)
        train = tf.optimizers.GradientDescent(0.5).minimize(loss)
    with tf.Session(graph=g) as sess:
        sess.run(tf.global_variables_initializer(g))
        sess.run(train, feed_dict={x: batch, labels: y})
"""

from repro.tensor.graph import (
    Graph,
    Operation,
    Tensor,
    default_graph,
    get_default_graph,
)
from repro.tensor.ops import (
    add,
    argmax,
    cast,
    concat,
    constant,
    div,
    equal,
    exp,
    expand_dims,
    identity,
    log,
    matmul,
    maximum,
    mul,
    neg,
    pad,
    placeholder,
    pow_,
    reduce_max,
    reduce_mean,
    reduce_sum,
    relu,
    reshape,
    sigmoid,
    softmax,
    sqrt,
    square,
    stop_gradient,
    sub,
    tanh,
    transpose,
)
from repro.tensor import nn
from repro.tensor.ops.extra import (
    abs_,
    clip_by_value,
    leaky_relu,
    log_softmax,
    one_hot,
    slice_,
    softplus,
    squeeze,
)
from repro.tensor.variables import (
    Variable,
    global_variables_initializer,
    variable,
)
from repro.tensor.gradients import gradients
from repro.tensor.session import Session
from repro.tensor.engine import (
    ExecutionEngine,
    EngineProfile,
    FULL_TF_PROFILE,
    LITE_PROFILE,
)
from repro.tensor import initializers, layers, losses, metrics, optimizers
from repro.tensor.saver import (
    Saver,
    freeze_graph,
    export_graph,
    import_graph,
)

__all__ = [
    "Graph",
    "Operation",
    "Tensor",
    "default_graph",
    "get_default_graph",
    "constant",
    "placeholder",
    "variable",
    "Variable",
    "global_variables_initializer",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "square",
    "sqrt",
    "exp",
    "log",
    "pow_",
    "matmul",
    "reduce_sum",
    "reduce_mean",
    "reduce_max",
    "maximum",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "argmax",
    "equal",
    "cast",
    "reshape",
    "transpose",
    "concat",
    "pad",
    "expand_dims",
    "identity",
    "stop_gradient",
    "abs_",
    "leaky_relu",
    "softplus",
    "clip_by_value",
    "squeeze",
    "slice_",
    "log_softmax",
    "one_hot",
    "nn",
    "gradients",
    "Session",
    "ExecutionEngine",
    "EngineProfile",
    "FULL_TF_PROFILE",
    "LITE_PROFILE",
    "initializers",
    "layers",
    "losses",
    "metrics",
    "optimizers",
    "Saver",
    "freeze_graph",
    "export_graph",
    "import_graph",
]
