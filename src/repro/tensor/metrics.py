"""Evaluation metrics."""

from __future__ import annotations

from repro.tensor.graph import Tensor
from repro.tensor.ops import core as ops


def accuracy(labels: Tensor, logits: Tensor, name: str = "accuracy") -> Tensor:
    """Fraction of examples whose argmax prediction matches one-hot labels."""
    predicted = ops.argmax(logits, axis=-1)
    actual = ops.argmax(labels, axis=-1)
    correct = ops.cast(ops.equal(predicted, actual), "float32")
    return ops.reduce_mean(correct, name=name)


def top_k_accuracy(labels: Tensor, logits: Tensor, k: int, name="topk") -> Tensor:
    """Fraction of examples whose true class is in the top-k predictions."""
    import numpy as np

    from repro.tensor.ops.core import make_op

    def kernel(op, lab, log_):
        kk = op.attrs["k"]
        top = np.argsort(log_, axis=-1)[:, -kk:]
        actual = np.argmax(lab, axis=-1)
        hits = (top == actual[:, None]).any(axis=-1)
        return np.float32(hits.mean())

    return make_op(
        "top_k_accuracy", [labels, logits], (), "float32", kernel, name=name,
        attrs={"k": k},
    )
