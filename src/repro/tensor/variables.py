"""Variables: mutable graph state (weights, biases, counters).

TF-1.x semantics: a variable is a graph node whose value persists across
``Session.run`` calls.  Values live on the :class:`Variable` object (the
graph owns its state, sessions are stateless with respect to weights),
which is what lets checkpoints, freezing, and the parameter-server
protocol read/write weights directly.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

import numpy as np

from repro.errors import GraphError
from repro.tensor.graph import Graph, Operation, Shape, Tensor, get_default_graph
from repro.tensor.ops import register_flops, register_gradient
from repro.tensor.ops.core import make_op

TRAINABLE_VARIABLES = "trainable_variables"
GLOBAL_VARIABLES = "global_variables"


class Variable:
    """A named, mutable tensor with an initializer."""

    def __init__(
        self,
        initial_value_fn: Callable[[], np.ndarray],
        shape: Shape,
        dtype: str = "float32",
        name: str = "variable",
        trainable: bool = True,
        graph: Optional[Graph] = None,
    ) -> None:
        self.graph = graph or get_default_graph()
        self._initial_value_fn = initial_value_fn
        self._value: Optional[np.ndarray] = None
        self.trainable = trainable
        self.dtype = dtype

        def read(op: Operation) -> np.ndarray:
            if self._value is None:
                raise GraphError(
                    f"variable {op.name!r} read before initialization"
                )
            return self._value

        self.read_op = Operation(
            graph=self.graph,
            op_type="variable",
            name=name,
            inputs=[],
            attrs={"variable": self},
            output_shapes=[tuple(shape)],
            output_dtypes=[dtype],
            compute=read,
        )
        self.name = self.read_op.name
        self.graph.add_to_collection(GLOBAL_VARIABLES, self)
        if trainable:
            self.graph.add_to_collection(TRAINABLE_VARIABLES, self)

    @property
    def tensor(self) -> Tensor:
        """The read tensor of this variable."""
        return self.read_op.output

    @property
    def shape(self) -> Shape:
        return self.tensor.shape

    @property
    def initialized(self) -> bool:
        return self._value is not None

    @property
    def value(self) -> np.ndarray:
        if self._value is None:
            raise GraphError(f"variable {self.name!r} is not initialized")
        return self._value

    def initialize(self) -> None:
        value = np.asarray(self._initial_value_fn(), dtype=self.dtype)
        if tuple(value.shape) != tuple(self.shape):
            raise GraphError(
                f"initializer for {self.name!r} produced shape {value.shape}, "
                f"declared {self.shape}"
            )
        self._value = value

    def load(self, value: np.ndarray) -> None:
        """Directly set the value (checkpoint restore, PS updates)."""
        value = np.asarray(value, dtype=self.dtype)
        if tuple(value.shape) != tuple(self.shape):
            raise GraphError(
                f"cannot load shape {value.shape} into {self.name!r} "
                f"of shape {self.shape}"
            )
        self._value = value

    @property
    def nbytes(self) -> int:
        itemsize = np.dtype(self.dtype).itemsize
        n = 1
        for dim in self.shape:
            n *= dim if dim is not None else 1
        return n * itemsize

    # -- update ops ----------------------------------------------------

    def assign(self, value: Tensor, name: str = "assign") -> Tensor:
        def kernel(op: Operation, v: np.ndarray) -> np.ndarray:
            self._value = np.asarray(v, dtype=self.dtype)
            return self._value

        return make_op(
            "assign", [value], self.shape, self.dtype, kernel, name=name,
            attrs={"variable_name": self.name},
        )

    def assign_add(self, delta: Tensor, name: str = "assign_add") -> Tensor:
        def kernel(op: Operation, d: np.ndarray) -> np.ndarray:
            self._value = self.value + np.asarray(d, dtype=self.dtype)
            return self._value

        return make_op(
            "assign_add", [delta], self.shape, self.dtype, kernel, name=name,
            attrs={"variable_name": self.name},
        )

    def assign_sub(self, delta: Tensor, name: str = "assign_sub") -> Tensor:
        def kernel(op: Operation, d: np.ndarray) -> np.ndarray:
            self._value = self.value - np.asarray(d, dtype=self.dtype)
            return self._value

        return make_op(
            "assign_sub", [delta], self.shape, self.dtype, kernel, name=name,
            attrs={"variable_name": self.name},
        )

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, shape={self.shape}, dtype={self.dtype})"


def variable(
    initial_value: Any,
    name: str = "variable",
    trainable: bool = True,
    dtype: str = "float32",
    graph: Optional[Graph] = None,
) -> Variable:
    """Create a variable from a concrete initial value (array or callable)."""
    if callable(initial_value):
        fn = initial_value
        probe = np.asarray(fn())
        shape = tuple(probe.shape)

        def fn_cached() -> np.ndarray:
            return probe

        return Variable(fn_cached, shape, dtype=dtype, name=name, trainable=trainable, graph=graph)
    array = np.asarray(initial_value, dtype=dtype)
    return Variable(
        lambda: array, tuple(array.shape), dtype=dtype, name=name,
        trainable=trainable, graph=graph,
    )


@register_gradient("variable")
def _grad_variable(op: Operation, grad: Tensor) -> List[Optional[Tensor]]:
    return []  # variables have no inputs; gradients stop here


@register_flops("variable")
def _flops_variable(op, input_values, output_value):
    return 0


class _InitAllOp:
    """Group node that initializes every variable of a graph."""


def global_variables_initializer(graph: Optional[Graph] = None) -> Tensor:
    """An op that (re)initializes all variables in the graph."""
    graph = graph or get_default_graph()

    def kernel(op: Operation) -> int:
        count = 0
        for var in op.graph.get_collection(GLOBAL_VARIABLES):
            var.initialize()
            count += 1
        return count

    return make_op("init_all", [], (), "int64", kernel, name="init", graph=graph)


def trainable_variables(graph: Optional[Graph] = None) -> List[Variable]:
    graph = graph or get_default_graph()
    return graph.get_collection(TRAINABLE_VARIABLES)


def global_variables(graph: Optional[Graph] = None) -> List[Variable]:
    graph = graph or get_default_graph()
    return graph.get_collection(GLOBAL_VARIABLES)
