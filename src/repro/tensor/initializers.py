"""Weight initializers (deterministic, seeded via numpy Generators)."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

Initializer = Callable[[Sequence[int], np.random.Generator], np.ndarray]


def zeros() -> Initializer:
    def init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return np.zeros(shape, dtype=np.float32)

    return init


def ones() -> Initializer:
    def init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return np.ones(shape, dtype=np.float32)

    return init


def constant_fill(value: float) -> Initializer:
    def init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return np.full(shape, value, dtype=np.float32)

    return init


def random_normal(stddev: float = 0.05, mean: float = 0.0) -> Initializer:
    def init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(mean, stddev, size=shape).astype(np.float32)

    return init


def truncated_normal(stddev: float = 0.05) -> Initializer:
    """Normal samples with |x - mean| > 2*stddev resampled (TF semantics)."""

    def init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        samples = rng.normal(0.0, stddev, size=shape)
        bad = np.abs(samples) > 2 * stddev
        while bad.any():
            samples[bad] = rng.normal(0.0, stddev, size=int(bad.sum()))
            bad = np.abs(samples) > 2 * stddev
        return samples.astype(np.float32)

    return init


def _fan_in_out(shape: Sequence[int]) -> "tuple[int, int]":
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:  # kh, kw, cin, cout
        receptive = shape[0] * shape[1]
        return receptive * shape[2], receptive * shape[3]
    n = int(np.prod(shape[:-1])) if len(shape) > 1 else shape[0]
    return n, shape[-1]


def glorot_uniform() -> Initializer:
    def init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = _fan_in_out(shape)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape).astype(np.float32)

    return init


def he_normal() -> Initializer:
    def init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = _fan_in_out(shape)
        return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape).astype(np.float32)

    return init
