"""Canonical (de)serialization of numpy arrays and array dicts.

Shared by checkpoints, the parameter-server protocol, and CAS records:
one byte-exact representation so signatures and MACs are stable.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.crypto import encoding
from repro.errors import CheckpointError


def encode_array(array: np.ndarray) -> Dict[str, Any]:
    """Array -> canonical-encodable dict."""
    array = np.ascontiguousarray(array)
    return {
        "__ndarray__": True,
        "dtype": str(array.dtype),
        "shape": [int(d) for d in array.shape],
        "data": array.tobytes(),
    }


def decode_array(obj: Dict[str, Any]) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    try:
        return (
            np.frombuffer(obj["data"], dtype=obj["dtype"])
            .reshape(obj["shape"])
            .copy()
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError("malformed serialized array") from exc


def encode_array_dict(arrays: Dict[str, np.ndarray]) -> bytes:
    """Named arrays -> one canonical blob (PS weight/gradient messages)."""
    return encoding.encode({name: encode_array(a) for name, a in arrays.items()})


def decode_array_dict(data: bytes) -> Dict[str, np.ndarray]:
    payload = encoding.decode(data)
    if not isinstance(payload, dict):
        raise CheckpointError("array dict blob must decode to a dict")
    return {name: decode_array(obj) for name, obj in payload.items()}
