"""Math and array operations (kernels, shapes, gradients, FLOP counts)."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError, ShapeError
from repro.tensor.graph import Graph, Operation, Shape, Tensor, get_default_graph


def _numel(shape: Sequence[Optional[int]]) -> int:
    n = 1
    for dim in shape:
        n *= dim if dim is not None else 1
    return n


def broadcast_shape(a: Shape, b: Shape) -> Shape:
    """Numpy broadcasting over static shapes; None is compatible with all."""
    result: List[Optional[int]] = []
    for da, db in zip(_pad_shape(a, len(b)), _pad_shape(b, len(a))):
        if da is None or db is None:
            result.append(None if (da is None and db is None) else (da if db in (1, None) else db))
        elif da == db:
            result.append(da)
        elif da == 1:
            result.append(db)
        elif db == 1:
            result.append(da)
        else:
            raise ShapeError(f"cannot broadcast shapes {a} and {b}")
    return tuple(result)


def _pad_shape(shape: Shape, to_rank: int) -> Shape:
    if len(shape) >= to_rank:
        return shape
    return (1,) * (to_rank - len(shape)) + tuple(shape)


def make_op(
    op_type: str,
    inputs: Sequence[Tensor],
    output_shape: Shape,
    output_dtype: str,
    compute,
    name: Optional[str] = None,
    attrs: Optional[dict] = None,
    graph: Optional[Graph] = None,
) -> Tensor:
    """Create a single-output operation and return its tensor."""
    if graph is None:
        graph = inputs[0].graph if inputs else get_default_graph()
    op = Operation(
        graph=graph,
        op_type=op_type,
        name=name or op_type,
        inputs=inputs,
        attrs=attrs or {},
        output_shapes=[output_shape],
        output_dtypes=[output_dtype],
        compute=compute,
    )
    return op.output


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------


def constant(
    value: Any,
    dtype: Optional[str] = None,
    name: str = "const",
    graph: Optional[Graph] = None,
) -> Tensor:
    """A compile-time constant embedded in the graph."""
    array = np.asarray(value)
    if dtype is not None:
        array = array.astype(dtype)
    elif array.dtype == np.float64:
        array = array.astype(np.float32)
    return make_op(
        "const",
        [],
        tuple(array.shape),
        str(array.dtype),
        lambda op: op.attrs["value"],
        name=name,
        attrs={"value": array},
        graph=graph,
    )


def placeholder(
    dtype: str,
    shape: Shape,
    name: str = "placeholder",
    graph: Optional[Graph] = None,
) -> Tensor:
    """A graph input that must be fed at ``Session.run`` time."""

    def _must_feed(op: Operation) -> Any:
        raise GraphError(f"placeholder {op.name!r} was not fed")

    return make_op(
        "placeholder",
        [],
        tuple(shape),
        dtype,
        _must_feed,
        name=name,
        attrs={"dtype": dtype, "shape": tuple(shape)},
        graph=graph,
    )


# ---------------------------------------------------------------------------
# Elementwise unary
# ---------------------------------------------------------------------------


def _unary(op_type: str, x: Tensor, kernel, name=None, dtype=None) -> Tensor:
    return make_op(
        op_type,
        [x],
        x.shape,
        dtype or x.dtype,
        lambda op, value: kernel(value),
        name=name,
    )


def identity(x: Tensor, name: str = "identity") -> Tensor:
    return _unary("identity", x, lambda v: v, name=name)


def stop_gradient(x: Tensor, name: str = "stop_gradient") -> Tensor:
    """Identity in the forward pass; blocks gradient flow backward."""
    return _unary("stop_gradient", x, lambda v: v, name=name)


def neg(x: Tensor, name: str = "neg") -> Tensor:
    return _unary("neg", x, np.negative, name=name)


def square(x: Tensor, name: str = "square") -> Tensor:
    return _unary("square", x, np.square, name=name)


def sqrt(x: Tensor, name: str = "sqrt") -> Tensor:
    return _unary("sqrt", x, np.sqrt, name=name)


def exp(x: Tensor, name: str = "exp") -> Tensor:
    return _unary("exp", x, np.exp, name=name)


def log(x: Tensor, name: str = "log") -> Tensor:
    return _unary("log", x, np.log, name=name)


def relu(x: Tensor, name: str = "relu") -> Tensor:
    return _unary("relu", x, lambda v: np.maximum(v, 0), name=name)


def sigmoid(x: Tensor, name: str = "sigmoid") -> Tensor:
    return _unary(
        "sigmoid", x, lambda v: 1.0 / (1.0 + np.exp(-v)), name=name
    )


def tanh(x: Tensor, name: str = "tanh") -> Tensor:
    return _unary("tanh", x, np.tanh, name=name)


def cast(x: Tensor, dtype: str, name: str = "cast") -> Tensor:
    return make_op(
        "cast",
        [x],
        x.shape,
        dtype,
        lambda op, v: np.asarray(v).astype(op.attrs["dtype"]),
        name=name,
        attrs={"dtype": dtype},
    )


# ---------------------------------------------------------------------------
# Elementwise binary (broadcasting)
# ---------------------------------------------------------------------------


def _binary(op_type: str, a: Tensor, b: Tensor, kernel, name=None, dtype=None) -> Tensor:
    return make_op(
        op_type,
        [a, b],
        broadcast_shape(a.shape, b.shape),
        dtype or a.dtype,
        lambda op, va, vb: kernel(va, vb),
        name=name,
    )


def add(a: Tensor, b: Tensor, name: str = "add") -> Tensor:
    return _binary("add", a, b, np.add, name=name)


def sub(a: Tensor, b: Tensor, name: str = "sub") -> Tensor:
    return _binary("sub", a, b, np.subtract, name=name)


def mul(a: Tensor, b: Tensor, name: str = "mul") -> Tensor:
    return _binary("mul", a, b, np.multiply, name=name)


def div(a: Tensor, b: Tensor, name: str = "div") -> Tensor:
    return _binary("div", a, b, np.divide, name=name)


def pow_(a: Tensor, b: Tensor, name: str = "pow") -> Tensor:
    return _binary("pow", a, b, np.power, name=name)


def maximum(a: Tensor, b: Tensor, name: str = "maximum") -> Tensor:
    return _binary("maximum", a, b, np.maximum, name=name)


def minimum(a: Tensor, b: Tensor, name: str = "minimum") -> Tensor:
    return _binary("minimum", a, b, np.minimum, name=name)


def equal(a: Tensor, b: Tensor, name: str = "equal") -> Tensor:
    return _binary("equal", a, b, np.equal, name=name, dtype="bool")


def greater(a: Tensor, b: Tensor, name: str = "greater") -> Tensor:
    return _binary("greater", a, b, np.greater, name=name, dtype="bool")


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------


def matmul(a: Tensor, b: Tensor, name: str = "matmul") -> Tensor:
    if a.rank != 2 or b.rank != 2:
        raise ShapeError(f"matmul expects rank-2 tensors, got {a.shape} @ {b.shape}")
    if a.shape[1] is not None and b.shape[0] is not None and a.shape[1] != b.shape[0]:
        raise ShapeError(f"matmul inner dims disagree: {a.shape} @ {b.shape}")
    return make_op(
        "matmul",
        [a, b],
        (a.shape[0], b.shape[1]),
        a.dtype,
        lambda op, va, vb: va @ vb,
        name=name,
    )


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------


def _reduction(op_type, x, kernel, axis, keepdims, name) -> Tensor:
    if axis is None:
        out_shape: Shape = () if not keepdims else (1,) * x.rank
    else:
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        axes = tuple(a % x.rank for a in axes)
        dims = list(x.shape)
        for a in sorted(axes, reverse=True):
            if keepdims:
                dims[a] = 1
            else:
                del dims[a]
        out_shape = tuple(dims)
    return make_op(
        op_type,
        [x],
        out_shape,
        x.dtype,
        lambda op, v: kernel(
            v, axis=op.attrs["axis"], keepdims=op.attrs["keepdims"]
        ),
        name=name,
        attrs={"axis": axis if axis is None or isinstance(axis, int) else tuple(axis), "keepdims": keepdims},
    )


def reduce_sum(x: Tensor, axis=None, keepdims: bool = False, name="reduce_sum") -> Tensor:
    return _reduction("reduce_sum", x, np.sum, axis, keepdims, name)


def reduce_mean(x: Tensor, axis=None, keepdims: bool = False, name="reduce_mean") -> Tensor:
    return _reduction("reduce_mean", x, np.mean, axis, keepdims, name)


def reduce_max(x: Tensor, axis=None, keepdims: bool = False, name="reduce_max") -> Tensor:
    return _reduction("reduce_max", x, np.max, axis, keepdims, name)


def argmax(x: Tensor, axis: int = -1, name: str = "argmax") -> Tensor:
    axis = axis % x.rank
    out_shape = tuple(d for i, d in enumerate(x.shape) if i != axis)
    return make_op(
        "argmax",
        [x],
        out_shape,
        "int64",
        lambda op, v: np.argmax(v, axis=op.attrs["axis"]),
        name=name,
        attrs={"axis": axis},
    )


def softmax(x: Tensor, name: str = "softmax") -> Tensor:
    """Numerically stable softmax over the last axis."""

    def kernel(op: Operation, v: np.ndarray) -> np.ndarray:
        shifted = v - np.max(v, axis=-1, keepdims=True)
        e = np.exp(shifted)
        return e / np.sum(e, axis=-1, keepdims=True)

    return make_op("softmax", [x], x.shape, x.dtype, kernel, name=name)


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------


def reshape(x: Tensor, shape: Sequence[Optional[int]], name="reshape") -> Tensor:
    target = tuple(shape)

    def kernel(op: Operation, v: np.ndarray) -> np.ndarray:
        concrete = [(-1 if d is None else d) for d in op.attrs["shape"]]
        if concrete.count(-1) > 1:
            # Keep the batch dimension, infer the rest from the value.
            concrete = [v.shape[0]] + [
                (-1 if d == -1 else d) for d in concrete[1:]
            ]
        return np.reshape(v, concrete)

    out_shape = tuple(None if d in (None, -1) else d for d in target)
    return make_op(
        "reshape", [x], out_shape, x.dtype, kernel, name=name, attrs={"shape": target}
    )


def transpose(x: Tensor, perm: Sequence[int], name="transpose") -> Tensor:
    perm = tuple(perm)
    if sorted(perm) != list(range(x.rank)):
        raise ShapeError(f"invalid permutation {perm} for rank {x.rank}")
    out_shape = tuple(x.shape[p] for p in perm)
    return make_op(
        "transpose",
        [x],
        out_shape,
        x.dtype,
        lambda op, v: np.transpose(v, op.attrs["perm"]),
        name=name,
        attrs={"perm": perm},
    )


def concat(tensors: Sequence[Tensor], axis: int, name="concat") -> Tensor:
    if not tensors:
        raise GraphError("concat of zero tensors")
    rank = tensors[0].rank
    axis = axis % rank
    dims: List[Optional[int]] = list(tensors[0].shape)
    total = 0
    for t in tensors:
        if t.rank != rank:
            raise ShapeError("concat inputs must share rank")
        if t.shape[axis] is None:
            total = None  # type: ignore[assignment]
        if total is not None:
            total += t.shape[axis]
    dims[axis] = total
    return make_op(
        "concat",
        list(tensors),
        tuple(dims),
        tensors[0].dtype,
        lambda op, *values: np.concatenate(values, axis=op.attrs["axis"]),
        name=name,
        attrs={"axis": axis},
    )


def pad(x: Tensor, paddings: Sequence[Tuple[int, int]], name="pad") -> Tensor:
    paddings = tuple((int(a), int(b)) for a, b in paddings)
    if len(paddings) != x.rank:
        raise ShapeError(f"pad needs {x.rank} (before, after) pairs")
    out_shape = tuple(
        None if d is None else d + before + after
        for d, (before, after) in zip(x.shape, paddings)
    )
    return make_op(
        "pad",
        [x],
        out_shape,
        x.dtype,
        lambda op, v: np.pad(v, op.attrs["paddings"]),
        name=name,
        attrs={"paddings": paddings},
    )


def expand_dims(x: Tensor, axis: int, name="expand_dims") -> Tensor:
    axis = axis % (x.rank + 1)
    out_shape = x.shape[:axis] + (1,) + x.shape[axis:]
    return make_op(
        "expand_dims",
        [x],
        out_shape,
        x.dtype,
        lambda op, v: np.expand_dims(v, op.attrs["axis"]),
        name=name,
        attrs={"axis": axis},
    )


def tile(x: Tensor, multiples: Sequence[int], name="tile") -> Tensor:
    multiples = tuple(int(m) for m in multiples)
    if len(multiples) != x.rank:
        raise ShapeError(f"tile needs {x.rank} multiples")
    out_shape = tuple(
        None if d is None else d * m for d, m in zip(x.shape, multiples)
    )
    return make_op(
        "tile",
        [x],
        out_shape,
        x.dtype,
        lambda op, v: np.tile(v, op.attrs["multiples"]),
        name=name,
        attrs={"multiples": multiples},
    )


# ---------------------------------------------------------------------------
# Gradient helper ops (dedicated kernels keep backward graphs small)
# ---------------------------------------------------------------------------


def unbroadcast_to(grad: Tensor, ref: Tensor, name="unbroadcast") -> Tensor:
    """Sum ``grad`` down to the (runtime) shape of ``ref``."""

    def kernel(op: Operation, g: np.ndarray, ref_value: np.ndarray) -> np.ndarray:
        g = np.asarray(g)
        target = np.asarray(ref_value).shape
        while g.ndim > len(target):
            g = g.sum(axis=0)
        for axis, dim in enumerate(target):
            if dim == 1 and g.shape[axis] != 1:
                g = g.sum(axis=axis, keepdims=True)
        return g.reshape(target)

    return make_op("unbroadcast", [grad, ref], ref.shape, grad.dtype, kernel, name=name)


def _relu_grad(grad: Tensor, x: Tensor) -> Tensor:
    return make_op(
        "relu_grad",
        [grad, x],
        x.shape,
        grad.dtype,
        lambda op, g, v: g * (v > 0),
        name="relu_grad",
    )


def _reduce_sum_grad(grad: Tensor, x: Tensor, axis, keepdims) -> Tensor:
    def kernel(op: Operation, g: np.ndarray, v: np.ndarray) -> np.ndarray:
        g = np.asarray(g)
        ax = op.attrs["axis"]
        if ax is not None and not op.attrs["keepdims"]:
            axes = (ax,) if isinstance(ax, int) else tuple(ax)
            for a in sorted(a % v.ndim for a in axes):
                g = np.expand_dims(g, a)
        return np.broadcast_to(g, v.shape).astype(v.dtype, copy=False)

    return make_op(
        "reduce_sum_grad",
        [grad, x],
        x.shape,
        grad.dtype,
        kernel,
        name="reduce_sum_grad",
        attrs={"axis": axis, "keepdims": keepdims},
    )


def _reduce_mean_grad(grad: Tensor, x: Tensor, axis, keepdims) -> Tensor:
    def kernel(op: Operation, g: np.ndarray, v: np.ndarray) -> np.ndarray:
        g = np.asarray(g)
        ax = op.attrs["axis"]
        if ax is None:
            count = v.size
        else:
            axes = (ax,) if isinstance(ax, int) else tuple(ax)
            count = 1
            for a in axes:
                count *= v.shape[a % v.ndim]
            if not op.attrs["keepdims"]:
                for a in sorted(a % v.ndim for a in axes):
                    g = np.expand_dims(g, a)
        return (np.broadcast_to(g, v.shape) / count).astype(v.dtype, copy=False)

    return make_op(
        "reduce_mean_grad",
        [grad, x],
        x.shape,
        grad.dtype,
        kernel,
        name="reduce_mean_grad",
        attrs={"axis": axis, "keepdims": keepdims},
    )


def _reduce_max_grad(grad: Tensor, x: Tensor, y: Tensor, axis, keepdims) -> Tensor:
    def kernel(op, g, v, out):
        g = np.asarray(g)
        out = np.asarray(out)
        ax = op.attrs["axis"]
        if ax is not None and not op.attrs["keepdims"]:
            axes = (ax,) if isinstance(ax, int) else tuple(ax)
            for a in sorted(a % v.ndim for a in axes):
                g = np.expand_dims(g, a)
                out = np.expand_dims(out, a)
        mask = (v == out).astype(v.dtype)
        return mask * np.broadcast_to(g, v.shape)

    return make_op(
        "reduce_max_grad",
        [grad, x, y],
        x.shape,
        grad.dtype,
        kernel,
        name="reduce_max_grad",
        attrs={"axis": axis, "keepdims": keepdims},
    )


def _mask_grad(grad: Tensor, a: Tensor, b: Tensor, side: str, kind: str) -> Tensor:
    """Gradient helper for maximum/minimum: route grad to the winner."""

    def kernel(op, g, va, vb):
        if op.attrs["side"] == "a":
            mask = (va >= vb) if op.attrs["kind"] == "max" else (va <= vb)
        else:
            mask = (vb > va) if op.attrs["kind"] == "max" else (vb < va)
        return g * mask

    return make_op(
        "minmax_mask_grad",
        [grad, a, b],
        broadcast_shape(a.shape, b.shape),
        grad.dtype,
        kernel,
        name="minmax_mask_grad",
        attrs={"side": side, "kind": kind},
    )


def _concat_grad(grad: Tensor, op: Operation, index: int) -> Tensor:
    """Slice the gradient of a concat back out for input ``index``."""

    def kernel(grad_op: Operation, g: np.ndarray, *originals: np.ndarray) -> np.ndarray:
        axis = grad_op.attrs["axis"]
        idx = grad_op.attrs["index"]
        offset = sum(o.shape[axis] for o in originals[:idx])
        size = originals[idx].shape[axis]
        slicer = [slice(None)] * g.ndim
        slicer[axis] = slice(offset, offset + size)
        return g[tuple(slicer)]

    return make_op(
        "concat_grad",
        [grad] + list(op.inputs),
        op.inputs[index].shape,
        grad.dtype,
        kernel,
        name="concat_grad",
        attrs={"axis": op.attrs["axis"], "index": index},
    )


def _pad_grad(grad: Tensor, op: Operation) -> Tensor:
    def kernel(grad_op: Operation, g: np.ndarray) -> np.ndarray:
        slicer = tuple(
            slice(before, g.shape[i] - after)
            for i, (before, after) in enumerate(grad_op.attrs["paddings"])
        )
        return g[slicer]

    return make_op(
        "pad_grad",
        [grad],
        op.inputs[0].shape,
        grad.dtype,
        kernel,
        name="pad_grad",
        attrs={"paddings": op.attrs["paddings"]},
    )


def _reshape_like(grad: Tensor, ref: Tensor) -> Tensor:
    return make_op(
        "reshape_like",
        [grad, ref],
        ref.shape,
        grad.dtype,
        lambda op, g, v: np.reshape(g, np.asarray(v).shape),
        name="reshape_like",
    )


def _tile_grad(grad: Tensor, op: Operation) -> Tensor:
    def kernel(grad_op: Operation, g: np.ndarray, v: np.ndarray) -> np.ndarray:
        multiples = grad_op.attrs["multiples"]
        out = g
        for axis, m in enumerate(multiples):
            if m > 1:
                shape = list(out.shape)
                shape[axis: axis + 1] = [m, v.shape[axis]]
                out = out.reshape(shape).sum(axis=axis)
        return out

    return make_op(
        "tile_grad",
        [grad, op.inputs[0]],
        op.inputs[0].shape,
        grad.dtype,
        kernel,
        name="tile_grad",
        attrs={"multiples": op.attrs["multiples"]},
    )


# ---------------------------------------------------------------------------
# Gradient registrations
# ---------------------------------------------------------------------------

from repro.tensor.ops import register_flops, register_gradient  # noqa: E402


def _ub(grad: Tensor, ref: Tensor) -> Tensor:
    """Unbroadcast unless the static shapes already match exactly."""
    if grad.shape == ref.shape and None not in grad.shape:
        return grad
    return unbroadcast_to(grad, ref)


@register_gradient("identity")
def _grad_identity(op, grad):
    return [grad]


@register_gradient("stop_gradient")
def _grad_stop(op, grad):
    return [None]


@register_gradient("neg")
def _grad_neg(op, grad):
    return [neg(grad)]


@register_gradient("square")
def _grad_square(op, grad):
    x = op.inputs[0]
    return [mul(grad, mul(constant(2.0, graph=op.graph), x))]


@register_gradient("sqrt")
def _grad_sqrt(op, grad):
    y = op.outputs[0]
    return [div(mul(constant(0.5, graph=op.graph), grad), y)]


@register_gradient("exp")
def _grad_exp(op, grad):
    return [mul(grad, op.outputs[0])]


@register_gradient("log")
def _grad_log(op, grad):
    return [div(grad, op.inputs[0])]


@register_gradient("relu")
def _grad_relu(op, grad):
    return [_relu_grad(grad, op.inputs[0])]


@register_gradient("sigmoid")
def _grad_sigmoid(op, grad):
    y = op.outputs[0]
    one = constant(1.0, graph=op.graph)
    return [mul(grad, mul(y, sub(one, y)))]


@register_gradient("tanh")
def _grad_tanh(op, grad):
    y = op.outputs[0]
    one = constant(1.0, graph=op.graph)
    return [mul(grad, sub(one, square(y)))]


@register_gradient("cast")
def _grad_cast(op, grad):
    src = op.inputs[0].dtype
    if src.startswith("float"):
        return [cast(grad, src)]
    return [None]


@register_gradient("add")
def _grad_add(op, grad):
    a, b = op.inputs
    return [_ub(grad, a), _ub(grad, b)]


@register_gradient("sub")
def _grad_sub(op, grad):
    a, b = op.inputs
    return [_ub(grad, a), _ub(neg(grad), b)]


@register_gradient("mul")
def _grad_mul(op, grad):
    a, b = op.inputs
    return [_ub(mul(grad, b), a), _ub(mul(grad, a), b)]


@register_gradient("div")
def _grad_div(op, grad):
    a, b = op.inputs
    ga = div(grad, b)
    gb = neg(div(mul(grad, a), square(b)))
    return [_ub(ga, a), _ub(gb, b)]


@register_gradient("pow")
def _grad_pow(op, grad):
    a, b = op.inputs
    y = op.outputs[0]
    ga = mul(grad, mul(b, div(y, a)))
    gb = mul(grad, mul(y, log(a)))
    return [_ub(ga, a), _ub(gb, b)]


@register_gradient("maximum")
def _grad_maximum(op, grad):
    a, b = op.inputs
    return [
        _ub(_mask_grad(grad, a, b, "a", "max"), a),
        _ub(_mask_grad(grad, a, b, "b", "max"), b),
    ]


@register_gradient("minimum")
def _grad_minimum(op, grad):
    a, b = op.inputs
    return [
        _ub(_mask_grad(grad, a, b, "a", "min"), a),
        _ub(_mask_grad(grad, a, b, "b", "min"), b),
    ]


@register_gradient("matmul")
def _grad_matmul(op, grad):
    a, b = op.inputs
    ga = matmul(grad, transpose(b, (1, 0)))
    gb = matmul(transpose(a, (1, 0)), grad)
    return [ga, gb]


@register_gradient("reduce_sum")
def _grad_reduce_sum(op, grad):
    return [_reduce_sum_grad(grad, op.inputs[0], op.attrs["axis"], op.attrs["keepdims"])]


@register_gradient("reduce_mean")
def _grad_reduce_mean(op, grad):
    return [
        _reduce_mean_grad(grad, op.inputs[0], op.attrs["axis"], op.attrs["keepdims"])
    ]


@register_gradient("reduce_max")
def _grad_reduce_max(op, grad):
    return [
        _reduce_max_grad(
            grad, op.inputs[0], op.outputs[0], op.attrs["axis"], op.attrs["keepdims"]
        )
    ]


@register_gradient("softmax")
def _grad_softmax(op, grad):
    y = op.outputs[0]
    gy = mul(grad, y)
    summed = reduce_sum(gy, axis=-1, keepdims=True)
    return [sub(gy, mul(y, summed))]


@register_gradient("reshape")
def _grad_reshape(op, grad):
    return [_reshape_like(grad, op.inputs[0])]


@register_gradient("expand_dims")
def _grad_expand_dims(op, grad):
    return [_reshape_like(grad, op.inputs[0])]


@register_gradient("transpose")
def _grad_transpose(op, grad):
    perm = op.attrs["perm"]
    inverse = tuple(int(np.argsort(perm)[i]) for i in range(len(perm)))
    return [transpose(grad, inverse)]


@register_gradient("concat")
def _grad_concat(op, grad):
    return [_concat_grad(grad, op, i) for i in range(len(op.inputs))]


@register_gradient("pad")
def _grad_pad(op, grad):
    return [_pad_grad(grad, op)]


@register_gradient("tile")
def _grad_tile(op, grad):
    return [_tile_grad(grad, op)]


# ---------------------------------------------------------------------------
# FLOP counters (defaults to one per output element; override the rest)
# ---------------------------------------------------------------------------

_TRANSCENDENTAL_WEIGHT = 8  # exp/log/tanh/sigmoid cost several FLOPs each


@register_flops("matmul")
def _flops_matmul(op, input_values, output_value):
    a, b = input_values
    return 2 * a.shape[0] * a.shape[1] * b.shape[1]


@register_flops("exp")
def _flops_exp(op, input_values, output_value):
    return _TRANSCENDENTAL_WEIGHT * output_value.size


@register_flops("log")
def _flops_log(op, input_values, output_value):
    return _TRANSCENDENTAL_WEIGHT * output_value.size


@register_flops("tanh")
def _flops_tanh(op, input_values, output_value):
    return _TRANSCENDENTAL_WEIGHT * output_value.size


@register_flops("sigmoid")
def _flops_sigmoid(op, input_values, output_value):
    return _TRANSCENDENTAL_WEIGHT * output_value.size


@register_flops("softmax")
def _flops_softmax(op, input_values, output_value):
    return (_TRANSCENDENTAL_WEIGHT + 3) * output_value.size


@register_flops("reduce_sum")
def _flops_reduce(op, input_values, output_value):
    return input_values[0].size


@register_flops("reduce_mean")
def _flops_reduce_mean(op, input_values, output_value):
    return input_values[0].size


@register_flops("reduce_max")
def _flops_reduce_max(op, input_values, output_value):
    return input_values[0].size


@register_flops("const")
def _flops_const(op, input_values, output_value):
    return 0


@register_flops("placeholder")
def _flops_placeholder(op, input_values, output_value):
    return 0


@register_flops("identity")
def _flops_identity(op, input_values, output_value):
    return 0


@register_flops("stop_gradient")
def _flops_stop(op, input_values, output_value):
    return 0
