"""Additional operations commonly used by TensorFlow applications.

Kept separate from the core set for readability; registered into the
same gradient/FLOP registries and the saver's rebuilder table, and added
to the Lite op set, so they work across the whole freeze/convert/serve
pipeline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.tensor.graph import Tensor
from repro.tensor.ops import register_flops, register_gradient
from repro.tensor.ops.core import make_op


def abs_(x: Tensor, name: str = "abs") -> Tensor:
    return make_op("abs", [x], x.shape, x.dtype, lambda op, v: np.abs(v), name=name)


@register_gradient("abs")
def _grad_abs(op, grad):
    result = make_op(
        "abs_grad",
        [grad, op.inputs[0]],
        op.inputs[0].shape,
        grad.dtype,
        lambda gop, g, v: g * np.sign(v),
        name="abs_grad",
    )
    return [result]


def leaky_relu(x: Tensor, alpha: float = 0.2, name: str = "leaky_relu") -> Tensor:
    return make_op(
        "leaky_relu",
        [x],
        x.shape,
        x.dtype,
        lambda op, v: np.where(v > 0, v, op.attrs["alpha"] * v),
        name=name,
        attrs={"alpha": float(alpha)},
    )


@register_gradient("leaky_relu")
def _grad_leaky_relu(op, grad):
    result = make_op(
        "leaky_relu_grad",
        [grad, op.inputs[0]],
        op.inputs[0].shape,
        grad.dtype,
        lambda gop, g, v: g * np.where(v > 0, 1.0, gop.attrs["alpha"]).astype(g.dtype),
        name="leaky_relu_grad",
        attrs={"alpha": op.attrs["alpha"]},
    )
    return [result]


def softplus(x: Tensor, name: str = "softplus") -> Tensor:
    """log(1 + e^x), computed stably."""

    def kernel(op, v):
        return np.logaddexp(0.0, v).astype(v.dtype)

    return make_op("softplus", [x], x.shape, x.dtype, kernel, name=name)


@register_gradient("softplus")
def _grad_softplus(op, grad):
    result = make_op(
        "softplus_grad",
        [grad, op.inputs[0]],
        op.inputs[0].shape,
        grad.dtype,
        lambda gop, g, v: g / (1.0 + np.exp(-v)),
        name="softplus_grad",
    )
    return [result]


def clip_by_value(
    x: Tensor, minimum: float, maximum: float, name: str = "clip"
) -> Tensor:
    if minimum > maximum:
        raise ShapeError(f"clip bounds inverted: [{minimum}, {maximum}]")
    return make_op(
        "clip_by_value",
        [x],
        x.shape,
        x.dtype,
        lambda op, v: np.clip(v, op.attrs["minimum"], op.attrs["maximum"]),
        name=name,
        attrs={"minimum": float(minimum), "maximum": float(maximum)},
    )


@register_gradient("clip_by_value")
def _grad_clip(op, grad):
    result = make_op(
        "clip_grad",
        [grad, op.inputs[0]],
        op.inputs[0].shape,
        grad.dtype,
        lambda gop, g, v: g
        * ((v >= gop.attrs["minimum"]) & (v <= gop.attrs["maximum"])),
        name="clip_grad",
        attrs=dict(op.attrs),
    )
    return [result]


def squeeze(x: Tensor, axis: int, name: str = "squeeze") -> Tensor:
    axis = axis % x.rank
    if x.shape[axis] not in (1, None):
        raise ShapeError(
            f"cannot squeeze axis {axis} of size {x.shape[axis]}"
        )
    out_shape = x.shape[:axis] + x.shape[axis + 1:]
    return make_op(
        "squeeze",
        [x],
        out_shape,
        x.dtype,
        lambda op, v: np.squeeze(v, axis=op.attrs["axis"]),
        name=name,
        attrs={"axis": axis},
    )


@register_gradient("squeeze")
def _grad_squeeze(op, grad):
    from repro.tensor.ops.core import expand_dims

    return [expand_dims(grad, op.attrs["axis"])]


def slice_(
    x: Tensor,
    begin: Sequence[int],
    size: Sequence[int],
    name: str = "slice",
) -> Tensor:
    """Static slice (TF's ``tf.slice`` with concrete begin/size)."""
    begin = tuple(int(b) for b in begin)
    size = tuple(int(s) for s in size)
    if len(begin) != x.rank or len(size) != x.rank:
        raise ShapeError(
            f"slice begin/size must have rank {x.rank}"
        )
    for axis, (b, s, dim) in enumerate(zip(begin, size, x.shape)):
        if b < 0 or s <= 0:
            raise ShapeError(f"invalid slice on axis {axis}: begin {b}, size {s}")
        if dim is not None and b + s > dim:
            raise ShapeError(
                f"slice [{b}, {b + s}) exceeds axis {axis} of size {dim}"
            )

    def kernel(op, v):
        slicer = tuple(
            slice(b, b + s) for b, s in zip(op.attrs["begin"], op.attrs["size"])
        )
        return v[slicer]

    return make_op(
        "slice",
        [x],
        size,
        x.dtype,
        kernel,
        name=name,
        attrs={"begin": begin, "size": size},
    )


@register_gradient("slice")
def _grad_slice(op, grad):
    def kernel(gop, g, v):
        out = np.zeros_like(v)
        slicer = tuple(
            slice(b, b + s)
            for b, s in zip(gop.attrs["begin"], gop.attrs["size"])
        )
        out[slicer] = g
        return out

    result = make_op(
        "slice_grad",
        [grad, op.inputs[0]],
        op.inputs[0].shape,
        grad.dtype,
        kernel,
        name="slice_grad",
        attrs=dict(op.attrs),
    )
    return [result]


def log_softmax(x: Tensor, name: str = "log_softmax") -> Tensor:
    """Numerically stable log-softmax over the last axis."""

    def kernel(op, v):
        shifted = v - v.max(axis=-1, keepdims=True)
        return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))

    return make_op("log_softmax", [x], x.shape, x.dtype, kernel, name=name)


@register_gradient("log_softmax")
def _grad_log_softmax(op, grad):
    def kernel(gop, g, y):
        softmax = np.exp(y)
        return g - softmax * g.sum(axis=-1, keepdims=True)

    result = make_op(
        "log_softmax_grad",
        [grad, op.outputs[0]],
        op.inputs[0].shape,
        grad.dtype,
        kernel,
        name="log_softmax_grad",
    )
    return [result]


@register_flops("log_softmax")
def _flops_log_softmax(op, input_values, output_value):
    return 11 * output_value.size


def one_hot(indices: Tensor, depth: int, name: str = "one_hot") -> Tensor:
    """Integer class indices -> one-hot float32 rows (no gradient)."""
    if depth <= 0:
        raise ShapeError(f"one_hot depth must be positive: {depth}")
    out_shape = indices.shape + (depth,)
    return make_op(
        "one_hot",
        [indices],
        out_shape,
        "float32",
        lambda op, v: np.eye(op.attrs["depth"], dtype=np.float32)[
            np.asarray(v, dtype=np.int64)
        ],
        name=name,
        attrs={"depth": depth},
    )


# ---------------------------------------------------------------------------
# Saver rebuilders + Lite support
# ---------------------------------------------------------------------------

from repro.tensor import saver as _saver  # noqa: E402
from repro.tensor.lite import converter as _converter  # noqa: E402

_saver.REBUILDERS["abs"] = lambda name, attrs, inputs, graph: abs_(
    inputs[0], name=name
)
_saver.REBUILDERS["leaky_relu"] = lambda name, attrs, inputs, graph: leaky_relu(
    inputs[0], alpha=attrs["alpha"], name=name
)
_saver.REBUILDERS["softplus"] = lambda name, attrs, inputs, graph: softplus(
    inputs[0], name=name
)
_saver.REBUILDERS["clip_by_value"] = lambda name, attrs, inputs, graph: clip_by_value(
    inputs[0], attrs["minimum"], attrs["maximum"], name=name
)
_saver.REBUILDERS["squeeze"] = lambda name, attrs, inputs, graph: squeeze(
    inputs[0], attrs["axis"], name=name
)
_saver.REBUILDERS["slice"] = lambda name, attrs, inputs, graph: slice_(
    inputs[0], attrs["begin"], attrs["size"], name=name
)
_saver.REBUILDERS["log_softmax"] = lambda name, attrs, inputs, graph: log_softmax(
    inputs[0], name=name
)
_saver.REBUILDERS["one_hot"] = lambda name, attrs, inputs, graph: one_hot(
    inputs[0], attrs["depth"], name=name
)

_converter.LITE_SUPPORTED_OPS.update(
    {
        "abs",
        "leaky_relu",
        "softplus",
        "clip_by_value",
        "squeeze",
        "slice",
        "log_softmax",
        "one_hot",
    }
)
