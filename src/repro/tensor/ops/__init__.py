"""Operation registry and builders.

Every op type registers three things:

- a **kernel** (numpy forward function) attached to the Operation,
- a **gradient function** in :data:`GRADIENT_REGISTRY` that, given the
  op and the incoming gradient tensor, *builds backward graph nodes*
  (TF-1.x ``tf.gradients`` style),
- a **cost function** in :data:`FLOPS_REGISTRY` mapping concrete input/
  output arrays to FLOPs (the execution engine sums these per run).

``repro.tensor.ops.core`` registers the math/array ops; ``repro.tensor.nn``
registers the neural-network ops.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.errors import GraphError
from repro.tensor.graph import Graph, Operation, Tensor

#: op_type -> fn(op, grad_tensor) -> list of per-input gradient Tensors
#: (None for non-differentiable inputs).
GRADIENT_REGISTRY: Dict[str, Callable[[Operation, Tensor], List[Optional[Tensor]]]] = {}

#: op_type -> fn(op, input_values, output_value) -> flops (int).
FLOPS_REGISTRY: Dict[str, Callable[[Operation, List[Any], Any], int]] = {}


def register_gradient(op_type: str):
    """Decorator: register a gradient builder for ``op_type``."""

    def wrap(fn):
        if op_type in GRADIENT_REGISTRY:
            raise GraphError(f"gradient for {op_type!r} registered twice")
        GRADIENT_REGISTRY[op_type] = fn
        return fn

    return wrap


def register_flops(op_type: str):
    """Decorator: register a FLOP counter for ``op_type``."""

    def wrap(fn):
        FLOPS_REGISTRY[op_type] = fn
        return fn

    return wrap


def flops_of(op: Operation, input_values: List[Any], output_value: Any) -> int:
    """FLOPs of one executed op (default: one per output element)."""
    fn = FLOPS_REGISTRY.get(op.op_type)
    if fn is not None:
        return int(fn(op, input_values, output_value))
    if isinstance(output_value, np.ndarray):
        return int(output_value.size)
    return 1


def as_tensor(value: Any, graph: Optional[Graph] = None, name: str = "const") -> Tensor:
    """Coerce a python/numpy value to a constant Tensor (pass through
    existing tensors)."""
    if isinstance(value, Tensor):
        return value
    from repro.tensor.ops.core import constant

    return constant(value, name=name, graph=graph)


# Import op implementations for their registration side effects and
# re-export the public builders.
from repro.tensor.ops.core import (  # noqa: E402
    add,
    argmax,
    cast,
    concat,
    constant,
    div,
    equal,
    exp,
    expand_dims,
    greater,
    identity,
    log,
    make_op,
    matmul,
    maximum,
    minimum,
    mul,
    neg,
    pad,
    placeholder,
    pow_,
    reduce_max,
    reduce_mean,
    reduce_sum,
    relu,
    reshape,
    sigmoid,
    softmax,
    sqrt,
    square,
    stop_gradient,
    sub,
    tanh,
    tile,
    transpose,
    unbroadcast_to,
)

__all__ = [
    "GRADIENT_REGISTRY",
    "FLOPS_REGISTRY",
    "register_gradient",
    "register_flops",
    "flops_of",
    "as_tensor",
    "make_op",
    "constant",
    "placeholder",
    "identity",
    "stop_gradient",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "square",
    "sqrt",
    "exp",
    "log",
    "pow_",
    "matmul",
    "reduce_sum",
    "reduce_mean",
    "reduce_max",
    "maximum",
    "minimum",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "argmax",
    "equal",
    "greater",
    "cast",
    "reshape",
    "transpose",
    "concat",
    "pad",
    "expand_dims",
    "tile",
    "unbroadcast_to",
]
