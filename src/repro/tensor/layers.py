"""Layer builders: dense, conv2d, pooling, flatten, batch-norm, dropout.

Functional TF-1.x-style builders: each creates its variables (with a
caller-supplied numpy Generator for determinism) and returns the output
tensor of the layer subgraph.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ShapeError
from repro.tensor import initializers as init_mod
from repro.tensor import nn
from repro.tensor.graph import Tensor
from repro.tensor.ops import core as ops
from repro.tensor.variables import variable

_DEFAULT_RNG = np.random.default_rng(0)


def _rng_or_default(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else _DEFAULT_RNG


def dense(
    x: Tensor,
    units: int,
    activation: Optional[str] = None,
    use_bias: bool = True,
    kernel_initializer=None,
    name: str = "dense",
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Fully connected layer: ``activation(x @ W + b)``."""
    if x.rank != 2:
        raise ShapeError(f"dense expects rank-2 input, got {x.shape}")
    in_units = x.shape[1]
    if in_units is None:
        raise ShapeError("dense needs a static input width")
    rng = _rng_or_default(rng)
    kinit = kernel_initializer or init_mod.glorot_uniform()
    w = variable(kinit((in_units, units), rng), name=f"{name}/kernel")
    y = ops.matmul(x, w.tensor, name=f"{name}/matmul")
    if use_bias:
        b = variable(np.zeros(units, dtype=np.float32), name=f"{name}/bias")
        y = nn.bias_add(y, b.tensor, name=f"{name}/bias_add")
    return _activate(y, activation, name)


def conv2d(
    x: Tensor,
    filters: int,
    kernel_size: int = 3,
    stride: int = 1,
    padding: str = "SAME",
    activation: Optional[str] = None,
    use_bias: bool = True,
    kernel_initializer=None,
    name: str = "conv",
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Convolutional layer over NHWC input."""
    if x.rank != 4:
        raise ShapeError(f"conv2d expects NHWC input, got {x.shape}")
    in_channels = x.shape[3]
    if in_channels is None:
        raise ShapeError("conv2d needs static input channels")
    rng = _rng_or_default(rng)
    kinit = kernel_initializer or init_mod.he_normal()
    w = variable(
        kinit((kernel_size, kernel_size, in_channels, filters), rng),
        name=f"{name}/kernel",
    )
    y = nn.conv2d(x, w.tensor, stride=stride, padding=padding, name=f"{name}/conv")
    if use_bias:
        b = variable(np.zeros(filters, dtype=np.float32), name=f"{name}/bias")
        y = nn.bias_add(y, b.tensor, name=f"{name}/bias_add")
    return _activate(y, activation, name)


def max_pool(x: Tensor, window: int = 2, name: str = "pool") -> Tensor:
    return nn.max_pool(x, window=window, name=name)


def avg_pool(x: Tensor, window: int = 2, name: str = "avg_pool") -> Tensor:
    return nn.avg_pool(x, window=window, name=name)


def flatten(x: Tensor, name: str = "flatten") -> Tensor:
    """Collapse all non-batch dims."""
    static = 1
    for dim in x.shape[1:]:
        if dim is None:
            raise ShapeError(f"flatten needs static non-batch dims, got {x.shape}")
        static *= dim
    return ops.reshape(x, (None, static), name=name)


def dropout(x: Tensor, rate: float, seed: int = 0, name: str = "dropout") -> Tensor:
    return nn.dropout(x, rate, seed=seed, name=name)


def batch_norm(
    x: Tensor,
    epsilon: float = 1e-3,
    training: bool = False,
    momentum: float = 0.99,
    name: str = "bn",
) -> Tensor:
    """Batch normalization with learned scale/offset.

    - ``training=False`` (default): normalizes with stored *moving*
      statistics — the frozen-graph deployments the paper benchmarks.
    - ``training=True``: normalizes with the current batch's statistics
      (gradients flow through them) and registers moving-average update
      ops in the graph collection ``"update_ops"``; run those alongside
      the train op, as in TF-1.x:

          updates = graph.get_collection("update_ops")
          sess.run([train_op] + updates, feed)
    """
    channels = x.shape[-1]
    if channels is None:
        raise ShapeError("batch_norm needs static channel count")
    gamma = variable(np.ones(channels, dtype=np.float32), name=f"{name}/gamma")
    beta = variable(np.zeros(channels, dtype=np.float32), name=f"{name}/beta")
    moving_mean = variable(
        np.zeros(channels, dtype=np.float32), name=f"{name}/moving_mean",
        trainable=False,
    )
    moving_var = variable(
        np.ones(channels, dtype=np.float32), name=f"{name}/moving_var",
        trainable=False,
    )
    eps = ops.constant(epsilon, graph=x.graph, name=f"{name}/eps")

    if training:
        reduce_axes = tuple(range(x.rank - 1))
        batch_mean = ops.reduce_mean(x, axis=reduce_axes, name=f"{name}/batch_mean")
        centered = ops.sub(x, batch_mean, name=f"{name}/center")
        batch_var = ops.reduce_mean(
            ops.square(centered), axis=reduce_axes, name=f"{name}/batch_var"
        )
        mean_t, var_t = batch_mean, batch_var
        # Moving-statistic updates: m = momentum*m + (1-momentum)*batch.
        m = ops.constant(momentum, graph=x.graph)
        one_minus = ops.constant(1.0 - momentum, graph=x.graph)
        update_mean = moving_mean.assign(
            ops.add(
                ops.mul(m, moving_mean.tensor),
                ops.mul(one_minus, ops.stop_gradient(batch_mean)),
            ),
            name=f"{name}/update_mean",
        )
        update_var = moving_var.assign(
            ops.add(
                ops.mul(m, moving_var.tensor),
                ops.mul(one_minus, ops.stop_gradient(batch_var)),
            ),
            name=f"{name}/update_var",
        )
        x.graph.add_to_collection("update_ops", update_mean)
        x.graph.add_to_collection("update_ops", update_var)
        normalized = ops.div(
            centered,
            ops.sqrt(ops.add(var_t, eps), name=f"{name}/stddev"),
            name=f"{name}/normalize",
        )
    else:
        mean_t, var_t = moving_mean.tensor, moving_var.tensor
        normalized = ops.div(
            ops.sub(x, mean_t, name=f"{name}/center"),
            ops.sqrt(ops.add(var_t, eps), name=f"{name}/stddev"),
            name=f"{name}/normalize",
        )
    return ops.add(
        ops.mul(normalized, gamma.tensor, name=f"{name}/scale"),
        beta.tensor,
        name=f"{name}/shift",
    )


def _activate(y: Tensor, activation: Optional[str], name: str) -> Tensor:
    if activation is None or activation == "linear":
        return y
    if activation == "relu":
        return ops.relu(y, name=f"{name}/relu")
    if activation == "tanh":
        return ops.tanh(y, name=f"{name}/tanh")
    if activation == "sigmoid":
        return ops.sigmoid(y, name=f"{name}/sigmoid")
    if activation == "softmax":
        return ops.softmax(y, name=f"{name}/softmax")
    raise ShapeError(f"unknown activation {activation!r}")
