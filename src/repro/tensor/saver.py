"""Checkpoints, graph export/import, and graph freezing.

Mirrors the paper's §4.1 workflow: define a graph with the (rich) Python
API, export checkpoints, *freeze* the graph — fold trained variable
values into constants — and later import it elsewhere (the C++ API in
the paper, the Lite converter here).  Serialization uses the canonical
encoding so frozen models can be protected by the file-system shield and
measured into enclave images byte-exactly.

Import rebuilds operations through the public builders (a rebuilder
registry per op type), so only inference ops are importable — exactly
the subset a frozen graph may contain.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.crypto import encoding
from repro.errors import CheckpointError, GraphError
from repro.tensor import nn
from repro.tensor.graph import Graph, Operation, Tensor
from repro.tensor.ops import core as ops
from repro.tensor.variables import GLOBAL_VARIABLES, Variable

MAGIC = "securetf-graph-v1"
CHECKPOINT_MAGIC = "securetf-ckpt-v1"


# ---------------------------------------------------------------------------
# Value (de)serialization helpers
# ---------------------------------------------------------------------------


from repro.tensor.arrays import decode_array as _decode_array
from repro.tensor.arrays import encode_array as _encode_array


def _encode_attr(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return _encode_array(value)
    if isinstance(value, tuple):
        return ["__tuple__"] + [_encode_attr(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def _decode_attr(value: Any) -> Any:
    if isinstance(value, dict) and value.get("__ndarray__"):
        return _decode_array(value)
    if isinstance(value, list):
        if value and value[0] == "__tuple__":
            return tuple(_decode_attr(v) for v in value[1:])
        return [_decode_attr(v) for v in value]
    return value


# ---------------------------------------------------------------------------
# Rebuilder registry: op_type -> fn(name, attrs, inputs, graph) -> Tensor
# ---------------------------------------------------------------------------

Rebuilder = Callable[[str, Dict[str, Any], List[Tensor], Graph], Tensor]

REBUILDERS: Dict[str, Rebuilder] = {}


def _rebuilder(op_type: str):
    def wrap(fn: Rebuilder) -> Rebuilder:
        REBUILDERS[op_type] = fn
        return fn

    return wrap


@_rebuilder("const")
def _rb_const(name, attrs, inputs, graph):
    return ops.constant(attrs["value"], name=name, graph=graph)


@_rebuilder("placeholder")
def _rb_placeholder(name, attrs, inputs, graph):
    return ops.placeholder(attrs["dtype"], tuple(attrs["shape"]), name=name, graph=graph)


def _rb_unary(builder):
    def fn(name, attrs, inputs, graph):
        return builder(inputs[0], name=name)

    return fn


for _unary_type, _builder in [
    ("identity", ops.identity),
    ("stop_gradient", ops.stop_gradient),
    ("neg", ops.neg),
    ("square", ops.square),
    ("sqrt", ops.sqrt),
    ("exp", ops.exp),
    ("log", ops.log),
    ("relu", ops.relu),
    ("sigmoid", ops.sigmoid),
    ("tanh", ops.tanh),
    ("softmax", ops.softmax),
]:
    REBUILDERS[_unary_type] = _rb_unary(_builder)


def _rb_binary(builder):
    def fn(name, attrs, inputs, graph):
        return builder(inputs[0], inputs[1], name=name)

    return fn


for _binary_type, _builder in [
    ("add", ops.add),
    ("sub", ops.sub),
    ("mul", ops.mul),
    ("div", ops.div),
    ("pow", ops.pow_),
    ("maximum", ops.maximum),
    ("minimum", ops.minimum),
    ("equal", ops.equal),
    ("greater", ops.greater),
    ("matmul", ops.matmul),
]:
    REBUILDERS[_binary_type] = _rb_binary(_builder)


@_rebuilder("cast")
def _rb_cast(name, attrs, inputs, graph):
    return ops.cast(inputs[0], attrs["dtype"], name=name)


def _rb_reduction(builder):
    def fn(name, attrs, inputs, graph):
        return builder(
            inputs[0], axis=attrs["axis"], keepdims=attrs["keepdims"], name=name
        )

    return fn


REBUILDERS["reduce_sum"] = _rb_reduction(ops.reduce_sum)
REBUILDERS["reduce_mean"] = _rb_reduction(ops.reduce_mean)
REBUILDERS["reduce_max"] = _rb_reduction(ops.reduce_max)


@_rebuilder("argmax")
def _rb_argmax(name, attrs, inputs, graph):
    return ops.argmax(inputs[0], axis=attrs["axis"], name=name)


@_rebuilder("reshape")
def _rb_reshape(name, attrs, inputs, graph):
    return ops.reshape(inputs[0], tuple(attrs["shape"]), name=name)


@_rebuilder("transpose")
def _rb_transpose(name, attrs, inputs, graph):
    return ops.transpose(inputs[0], tuple(attrs["perm"]), name=name)


@_rebuilder("concat")
def _rb_concat(name, attrs, inputs, graph):
    return ops.concat(inputs, axis=attrs["axis"], name=name)


@_rebuilder("pad")
def _rb_pad(name, attrs, inputs, graph):
    return ops.pad(inputs[0], attrs["paddings"], name=name)


@_rebuilder("expand_dims")
def _rb_expand_dims(name, attrs, inputs, graph):
    return ops.expand_dims(inputs[0], attrs["axis"], name=name)


@_rebuilder("tile")
def _rb_tile(name, attrs, inputs, graph):
    return ops.tile(inputs[0], attrs["multiples"], name=name)


@_rebuilder("conv2d")
def _rb_conv2d(name, attrs, inputs, graph):
    return nn.conv2d(
        inputs[0], inputs[1], stride=attrs["stride"], padding=attrs["padding"],
        name=name,
    )


@_rebuilder("max_pool")
def _rb_max_pool(name, attrs, inputs, graph):
    return nn.max_pool(inputs[0], window=attrs["window"], name=name)


@_rebuilder("avg_pool")
def _rb_avg_pool(name, attrs, inputs, graph):
    return nn.avg_pool(inputs[0], window=attrs["window"], name=name)


@_rebuilder("bias_add")
def _rb_bias_add(name, attrs, inputs, graph):
    return nn.bias_add(inputs[0], inputs[1], name=name)


@_rebuilder("softmax_xent")
def _rb_softmax_xent(name, attrs, inputs, graph):
    return nn.softmax_cross_entropy_with_logits(inputs[0], inputs[1], name=name)


# ---------------------------------------------------------------------------
# Graph export / import
# ---------------------------------------------------------------------------


def _subgraph_ops(outputs: Sequence[Tensor]) -> List[Operation]:
    """Ops needed to produce ``outputs``, in topological order."""
    seen: Dict[int, Operation] = {}
    order: List[Operation] = []

    def visit(op: Operation) -> None:
        if id(op) in seen:
            return
        seen[id(op)] = op
        for inp in op.inputs:
            visit(inp.op)
        order.append(op)

    for out in outputs:
        visit(out.op)
    return order


def export_graph(
    outputs: Sequence[Tensor],
    inputs: Optional[Sequence[Tensor]] = None,
    scales: Optional[Dict[str, float]] = None,
) -> bytes:
    """Serialize the subgraph producing ``outputs`` (no variables allowed;
    freeze first)."""
    op_records = []
    for op in _subgraph_ops(outputs):
        if op.op_type == "variable":
            raise GraphError(
                f"graph contains unfrozen variable {op.name!r}; "
                f"use freeze_graph() before export"
            )
        if op.op_type not in REBUILDERS:
            raise GraphError(
                f"op type {op.op_type!r} ({op.name!r}) is not exportable"
            )
        op_records.append(
            {
                "name": op.name,
                "op_type": op.op_type,
                "inputs": [t.name for t in op.inputs],
                "attrs": {k: _encode_attr(v) for k, v in op.attrs.items()},
            }
        )
    graph = outputs[0].graph
    resolved_scales = scales or {
        "cost_scale": graph.cost_scale,
        "weight_scale": graph.weight_scale,
        "op_scale": graph.op_scale,
        "activation_scale": graph.activation_scale,
    }
    payload = {
        "magic": MAGIC,
        "ops": op_records,
        "outputs": [t.name for t in outputs],
        "inputs": [t.name for t in inputs] if inputs else [],
        "scales": {k: float(v) for k, v in resolved_scales.items()},
    }
    return encoding.encode(payload)


class ImportedGraph:
    """An imported frozen graph with named inputs and outputs."""

    def __init__(self, graph: Graph, inputs: List[Tensor], outputs: List[Tensor]):
        self.graph = graph
        self.inputs = inputs
        self.outputs = outputs


def import_graph(data: bytes) -> ImportedGraph:
    """Rebuild a graph serialized by :func:`export_graph`."""
    try:
        payload = encoding.decode(data)
    except Exception as exc:
        raise CheckpointError("malformed graph serialization") from exc
    if not isinstance(payload, dict) or payload.get("magic") != MAGIC:
        raise CheckpointError("not a secureTF graph blob")

    graph = Graph()
    scales = payload.get("scales", {})
    graph.cost_scale = float(scales.get("cost_scale", 1.0))
    graph.weight_scale = float(scales.get("weight_scale", 1.0))
    graph.op_scale = float(scales.get("op_scale", 1.0))
    graph.activation_scale = float(scales.get("activation_scale", 1.0))
    tensors: Dict[str, Tensor] = {}
    for record in payload["ops"]:
        op_type = record["op_type"]
        rebuilder = REBUILDERS.get(op_type)
        if rebuilder is None:
            raise CheckpointError(f"cannot import op type {op_type!r}")
        try:
            input_tensors = [tensors[name] for name in record["inputs"]]
        except KeyError as exc:
            raise CheckpointError(f"dangling input reference {exc}") from exc
        attrs = {k: _decode_attr(v) for k, v in record["attrs"].items()}
        out = rebuilder(record["name"], attrs, input_tensors, graph)
        tensors[f"{record['name']}:0"] = out

    def resolve(names: List[str]) -> List[Tensor]:
        resolved = []
        for name in names:
            if name not in tensors:
                raise CheckpointError(f"serialized graph references unknown {name!r}")
            resolved.append(tensors[name])
        return resolved

    return ImportedGraph(
        graph, resolve(payload.get("inputs", [])), resolve(payload["outputs"])
    )


def freeze_graph(
    outputs: Sequence[Tensor],
    inputs: Optional[Sequence[Tensor]] = None,
    scales: Optional[Dict[str, float]] = None,
) -> bytes:
    """Fold variable values into constants and export the frozen graph.

    Variables must be initialized (train first, or restore a checkpoint).
    """
    graph = outputs[0].graph
    frozen = Graph()
    frozen_tensors: Dict[str, Tensor] = {}

    for op in _subgraph_ops(outputs):
        if op.op_type == "variable":
            var: Variable = op.attrs["variable"]
            frozen_tensors[op.outputs[0].name] = ops.constant(
                var.value, name=op.name, graph=frozen
            )
            continue
        if op.op_type not in REBUILDERS:
            raise GraphError(
                f"op type {op.op_type!r} ({op.name!r}) cannot be frozen; "
                f"freeze only inference subgraphs"
            )
        rebuilder = REBUILDERS[op.op_type]
        input_tensors = [frozen_tensors[t.name] for t in op.inputs]
        attrs = {k: _decode_attr(_encode_attr(v)) for k, v in op.attrs.items()}
        out = rebuilder(op.name, attrs, input_tensors, frozen)
        frozen_tensors[op.outputs[0].name] = out

    frozen_outputs = [frozen_tensors[t.name] for t in outputs]
    frozen_inputs = [frozen_tensors[t.name] for t in inputs] if inputs else None
    resolved = scales or {
        "cost_scale": graph.cost_scale,
        "weight_scale": graph.weight_scale,
        "op_scale": graph.op_scale,
        "activation_scale": graph.activation_scale,
    }
    return export_graph(frozen_outputs, frozen_inputs, scales=resolved)


# ---------------------------------------------------------------------------
# Checkpoints
# ---------------------------------------------------------------------------


class Saver:
    """Saves and restores variable values (TF-1.x ``tf.train.Saver``)."""

    def __init__(self, graph: Optional[Graph] = None) -> None:
        self._graph = graph

    def _variables(self, graph: Optional[Graph]) -> List[Variable]:
        target = graph or self._graph
        if target is None:
            raise CheckpointError("Saver needs a graph")
        variables = target.get_collection(GLOBAL_VARIABLES)
        if not variables:
            raise CheckpointError("graph has no variables to checkpoint")
        return variables

    def to_bytes(self, graph: Optional[Graph] = None) -> bytes:
        """Serialize all initialized variables of the graph."""
        records = {}
        for var in self._variables(graph):
            if not var.initialized:
                raise CheckpointError(f"variable {var.name!r} is uninitialized")
            records[var.name] = _encode_array(var.value)
        return encoding.encode({"magic": CHECKPOINT_MAGIC, "variables": records})

    def restore(self, data: bytes, graph: Optional[Graph] = None) -> int:
        """Load a checkpoint into the graph's variables; returns count."""
        try:
            payload = encoding.decode(data)
        except Exception as exc:
            raise CheckpointError("malformed checkpoint") from exc
        if not isinstance(payload, dict) or payload.get("magic") != CHECKPOINT_MAGIC:
            raise CheckpointError("not a secureTF checkpoint")
        records = payload["variables"]
        restored = 0
        for var in self._variables(graph):
            if var.name not in records:
                raise CheckpointError(f"checkpoint is missing {var.name!r}")
            var.load(_decode_array(records[var.name]))
            restored += 1
        return restored
