"""Loss builders."""

from __future__ import annotations

from repro.tensor import nn
from repro.tensor.graph import Tensor
from repro.tensor.ops import core as ops


def softmax_cross_entropy(labels: Tensor, logits: Tensor, name="xent_loss") -> Tensor:
    """Mean softmax cross-entropy over the batch (one-hot labels)."""
    per_example = nn.softmax_cross_entropy_with_logits(labels, logits)
    return ops.reduce_mean(per_example, name=name)


def mean_squared_error(labels: Tensor, predictions: Tensor, name="mse_loss") -> Tensor:
    """Mean of squared residuals over all elements."""
    return ops.reduce_mean(ops.square(ops.sub(predictions, labels)), name=name)


def l2_regularization(variables, scale: float, name="l2_reg") -> Tensor:
    """``scale * sum(||v||²)`` over trainable variables."""
    if not variables:
        raise ValueError("l2_regularization needs at least one variable")
    total = None
    for var in variables:
        term = ops.reduce_sum(ops.square(var.tensor))
        total = term if total is None else ops.add(total, term)
    return ops.mul(ops.constant(scale, graph=total.graph), total, name=name)
