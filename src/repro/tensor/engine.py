"""The execution engine: turns executed graph work into simulated time.

A :class:`Session` (or Lite interpreter) executes real numpy kernels and
collects a :class:`RunStats` — FLOPs, unique weight bytes, activation
traffic, op count.  The engine charges the simulated clock through the
attached :class:`~repro.runtime.scone.SconeRuntime`:

- **compute**: FLOPs at the engine profile's per-core rate, divided by
  the scheduler's parallel speedup, scaled by the libc compute factor;
- **dispatch**: a per-op interpreter overhead (the full TensorFlow
  runtime dispatches through a much deeper stack than Lite's
  mobile-optimized interpreter — §2.1);
- **weights**: streamed once per run through the enclave memory manager
  (region ``weights``), paying MEE bandwidth and EPC faults in HW mode;
- **workspace**: activation traffic cycled over an arena region;
- **code**: each op touches a slice of the binary region *without* DRAM
  bandwidth cost (hot code lives in cache) but *with* EPC residency —
  this is the mechanism behind the paper's 71× TensorFlow-vs-Lite gap
  (§5.3 #4): an 87.4 MB binary cannot stay resident next to a 91 MB
  model in a 94 MB EPC, a 1.9 MB one can.

Graphs carry a ``cost_scale`` letting small-weight stand-in models
declare the FLOP/byte footprint of the paper's full-size models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro._sim.units import MiB
from repro.enclave.epc import DEFAULT_GRANULE_SIZE
from repro.errors import ConfigurationError
from repro.runtime.scone import SconeRuntime


@dataclass(frozen=True)
class EngineProfile:
    """Cost profile of a TensorFlow execution engine variant."""

    name: str
    flops_per_second: float
    binary_size: int
    dispatch_overhead: float  # seconds per executed op
    code_bytes_per_op: int    # hot code footprint touched per op
    #: Multiplier on EPC fault cost.  The granule model charges faults as
    #: sequential 4 KiB streams; an engine whose allocator and dispatch
    #: chase pointers across the whole heap (full TensorFlow) faults in a
    #: random 4 KiB pattern that is several times costlier per byte.
    thrash_factor: float = 1.0


#: Full TensorFlow 1.9 (the paper measures an 87.4 MB binary, §5.3 #4).
FULL_TF_PROFILE = EngineProfile(
    name="tensorflow",
    flops_per_second=9.0e9,
    binary_size=int(87.4 * MiB),
    dispatch_overhead=18e-6,
    code_bytes_per_op=int(8.0 * MiB),
    thrash_factor=4.0,
)

#: Full TensorFlow running *training* steps: large batched kernels with
#: mostly-sequential access (im2col + GEMM), so less pathological
#: thrashing than the op-at-a-time inference path, and a smaller hot-code
#: set (the training loop exercises few distinct kernels repeatedly).
FULL_TF_TRAINING_PROFILE = EngineProfile(
    name="tensorflow-training",
    flops_per_second=9.0e9,
    binary_size=int(87.4 * MiB),
    dispatch_overhead=18e-6,
    code_bytes_per_op=int(3.0 * MiB),
    thrash_factor=2.0,
)

#: TensorFlow Lite (1.9 MB binary, mobile-optimized interpreter).
LITE_PROFILE = EngineProfile(
    name="tensorflow-lite",
    flops_per_second=11.0e9,
    binary_size=int(1.9 * MiB),
    dispatch_overhead=2.5e-6,
    code_bytes_per_op=int(0.4 * MiB),
)


@dataclass(frozen=True)
class GpuProfile:
    """An untrusted GPU accelerator for Slalom-style outsourcing (§7.4).

    The paper discusses offloading *linear* operations (matmul, conv) to
    a GPU outside the enclave, Slalom-style: the enclave keeps the
    non-linear ops, streams layer inputs/outputs over PCIe, and verifies
    the GPU's linear algebra with Freivalds-type checks — preserving
    integrity while weakening confidentiality for the offloaded layers.
    """

    name: str = "untrusted-gpu"
    flops_per_second: float = 1.2e12  # effective fp32 throughput
    pcie_bandwidth: float = 12.0e9
    per_offload_overhead: float = 25e-6  # kernel launch + sync
    #: In-enclave verification cost as a fraction of the offloaded FLOPs
    #: (Freivalds checks are asymptotically cheaper than the multiply).
    verification_fraction: float = 0.02


DEFAULT_GPU_PROFILE = GpuProfile()


@dataclass
class RunStats:
    """Work performed by one ``Session.run`` / ``Interpreter.invoke``."""

    flops: int = 0
    ops: int = 0
    weight_bytes: int = 0
    activation_bytes: int = 0
    max_op_bytes: int = 0
    #: FLOPs spent in linear ops (matmul/conv) — offloadable to a GPU.
    linear_flops: int = 0

    def merge_op(
        self,
        flops: int,
        activation_bytes: int,
        op_bytes: int,
        linear: bool = False,
    ) -> None:
        self.flops += flops
        self.ops += 1
        self.activation_bytes += activation_bytes
        self.max_op_bytes = max(self.max_op_bytes, op_bytes)
        if linear:
            self.linear_flops += flops


@dataclass
class EngineTotals:
    """Cumulative accounting across runs (benchmark breakdowns)."""

    runs: int = 0
    compute_time: float = 0.0
    dispatch_time: float = 0.0
    memory_time: float = 0.0
    epc_faults: int = 0


class ExecutionEngine:
    """Charges one runtime's clock for executed graph work."""

    def __init__(
        self,
        runtime: SconeRuntime,
        profile: EngineProfile,
        threads: int = 1,
    ) -> None:
        if threads < 1:
            raise ConfigurationError(f"thread count must be >= 1, got {threads}")
        if runtime.config.binary_size != profile.binary_size:
            raise ConfigurationError(
                f"runtime binary region is {runtime.config.binary_size} bytes "
                f"but profile {profile.name!r} declares {profile.binary_size}; "
                f"build the RuntimeConfig from the engine profile"
            )
        self.runtime = runtime
        self.profile = profile
        self.threads = threads
        self.totals = EngineTotals()
        self._region_sizes: Dict[str, int] = {}
        self._cursors: Dict[str, int] = {}
        #: When set, linear FLOPs are outsourced to this untrusted GPU
        #: (Slalom-style, §7.4) instead of running in the enclave.
        self.gpu_profile: Optional[GpuProfile] = None
        #: Planned activation-arena size per thread.  The Lite interpreter
        #: sets this from the converter's arena plan (Lite reuses buffers
        #: aggressively); when unset, the engine falls back to a
        #: no-buffer-reuse estimate, which is how full TensorFlow behaves.
        self.arena_hint: Optional[int] = None

    # ------------------------------------------------------------------

    def _ensure_region(self, name: str, size: int, kind: str) -> None:
        """Allocate (or grow) a data region in the runtime's memory."""
        if size <= 0:
            return
        current = self._region_sizes.get(name)
        if current is not None and current >= size:
            return
        if current is not None:
            self.runtime.memory.free(name)
        self.runtime.memory.alloc(name, size, kind=kind)
        self._region_sizes[name] = size

    def charge_run(self, stats: RunStats, threads: Optional[int] = None) -> None:
        """Convert one run's stats into simulated time on the clock."""
        threads = threads or self.threads
        runtime = self.runtime
        clock = runtime.clock
        self.totals.runs += 1

        # Compute + dispatch.  HW mode pays the MEE compute penalty even
        # when fully EPC-resident.  With a GPU attached, linear FLOPs run
        # on the accelerator while the enclave verifies and handles the
        # non-linear remainder (Slalom-style outsourcing, §7.4).
        before = clock.now
        gpu = self.gpu_profile
        enclave_flops = stats.flops
        if gpu is not None and stats.linear_flops > 0:
            offloaded = min(stats.linear_flops, stats.flops)
            enclave_flops = stats.flops - offloaded
            enclave_flops += int(offloaded * gpu.verification_fraction)
            transfers = 2 * stats.activation_bytes  # layer I/O over PCIe
            gpu_time = (
                offloaded / gpu.flops_per_second
                + transfers / gpu.pcie_bandwidth
                + max(stats.ops // 2, 1) * gpu.per_offload_overhead
            )
            clock.advance(gpu_time)
        single_thread = (
            enclave_flops / self.profile.flops_per_second
            + stats.ops * self.profile.dispatch_overhead
        ) * runtime.compute_factor
        if runtime.memory.encrypted:
            single_thread *= runtime.cost_model.enclave_compute_factor
        runtime.scheduler.run_parallel(single_thread, threads)
        self.totals.compute_time += clock.now - before

        # Memory traffic.  Per run:
        # - weights stream through once (region "weights"),
        # - activations cycle through a per-thread arena ("workspace"):
        #   the Lite interpreter plans a tight arena (arena_hint); full
        #   TensorFlow keeps every intermediate live,
        # - each op walks its hot code in the binary and its libc/libOS —
        #   no DRAM bandwidth (cache-hot) but full EPC residency cost.
        #
        # Crucially the four streams are INTERLEAVED in slices, as real
        # per-op execution interleaves them: a big binary (full TF) or a
        # big libOS (Graphene) then continuously evicts model pages —
        # which is the mechanism behind the paper's 71× TF-vs-Lite gap
        # and the growing Graphene gap in Fig. 5.
        before = clock.now
        faults = 0
        weight_bytes = stats.weight_bytes
        if self.gpu_profile is not None and stats.linear_flops > 0:
            # Linear-layer weights are resident on the GPU; only the
            # (small) non-linear parameters stay inside the enclave.
            weight_bytes = max(weight_bytes // 10, 1)
        if weight_bytes > 0:
            self._ensure_region("weights", weight_bytes, "data")
        if stats.activation_bytes > 0:
            if self.arena_hint is not None:
                # Planned arena (Lite): each intra-op worker thread gets
                # its own scratch arena.
                arena = self.arena_hint * threads
            else:
                # Full TF: intermediates stay live; extra threads add
                # modest per-thread scratch on top of the shared buffers.
                base = max(stats.activation_bytes // 2, stats.max_op_bytes)
                arena = int(base * (1.0 + 0.15 * (threads - 1)))
            self._ensure_region("workspace", max(arena, 1), "heap")

        code_traffic = stats.ops * min(
            self.profile.code_bytes_per_op, self.profile.binary_size
        )
        libc_traffic = stats.ops * min(
            runtime.libc.hot_bytes_per_op, runtime.libc.binary_size
        )
        streams = []
        if weight_bytes > 0:
            streams.append(["weights", weight_bytes, True])
        if stats.activation_bytes > 0:
            streams.append(["workspace", stats.activation_bytes, True])
        if code_traffic > 0:
            streams.append(["binary", code_traffic, False])
        if libc_traffic > 0:
            streams.append(["libc", libc_traffic, False])

        slices = max(1, min(stats.ops, 48))
        cursors = self._cursors
        for index in range(slices):
            for stream in streams:
                name, total, bandwidth = stream
                share = total * (index + 1) // slices - total * index // slices
                if share <= 0:
                    continue
                stream_faults, cursors[name] = runtime.memory.touch_window(
                    name, cursors.get(name, 0), share, bandwidth=bandwidth
                )
                faults += stream_faults
        if faults and self.profile.thrash_factor > 1.0:
            pages_per_granule = DEFAULT_GRANULE_SIZE // runtime.cost_model.page_size
            granule_cost = runtime.cost_model.epc_page_fault_cost * pages_per_granule
            clock.advance(faults * granule_cost * (self.profile.thrash_factor - 1.0))
        self.totals.memory_time += clock.now - before
        self.totals.epc_faults += faults
