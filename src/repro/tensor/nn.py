"""Neural-network operations: convolution, pooling, bias, cross-entropy.

Convolutions run through im2col + matmul (real numpy, real gradients);
pooling is restricted to non-overlapping windows (stride == window),
which covers every model in the zoo and keeps the backward kernel
simple and fast.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ShapeError
from repro.tensor.graph import Operation, Tensor
from repro.tensor.ops import register_flops, register_gradient
from repro.tensor.ops.core import make_op


def _conv_output_dim(size: Optional[int], k: int, stride: int, padding: str) -> Optional[int]:
    if size is None:
        return None
    if padding == "SAME":
        return -(-size // stride)
    return (size - k) // stride + 1


def _same_padding(size: int, k: int, stride: int) -> Tuple[int, int]:
    out = -(-size // stride)
    total = max((out - 1) * stride + k - size, 0)
    return total // 2, total - total // 2


def _extract_patches(x: np.ndarray, kh: int, kw: int, stride: int, padding: str) -> np.ndarray:
    """Return patches of shape (N, Ho, Wo, kh*kw*C)."""
    n, h, w, c = x.shape
    if padding == "SAME":
        ph = _same_padding(h, kh, stride)
        pw = _same_padding(w, kw, stride)
        x = np.pad(x, ((0, 0), ph, pw, (0, 0)))
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(1, 2))
    # windows: (N, H', W', C, kh, kw) -> strided and reordered
    windows = windows[:, ::stride, ::stride]
    windows = np.transpose(windows, (0, 1, 2, 4, 5, 3))  # N,Ho,Wo,kh,kw,C
    n, ho, wo = windows.shape[:3]
    return np.ascontiguousarray(windows).reshape(n, ho, wo, kh * kw * c)


def conv2d(
    x: Tensor,
    filters: Tensor,
    stride: int = 1,
    padding: str = "SAME",
    name: str = "conv2d",
) -> Tensor:
    """2-D convolution, NHWC layout, square stride."""
    if x.rank != 4 or filters.rank != 4:
        raise ShapeError(f"conv2d expects NHWC input and khkwCiCo filters, got {x.shape}, {filters.shape}")
    if padding not in ("SAME", "VALID"):
        raise ShapeError(f"padding must be SAME or VALID, got {padding!r}")
    kh, kw, ci, co = filters.shape
    if x.shape[3] is not None and ci is not None and x.shape[3] != ci:
        raise ShapeError(f"conv2d channels mismatch: input {x.shape[3]}, filters {ci}")
    out_shape = (
        x.shape[0],
        _conv_output_dim(x.shape[1], kh, stride, padding),
        _conv_output_dim(x.shape[2], kw, stride, padding),
        co,
    )

    def kernel(op: Operation, xv: np.ndarray, fv: np.ndarray) -> np.ndarray:
        s = op.attrs["stride"]
        pad_mode = op.attrs["padding"]
        fkh, fkw, fci, fco = fv.shape
        patches = _extract_patches(xv, fkh, fkw, s, pad_mode)
        n, ho, wo, _ = patches.shape
        out = patches.reshape(-1, fkh * fkw * fci) @ fv.reshape(-1, fco)
        return out.reshape(n, ho, wo, fco)

    return make_op(
        "conv2d",
        [x, filters],
        out_shape,
        x.dtype,
        kernel,
        name=name,
        attrs={"stride": stride, "padding": padding},
    )


def _conv2d_grad_filters(grad: Tensor, op: Operation) -> Tensor:
    def kernel(gop: Operation, g: np.ndarray, xv: np.ndarray, fv: np.ndarray) -> np.ndarray:
        s = gop.attrs["stride"]
        pad_mode = gop.attrs["padding"]
        kh, kw, ci, co = fv.shape
        patches = _extract_patches(xv, kh, kw, s, pad_mode)
        cols = patches.reshape(-1, kh * kw * ci)
        gcols = g.reshape(-1, co)
        return (cols.T @ gcols).reshape(kh, kw, ci, co)

    return make_op(
        "conv2d_grad_filters",
        [grad, op.inputs[0], op.inputs[1]],
        op.inputs[1].shape,
        grad.dtype,
        kernel,
        name="conv2d_grad_filters",
        attrs=dict(op.attrs),
    )


def _conv2d_grad_input(grad: Tensor, op: Operation) -> Tensor:
    def kernel(gop: Operation, g: np.ndarray, xv: np.ndarray, fv: np.ndarray) -> np.ndarray:
        s = gop.attrs["stride"]
        pad_mode = gop.attrs["padding"]
        kh, kw, ci, co = fv.shape
        n, h, w, _ = xv.shape
        if pad_mode == "SAME":
            ph = _same_padding(h, kh, s)
            pw = _same_padding(w, kw, s)
        else:
            ph = pw = (0, 0)
        hp, wp = h + sum(ph), w + sum(pw)
        gcols = g.reshape(-1, co) @ fv.reshape(-1, co).T  # (N*Ho*Wo, kh*kw*ci)
        ho, wo = g.shape[1], g.shape[2]
        gcols = gcols.reshape(n, ho, wo, kh, kw, ci)
        dx = np.zeros((n, hp, wp, ci), dtype=xv.dtype)
        # Scatter-add each kernel offset back (col2im).
        for i in range(kh):
            for j in range(kw):
                dx[:, i: i + ho * s: s, j: j + wo * s: s, :] += gcols[:, :, :, i, j, :]
        return dx[:, ph[0]: hp - ph[1], pw[0]: wp - pw[1], :]

    return make_op(
        "conv2d_grad_input",
        [grad, op.inputs[0], op.inputs[1]],
        op.inputs[0].shape,
        grad.dtype,
        kernel,
        name="conv2d_grad_input",
        attrs=dict(op.attrs),
    )


@register_gradient("conv2d")
def _grad_conv2d(op: Operation, grad: Tensor) -> List[Optional[Tensor]]:
    return [_conv2d_grad_input(grad, op), _conv2d_grad_filters(grad, op)]


@register_flops("conv2d")
def _flops_conv2d(op: Operation, input_values, output_value) -> int:
    fv = input_values[1]
    kh, kw, ci, co = fv.shape
    return int(2 * kh * kw * ci * output_value.size)


@register_flops("conv2d_grad_filters")
def _flops_conv2d_gf(op, input_values, output_value):
    g = input_values[0]
    kh, kw, ci, co = input_values[2].shape
    return int(2 * kh * kw * ci * g.size)


@register_flops("conv2d_grad_input")
def _flops_conv2d_gi(op, input_values, output_value):
    g = input_values[0]
    kh, kw, ci, co = input_values[2].shape
    return int(2 * kh * kw * ci * g.size)


# ---------------------------------------------------------------------------
# Pooling (non-overlapping windows: stride == window size)
# ---------------------------------------------------------------------------


def _check_pool_args(x: Tensor, window: int, stride: int) -> None:
    if x.rank != 4:
        raise ShapeError(f"pooling expects NHWC input, got {x.shape}")
    if stride != window:
        raise ShapeError(
            "pooling supports non-overlapping windows only (stride == window); "
            f"got window={window}, stride={stride}"
        )


def _pool_shape(x: Tensor, window: int) -> Tuple:
    return (
        x.shape[0],
        None if x.shape[1] is None else x.shape[1] // window,
        None if x.shape[2] is None else x.shape[2] // window,
        x.shape[3],
    )


def _pool_view(v: np.ndarray, k: int) -> np.ndarray:
    n, h, w, c = v.shape
    ho, wo = h // k, w // k
    return v[:, : ho * k, : wo * k, :].reshape(n, ho, k, wo, k, c)


def max_pool(x: Tensor, window: int = 2, stride: Optional[int] = None, name="max_pool") -> Tensor:
    stride = window if stride is None else stride
    _check_pool_args(x, window, stride)

    def kernel(op: Operation, v: np.ndarray) -> np.ndarray:
        return _pool_view(v, op.attrs["window"]).max(axis=(2, 4))

    return make_op(
        "max_pool", [x], _pool_shape(x, window), x.dtype, kernel, name=name,
        attrs={"window": window},
    )


def avg_pool(x: Tensor, window: int = 2, stride: Optional[int] = None, name="avg_pool") -> Tensor:
    stride = window if stride is None else stride
    _check_pool_args(x, window, stride)

    def kernel(op: Operation, v: np.ndarray) -> np.ndarray:
        return _pool_view(v, op.attrs["window"]).mean(axis=(2, 4))

    return make_op(
        "avg_pool", [x], _pool_shape(x, window), x.dtype, kernel, name=name,
        attrs={"window": window},
    )


@register_gradient("max_pool")
def _grad_max_pool(op: Operation, grad: Tensor) -> List[Optional[Tensor]]:
    def kernel(gop: Operation, g: np.ndarray, v: np.ndarray, y: np.ndarray) -> np.ndarray:
        k = gop.attrs["window"]
        view = _pool_view(v, k)
        mask = view == y[:, :, None, :, None, :]
        spread = mask * g[:, :, None, :, None, :]
        n, ho, _, wo, _, c = spread.shape
        out = np.zeros_like(v)
        out[:, : ho * k, : wo * k, :] = spread.reshape(n, ho * k, wo * k, c)
        return out

    result = make_op(
        "max_pool_grad",
        [grad, op.inputs[0], op.outputs[0]],
        op.inputs[0].shape,
        grad.dtype,
        kernel,
        name="max_pool_grad",
        attrs=dict(op.attrs),
    )
    return [result]


@register_gradient("avg_pool")
def _grad_avg_pool(op: Operation, grad: Tensor) -> List[Optional[Tensor]]:
    def kernel(gop: Operation, g: np.ndarray, v: np.ndarray) -> np.ndarray:
        k = gop.attrs["window"]
        n, ho, wo, c = g.shape
        spread = np.broadcast_to(
            g[:, :, None, :, None, :] / (k * k), (n, ho, k, wo, k, c)
        )
        out = np.zeros_like(v)
        out[:, : ho * k, : wo * k, :] = spread.reshape(n, ho * k, wo * k, c)
        return out

    result = make_op(
        "avg_pool_grad",
        [grad, op.inputs[0]],
        op.inputs[0].shape,
        grad.dtype,
        kernel,
        name="avg_pool_grad",
        attrs=dict(op.attrs),
    )
    return [result]


# ---------------------------------------------------------------------------
# Bias, dropout, cross-entropy
# ---------------------------------------------------------------------------


def bias_add(x: Tensor, bias: Tensor, name: str = "bias_add") -> Tensor:
    """Add a rank-1 bias over the last axis."""
    if bias.rank != 1:
        raise ShapeError(f"bias must be rank-1, got {bias.shape}")
    return make_op(
        "bias_add",
        [x, bias],
        x.shape,
        x.dtype,
        lambda op, v, b: v + b,
        name=name,
    )


@register_gradient("bias_add")
def _grad_bias_add(op: Operation, grad: Tensor) -> List[Optional[Tensor]]:
    def kernel(gop: Operation, g: np.ndarray) -> np.ndarray:
        return g.reshape(-1, g.shape[-1]).sum(axis=0)

    gb = make_op(
        "bias_add_grad",
        [grad],
        op.inputs[1].shape,
        grad.dtype,
        kernel,
        name="bias_add_grad",
    )
    return [grad, gb]


def dropout(x: Tensor, rate: float, seed: int = 0, name: str = "dropout") -> Tensor:
    """Inverted dropout with a deterministic per-call mask sequence.

    Returns the dropped-out tensor; the mask is the op's second output,
    consumed by the gradient so forward and backward always agree.
    """
    if not 0.0 <= rate < 1.0:
        raise ShapeError(f"dropout rate must be in [0, 1), got {rate}")

    state = {"calls": 0}

    def kernel(op: Operation, v: np.ndarray):
        r = op.attrs["rate"]
        rng = np.random.default_rng(op.attrs["seed"] + state["calls"])
        state["calls"] += 1
        mask = (rng.random(v.shape) >= r).astype(v.dtype) / (1.0 - r)
        return v * mask, mask

    op = Operation(
        graph=x.graph,
        op_type="dropout",
        name=name,
        inputs=[x],
        attrs={"rate": rate, "seed": seed},
        output_shapes=[x.shape, x.shape],
        output_dtypes=[x.dtype, x.dtype],
        compute=kernel,
    )
    return op.outputs[0]


@register_gradient("dropout")
def _grad_dropout(op: Operation, grad: Tensor) -> List[Optional[Tensor]]:
    mask = op.outputs[1]
    result = make_op(
        "dropout_grad",
        [grad, mask],
        op.inputs[0].shape,
        grad.dtype,
        lambda gop, g, m: g * m,
        name="dropout_grad",
    )
    return [result]


def softmax_cross_entropy_with_logits(
    labels: Tensor, logits: Tensor, name: str = "softmax_xent"
) -> Tensor:
    """Per-example cross entropy between one-hot labels and logits."""
    if logits.rank != 2 or labels.rank != 2:
        raise ShapeError(
            f"expected rank-2 labels/logits, got {labels.shape} / {logits.shape}"
        )

    def kernel(op: Operation, lab: np.ndarray, log_: np.ndarray) -> np.ndarray:
        shifted = log_ - log_.max(axis=-1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        log_softmax = shifted - log_z
        return -(lab * log_softmax).sum(axis=-1)

    return make_op(
        "softmax_xent",
        [labels, logits],
        (logits.shape[0],),
        logits.dtype,
        kernel,
        name=name,
    )


@register_gradient("softmax_xent")
def _grad_softmax_xent(op: Operation, grad: Tensor) -> List[Optional[Tensor]]:
    def kernel(gop: Operation, g: np.ndarray, lab: np.ndarray, log_: np.ndarray) -> np.ndarray:
        shifted = log_ - log_.max(axis=-1, keepdims=True)
        e = np.exp(shifted)
        probs = e / e.sum(axis=-1, keepdims=True)
        return (probs - lab) * g[:, None]

    glogits = make_op(
        "softmax_xent_grad",
        [grad, op.inputs[0], op.inputs[1]],
        op.inputs[1].shape,
        grad.dtype,
        kernel,
        name="softmax_xent_grad",
    )
    return [None, glogits]


@register_flops("softmax_xent")
def _flops_xent(op, input_values, output_value):
    return 12 * input_values[1].size


@register_flops("softmax_xent_grad")
def _flops_xent_grad(op, input_values, output_value):
    return 12 * output_value.size
