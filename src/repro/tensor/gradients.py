"""Reverse-mode autodiff over the graph (``tf.gradients`` analogue).

Given scalar (or any) output tensors ``ys`` and input tensors ``xs``,
build backward graph nodes computing ``d sum(ys) / d x`` for each x.
Gradients accumulate by summation where a tensor fans out to several
consumers; ops without a registered gradient act as gradient sinks
(their inputs receive None), matching TF semantics for non-differentiable
ops.  Correctness is pinned by numeric-gradient property tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.errors import GraphError
from repro.tensor.graph import Operation, Tensor
from repro.tensor.ops import GRADIENT_REGISTRY
from repro.tensor.ops.core import add


def _ones_like(tensor: Tensor) -> Tensor:
    """A ones tensor matching ``tensor``'s runtime shape."""
    from repro.tensor.ops.core import make_op
    import numpy as np

    return make_op(
        "ones_like",
        [tensor],
        tensor.shape,
        tensor.dtype,
        lambda op, v: np.ones_like(v),
        name="ones_like",
    )


def _backward_reachable(ys: Sequence[Tensor]) -> List[Operation]:
    """Ops reachable backward from ys, in reverse topological order."""
    visited: Dict[int, Operation] = {}
    order: List[Operation] = []

    def visit(op: Operation) -> None:
        if id(op) in visited:
            return
        visited[id(op)] = op
        for inp in op.inputs:
            visit(inp.op)
        order.append(op)

    for y in ys:
        visit(y.op)
    return list(reversed(order))


def gradients(
    ys: Union[Tensor, Sequence[Tensor]],
    xs: Union[Tensor, Sequence[Tensor]],
    grad_ys: Optional[Sequence[Tensor]] = None,
) -> List[Optional[Tensor]]:
    """Symbolic gradients of sum(ys) with respect to each x."""
    ys_list = [ys] if isinstance(ys, Tensor) else list(ys)
    xs_list = [xs] if isinstance(xs, Tensor) else list(xs)
    if not ys_list:
        raise GraphError("gradients() needs at least one y")

    accumulated: Dict[str, Tensor] = {}
    if grad_ys is None:
        for y in ys_list:
            accumulated[y.name] = _ones_like(y)
    else:
        if len(grad_ys) != len(ys_list):
            raise GraphError("grad_ys must match ys in length")
        for y, gy in zip(ys_list, grad_ys):
            accumulated[y.name] = gy

    for op in _backward_reachable(ys_list):
        # Gather this op's output gradient (only single-output ops and
        # dropout-style (value, state) ops are differentiated; state
        # outputs receive no gradient).
        grad_out = accumulated.get(op.outputs[0].name)
        if grad_out is None:
            continue
        grad_fn = GRADIENT_REGISTRY.get(op.op_type)
        if grad_fn is None:
            continue  # gradient sink (placeholders, comparisons, ...)
        input_grads = grad_fn(op, grad_out)
        if len(input_grads) != len(op.inputs):
            raise GraphError(
                f"gradient of {op.op_type!r} returned {len(input_grads)} "
                f"grads for {len(op.inputs)} inputs"
            )
        for inp, grad in zip(op.inputs, input_grads):
            if grad is None:
                continue
            existing = accumulated.get(inp.name)
            accumulated[inp.name] = (
                grad if existing is None else add(existing, grad, name="grad_acc")
            )

    return [accumulated.get(x.name) for x in xs_list]
