"""The Lite interpreter: forward-only model execution.

API mirrors TensorFlow Lite: load a model, ``allocate_tensors()``, set
inputs, ``invoke()``, read outputs.  Execution reuses the real numpy
kernels through an internal :class:`Session`, but charges the simulated
clock with :data:`~repro.tensor.engine.LITE_PROFILE` — the small-binary,
low-dispatch-overhead interpreter the paper deploys in enclaves.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

import numpy as np

from repro.errors import LiteConversionError
from repro.runtime.scone import SconeRuntime
from repro.tensor.engine import ExecutionEngine, LITE_PROFILE
from repro.tensor.lite.schema import LiteModel
from repro.tensor.saver import import_graph
from repro.tensor.session import Session


class Interpreter:
    """Loads and runs one Lite model."""

    def __init__(
        self,
        model: Union[LiteModel, bytes],
        runtime: Optional[SconeRuntime] = None,
        threads: int = 1,
    ) -> None:
        self.model = (
            model if isinstance(model, LiteModel) else LiteModel.from_bytes(model)
        )
        self._runtime = runtime
        self._threads = threads
        self._session: Optional[Session] = None
        self._imported = None

    def allocate_tensors(self) -> None:
        """Import the graph and build the execution session."""
        imported = import_graph(self.model.graph_blob)
        if not imported.inputs:
            raise LiteConversionError(
                "Lite model declares no inputs; re-convert with input tensors"
            )
        engine = None
        if self._runtime is not None:
            engine = ExecutionEngine(self._runtime, LITE_PROFILE, threads=self._threads)
            engine.arena_hint = self.model.arena_size
        self._imported = imported
        self._session = Session(
            graph=imported.graph, engine=engine, threads=self._threads
        )

    @property
    def engine(self) -> Optional[ExecutionEngine]:
        """The attached execution engine (None when cost-free)."""
        self._check_allocated()
        return self._session.engine

    @property
    def input_names(self) -> List[str]:
        self._check_allocated()
        return [t.name for t in self._imported.inputs]

    @property
    def output_names(self) -> List[str]:
        self._check_allocated()
        return [t.name for t in self._imported.outputs]

    def invoke(self, inputs: Union[np.ndarray, List[Any], Dict[str, Any]]) -> List[np.ndarray]:
        """Run one forward pass; returns the output arrays in order."""
        self._check_allocated()
        feed: Dict[Any, Any] = {}
        declared = self._imported.inputs
        if isinstance(inputs, dict):
            for name, value in inputs.items():
                feed[self._imported.graph.get_tensor(name)] = value
        elif isinstance(inputs, (list, tuple)):
            if len(inputs) != len(declared):
                raise LiteConversionError(
                    f"model expects {len(declared)} inputs, got {len(inputs)}"
                )
            for tensor, value in zip(declared, inputs):
                feed[tensor] = value
        else:
            if len(declared) != 1:
                raise LiteConversionError(
                    f"model expects {len(declared)} inputs; pass a list or dict"
                )
            feed[declared[0]] = inputs
        outputs = self._session.run(list(self._imported.outputs), feed_dict=feed)
        return [np.asarray(value) for value in outputs]

    def classify(self, inputs: Any) -> int:
        """Convenience: argmax of the first output (label_image-style)."""
        outputs = self.invoke(inputs)
        first = outputs[0]
        return int(np.argmax(first[0] if first.ndim > 1 else first))

    def _check_allocated(self) -> None:
        if self._session is None or self._imported is None:
            raise LiteConversionError(
                "call allocate_tensors() before using the interpreter"
            )
