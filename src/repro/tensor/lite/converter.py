"""Frozen-graph → Lite conversion.

Checks the restricted op set (Lite performs forward passes only — §2.1:
"TensorFlow Lite can only perform forward passes in graphs"), folds
pass-through ops (identity / stop_gradient), and plans the tensor arena.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.crypto import encoding
from repro.errors import LiteConversionError
from repro.tensor.lite.schema import LiteModel
from repro.tensor.saver import MAGIC as GRAPH_MAGIC

#: Inference ops the Lite interpreter implements.  No gradients, no
#: assignments, no cross-entropy: training graphs are rejected.
LITE_SUPPORTED_OPS: Set[str] = {
    "const",
    "placeholder",
    "add",
    "sub",
    "mul",
    "div",
    "pow",
    "maximum",
    "minimum",
    "equal",
    "greater",
    "neg",
    "square",
    "sqrt",
    "exp",
    "log",
    "relu",
    "sigmoid",
    "tanh",
    "softmax",
    "cast",
    "matmul",
    "reduce_sum",
    "reduce_mean",
    "reduce_max",
    "argmax",
    "reshape",
    "transpose",
    "concat",
    "pad",
    "expand_dims",
    "tile",
    "conv2d",
    "max_pool",
    "avg_pool",
    "bias_add",
}

_FOLDABLE = {"identity", "stop_gradient"}


class LiteConverter:
    """Converts a frozen graph blob into a :class:`LiteModel`."""

    def __init__(self, name: str = "model") -> None:
        self.name = name

    def convert(
        self,
        frozen_graph: bytes,
        declared_size: Optional[int] = None,
    ) -> LiteModel:
        """Validate, fold, plan the arena, and pack the model."""
        try:
            payload = encoding.decode(frozen_graph)
        except Exception as exc:
            raise LiteConversionError("input is not a serialized graph") from exc
        if not isinstance(payload, dict) or payload.get("magic") != GRAPH_MAGIC:
            raise LiteConversionError("input is not a secureTF frozen graph")

        records: List[dict] = payload["ops"]
        alias: Dict[str, str] = {}
        kept: List[dict] = []
        weight_bytes = 0
        for record in records:
            op_type = record["op_type"]
            resolved_inputs = [alias.get(name, name) for name in record["inputs"]]
            if op_type in _FOLDABLE:
                alias[f"{record['name']}:0"] = resolved_inputs[0]
                continue
            if op_type == "variable":
                raise LiteConversionError(
                    f"graph contains unfrozen variable {record['name']!r}; "
                    f"Lite models must be frozen (the paper trains with full "
                    f"TensorFlow and converts for inference)"
                )
            if op_type not in LITE_SUPPORTED_OPS:
                raise LiteConversionError(
                    f"op {record['name']!r} of type {op_type!r} is not in the "
                    f"Lite op set"
                )
            if op_type == "const":
                value = record["attrs"].get("value")
                if isinstance(value, dict) and value.get("__ndarray__"):
                    weight_bytes += len(value["data"])
            kept.append({**record, "inputs": resolved_inputs})

        folded_outputs = [alias.get(n, n) for n in payload["outputs"]]
        folded_inputs = [alias.get(n, n) for n in payload.get("inputs", [])]
        scales = dict(payload.get("scales", {}))
        graph_blob = encoding.encode(
            {
                "magic": GRAPH_MAGIC,
                "ops": kept,
                "outputs": folded_outputs,
                "inputs": folded_inputs,
                "scales": scales,
            }
        )
        arena = self._plan_arena(weight_bytes, scales.get("weight_scale", 1.0))
        return LiteModel(
            name=self.name,
            graph_blob=graph_blob,
            arena_size=arena,
            scales=scales,
            declared_size=declared_size,
        )

    @staticmethod
    def _plan_arena(weight_bytes: int, weight_scale: float) -> int:
        """Plan the activation arena: a fraction of the scaled weights,
        floored at 1 MiB (Lite reuses buffers aggressively)."""
        scaled = int(weight_bytes * weight_scale)
        return max(1024 * 1024, scaled // 16)
