"""TensorFlow Lite analogue: converter, flat model format, interpreter.

The paper's classification path (§3.3.4, §4.2) uses TensorFlow Lite
inside the enclave because its binary is ~46× smaller than full
TensorFlow's (1.9 MB vs 87.4 MB), which decides whether the hot code fits
in the EPC next to the model.  This subpackage mirrors that pipeline:
freeze a trained graph, convert it to the flat Lite format (folding
pass-through ops, checking the restricted op set — Lite cannot train by
design), and run it with the mobile-optimized interpreter profile.
"""

from repro.tensor.lite.schema import LiteModel, LITE_MAGIC
from repro.tensor.lite.converter import LiteConverter, LITE_SUPPORTED_OPS
from repro.tensor.lite.interpreter import Interpreter
from repro.tensor.lite.optimize import prune, quantize

__all__ = [
    "LiteModel",
    "LITE_MAGIC",
    "LiteConverter",
    "LITE_SUPPORTED_OPS",
    "Interpreter",
    "quantize",
    "prune",
]
