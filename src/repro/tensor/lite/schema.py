"""The flat Lite model format.

A Lite model is a single canonical-encoded blob: the frozen graph, the
planned arena size, a cost scale, and metadata.  ``declared_size`` lets
the model zoo give a stand-in model the on-disk footprint of the paper's
real models (42/91/163 MB) — the file-system shield and enclave memory
charge for that size while the embedded weights stay small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto import encoding
from repro.errors import LiteConversionError

LITE_MAGIC = "securetf-lite-v1"


@dataclass(frozen=True)
class LiteModel:
    """An immutable converted model."""

    name: str
    graph_blob: bytes
    arena_size: int
    scales: Dict[str, float] = field(default_factory=dict)
    declared_size: Optional[int] = None

    def to_bytes(self) -> bytes:
        return encoding.encode(
            {
                "magic": LITE_MAGIC,
                "name": self.name,
                "graph": self.graph_blob,
                "arena_size": self.arena_size,
                "scales": {k: float(v) for k, v in self.scales.items()},
                "declared_size": self.declared_size,
            }
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "LiteModel":
        try:
            payload = encoding.decode(data)
        except Exception as exc:
            raise LiteConversionError("malformed Lite model blob") from exc
        if not isinstance(payload, dict) or payload.get("magic") != LITE_MAGIC:
            raise LiteConversionError("not a secureTF Lite model")
        try:
            return cls(
                name=payload["name"],
                graph_blob=payload["graph"],
                arena_size=payload["arena_size"],
                scales=dict(payload["scales"]),
                declared_size=payload["declared_size"],
            )
        except KeyError as exc:
            raise LiteConversionError(f"Lite model missing field {exc}") from exc

    @property
    def size_bytes(self) -> int:
        """The simulated on-disk size (declared, or the real blob size)."""
        return (
            self.declared_size
            if self.declared_size is not None
            else len(self.to_bytes())
        )
