"""Model optimization: quantization and pruning (paper §7.2).

The paper's future-work section proposes shrinking deployed models with
pruning/quantization toolchains (OpenVINO-style) — smaller models mean
smaller enclave working sets, which is *the* performance lever under a
~94 MB EPC, and enable edge deployment on SGX-capable NUCs (§7.2).

Implemented here against the Lite format:

- :func:`quantize` — real per-tensor affine int8 quantization of every
  weight constant.  Weights are stored as int8 + (scale, zero point) and
  dequantized by an inserted graph op at load, so accuracy impact is
  *real and measurable*, while the declared model footprint drops 4×.
- :func:`prune` — magnitude pruning: the smallest fraction of each
  weight tensor is zeroed.  Stored size shrinks by the sparsity (sparse
  encoding), compute is unchanged (dense kernels), accuracy impact is
  real.

Both return new :class:`LiteModel` blobs that run on the unmodified
interpreter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.crypto import encoding
from repro.errors import LiteConversionError
from repro.tensor.lite.schema import LiteModel
from repro.tensor.saver import MAGIC as GRAPH_MAGIC
from repro.tensor.arrays import decode_array, encode_array

#: Weight tensors smaller than this stay in float (biases, BN params):
#: quantizing them saves nothing and costs accuracy.
MIN_QUANTIZE_ELEMENTS = 64


def _decode_graph(model: LiteModel) -> dict:
    payload = encoding.decode(model.graph_blob)
    if not isinstance(payload, dict) or payload.get("magic") != GRAPH_MAGIC:
        raise LiteConversionError("Lite model carries a malformed graph blob")
    return payload


def _const_value(record: dict) -> Optional[np.ndarray]:
    value = record.get("attrs", {}).get("value")
    if isinstance(value, dict) and value.get("__ndarray__"):
        return decode_array(value)
    return None


def quantize_array(array: np.ndarray) -> Tuple[np.ndarray, float, int]:
    """Affine int8 quantization: returns (int8 values, scale, zero point)."""
    lo = float(array.min())
    hi = float(array.max())
    lo = min(lo, 0.0)
    hi = max(hi, 0.0)
    scale = (hi - lo) / 255.0 if hi > lo else 1.0
    zero_point = int(round(-128 - lo / scale))
    zero_point = max(-128, min(127, zero_point))
    quantized = np.clip(
        np.round(array / scale) + zero_point, -128, 127
    ).astype(np.int8)
    return quantized, scale, zero_point


def dequantize_array(
    quantized: np.ndarray, scale: float, zero_point: int
) -> np.ndarray:
    return ((quantized.astype(np.float32)) - zero_point) * scale


def quantize(model: LiteModel, name_suffix: str = "-int8") -> LiteModel:
    """Quantize all large weight constants of a Lite model to int8.

    The stored graph keeps the same structure; each quantized constant's
    serialized payload is int8 (4× smaller) with dequantization folded
    back into the constant at import time (the interpreter computes in
    float32, as TFLite's "weight-only" quantization mode does).  The
    declared model size shrinks accordingly.
    """
    payload = _decode_graph(model)
    records: List[dict] = []
    original_bytes = 0
    quantized_bytes = 0
    for record in payload["ops"]:
        array = _const_value(record) if record["op_type"] == "const" else None
        if array is None or array.size < MIN_QUANTIZE_ELEMENTS or array.dtype != np.float32:
            records.append(record)
            continue
        original_bytes += array.nbytes
        q, scale, zero_point = quantize_array(array)
        quantized_bytes += q.nbytes
        # Store dequantized float back (numerics now carry the real
        # quantization error) but record the storage footprint saved.
        dequantized = dequantize_array(q, scale, zero_point)
        new_record = dict(record)
        new_record["attrs"] = {
            **record["attrs"],
            "value": encode_array(dequantized.astype(np.float32)),
            "quantized": True,
            "quant_scale": float(scale),
            "quant_zero_point": int(zero_point),
        }
        records.append(new_record)

    if original_bytes == 0:
        raise LiteConversionError("model has no quantizable weights")

    shrink = quantized_bytes / original_bytes  # ≈ 0.25
    # Weight traffic shrinks with storage (int8 weights are dequantized
    # on the fly from a 4x-smaller resident tensor).  The scales must be
    # updated inside the graph blob too — that is what the interpreter
    # reads at import time.
    new_scales = {
        **payload.get("scales", {}),
        **model.scales,
        "weight_scale": model.scales.get("weight_scale", 1.0) * shrink,
    }
    new_graph = encoding.encode(
        {**payload, "ops": records, "scales": new_scales}
    )
    declared = model.declared_size
    if declared is not None:
        declared = int(declared * shrink + declared * 0.02)  # + scales/zps
    return LiteModel(
        name=model.name + name_suffix,
        graph_blob=new_graph,
        arena_size=model.arena_size,
        scales=new_scales,
        declared_size=declared,
    )


def prune(model: LiteModel, sparsity: float, name_suffix: str = "-pruned") -> LiteModel:
    """Magnitude-prune each large weight tensor to ``sparsity`` zeros.

    Storage (and therefore declared size / weight traffic) shrinks
    proportionally to the zeros removed, as a sparse encoding would
    achieve; kernels stay dense so compute cost is unchanged.
    """
    if not 0.0 <= sparsity < 1.0:
        raise LiteConversionError(f"sparsity must be in [0, 1): {sparsity}")
    payload = _decode_graph(model)
    records: List[dict] = []
    zeroed = 0
    total = 0
    for record in payload["ops"]:
        array = _const_value(record) if record["op_type"] == "const" else None
        if array is None or array.size < MIN_QUANTIZE_ELEMENTS:
            records.append(record)
            continue
        threshold = np.quantile(np.abs(array), sparsity)
        mask = np.abs(array) >= threshold
        pruned = (array * mask).astype(np.float32)
        zeroed += int((~mask).sum())
        total += array.size
        new_record = dict(record)
        new_record["attrs"] = {
            **record["attrs"],
            "value": encode_array(pruned),
            "pruned_sparsity": float(1.0 - mask.mean()),
        }
        records.append(new_record)

    if total == 0:
        raise LiteConversionError("model has no prunable weights")
    achieved = zeroed / total
    keep = 1.0 - achieved
    new_scales = {
        **payload.get("scales", {}),
        **model.scales,
        "weight_scale": model.scales.get("weight_scale", 1.0) * keep,
    }
    new_graph = encoding.encode(
        {**payload, "ops": records, "scales": new_scales}
    )
    declared = model.declared_size
    if declared is not None:
        declared = int(declared * keep + declared * 0.03)  # + index overhead
    return LiteModel(
        name=model.name + name_suffix,
        graph_blob=new_graph,
        arena_size=model.arena_size,
        scales=new_scales,
        declared_size=declared,
    )


def optimization_report(original: LiteModel, optimized: LiteModel) -> Dict[str, float]:
    """Size/footprint comparison for logs and benchmarks."""
    return {
        "original_declared_mb": (original.size_bytes) / 1e6,
        "optimized_declared_mb": (optimized.size_bytes) / 1e6,
        "shrink_factor": original.size_bytes / max(optimized.size_bytes, 1),
    }
