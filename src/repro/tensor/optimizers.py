"""Optimizers: SGD, Momentum, Adam (graph-building, TF-1.x style).

``minimize(loss)`` differentiates the loss against the graph's trainable
variables and returns a single *train op*; each ``Session.run`` of that
op performs one update step.  Optimizer slot state (momentum buffers,
Adam moments) is held in non-trainable variables so checkpoints can
capture it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.tensor.gradients import gradients
from repro.tensor.graph import Tensor
from repro.tensor.ops import core as ops
from repro.tensor.variables import Variable, trainable_variables


def _as_lr_tensor(learning_rate, graph) -> Tensor:
    """Accept a float or a schedule tensor as the learning rate."""
    if isinstance(learning_rate, Tensor):
        return learning_rate
    return ops.constant(float(learning_rate), graph=graph)


def group(operations: Sequence[Tensor], name: str = "group") -> Tensor:
    """A no-op that forces all ``operations`` to run first."""
    if not operations:
        raise GraphError("group() of nothing")
    graph = operations[0].graph
    result = ops.make_op(
        "group", [], (), "int64", lambda op: 0, name=name, graph=graph
    )
    for dep in operations:
        result.op.add_control_input(dep.op)
    return result


class Optimizer:
    """Base class: compute_gradients + apply_gradients."""

    def __init__(self, name: str) -> None:
        self.name = name

    def compute_gradients(
        self, loss: Tensor, var_list: Optional[List[Variable]] = None
    ) -> List[Tuple[Tensor, Variable]]:
        variables = var_list or trainable_variables(loss.graph)
        if not variables:
            raise GraphError("no trainable variables to optimize")
        grads = gradients(loss, [v.tensor for v in variables])
        pairs = []
        for grad, var in zip(grads, variables):
            if grad is None:
                raise GraphError(
                    f"loss does not depend on variable {var.name!r}"
                )
            pairs.append((grad, var))
        return pairs

    def apply_gradients(self, grads_and_vars: List[Tuple[Tensor, Variable]]) -> Tensor:
        updates = [
            self._apply_one(grad, var) for grad, var in grads_and_vars
        ]
        return group(updates, name=f"{self.name}/update")

    def minimize(
        self, loss: Tensor, var_list: Optional[List[Variable]] = None
    ) -> Tensor:
        return self.apply_gradients(self.compute_gradients(loss, var_list))

    def _apply_one(self, grad: Tensor, var: Variable) -> Tensor:
        raise NotImplementedError


class GradientDescent(Optimizer):
    """Plain SGD: ``w -= lr * g``.  ``learning_rate`` may be a float or a
    schedule tensor (see :mod:`repro.tensor.schedules`)."""

    def __init__(self, learning_rate, name: str = "sgd") -> None:
        super().__init__(name)
        if not isinstance(learning_rate, Tensor) and learning_rate <= 0:
            raise GraphError(f"learning rate must be positive: {learning_rate}")
        self.learning_rate = learning_rate

    def _apply_one(self, grad: Tensor, var: Variable) -> Tensor:
        lr = _as_lr_tensor(self.learning_rate, grad.graph)
        return var.assign_sub(ops.mul(lr, grad), name=f"{self.name}/{var.name}/step")


class Momentum(Optimizer):
    """SGD with classical momentum: ``v = m*v + g; w -= lr*v``."""

    def __init__(
        self, learning_rate: float, momentum: float = 0.9, name: str = "momentum"
    ) -> None:
        super().__init__(name)
        self.learning_rate = learning_rate
        self.momentum = momentum

    def _apply_one(self, grad: Tensor, var: Variable) -> Tensor:
        slot = Variable(
            lambda shape=tuple(var.shape): np.zeros(shape, dtype=np.float32),
            tuple(var.shape),
            name=f"{self.name}/{var.name}/velocity",
            trainable=False,
            graph=grad.graph,
        )
        m = ops.constant(self.momentum, graph=grad.graph)
        new_velocity = slot.assign(
            ops.add(ops.mul(m, slot.tensor), grad),
            name=f"{self.name}/{var.name}/vel_update",
        )
        lr = _as_lr_tensor(self.learning_rate, grad.graph)
        return var.assign_sub(
            ops.mul(lr, new_velocity), name=f"{self.name}/{var.name}/step"
        )


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        name: str = "adam",
    ) -> None:
        super().__init__(name)
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._step: Optional[Variable] = None

    def _step_var(self, graph) -> Variable:
        if self._step is None:
            self._step = Variable(
                lambda: np.zeros((), dtype=np.float32),
                (),
                name=f"{self.name}/step",
                trainable=False,
                graph=graph,
            )
        return self._step

    def apply_gradients(self, grads_and_vars: List[Tuple[Tensor, Variable]]) -> Tensor:
        graph = grads_and_vars[0][0].graph
        step = self._step_var(graph)
        one = ops.constant(1.0, graph=graph)
        bump = step.assign_add(one, name=f"{self.name}/tick")
        updates = [bump]
        for grad, var in grads_and_vars:
            updates.append(self._apply_adam(grad, var, bump))
        return group(updates, name=f"{self.name}/update")

    def _apply_one(self, grad: Tensor, var: Variable) -> Tensor:
        raise GraphError("Adam applies gradients jointly; use apply_gradients")

    def _apply_adam(self, grad: Tensor, var: Variable, step: Tensor) -> Tensor:
        graph = grad.graph
        shape = tuple(var.shape)
        m = Variable(
            lambda s=shape: np.zeros(s, dtype=np.float32), shape,
            name=f"{self.name}/{var.name}/m", trainable=False, graph=graph,
        )
        v = Variable(
            lambda s=shape: np.zeros(s, dtype=np.float32), shape,
            name=f"{self.name}/{var.name}/v", trainable=False, graph=graph,
        )
        b1 = ops.constant(self.beta1, graph=graph)
        b2 = ops.constant(self.beta2, graph=graph)
        one = ops.constant(1.0, graph=graph)
        eps = ops.constant(self.epsilon, graph=graph)
        lr = _as_lr_tensor(self.learning_rate, graph)

        new_m = m.assign(
            ops.add(ops.mul(b1, m.tensor), ops.mul(ops.sub(one, b1), grad)),
            name=f"{self.name}/{var.name}/m_up",
        )
        new_v = v.assign(
            ops.add(
                ops.mul(b2, v.tensor), ops.mul(ops.sub(one, b2), ops.square(grad))
            ),
            name=f"{self.name}/{var.name}/v_up",
        )
        # Bias correction uses the freshly bumped step count.
        m_hat = ops.div(new_m, ops.sub(one, ops.pow_(b1, step)))
        v_hat = ops.div(new_v, ops.sub(one, ops.pow_(b2, step)))
        delta = ops.div(ops.mul(lr, m_hat), ops.add(ops.sqrt(v_hat), eps))
        return var.assign_sub(delta, name=f"{self.name}/{var.name}/step_apply")
