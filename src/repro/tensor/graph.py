"""Dataflow graph core: Graph, Operation, Tensor.

TF-1.x architecture: a :class:`Graph` is a DAG of :class:`Operation`
nodes; each operation produces :class:`Tensor` handles consumed by
downstream operations.  Shapes are inferred at construction (``None``
dims are unknown, typically the batch dimension).  Execution lives in
:mod:`repro.tensor.session`; op semantics in :mod:`repro.tensor.ops`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import GraphError

Shape = Tuple[Optional[int], ...]


class Graph:
    """A dataflow graph under construction or execution."""

    def __init__(self) -> None:
        self._operations: List["Operation"] = []
        self._by_name: Dict[str, "Operation"] = {}
        self._name_counts: Dict[str, int] = {}
        self.collections: Dict[str, List[Any]] = {}
        #: Cost multipliers applied by the execution engine; the model zoo
        #: uses them to give small stand-in graphs the declared footprint
        #: of the paper's full-size models (see DESIGN.md).
        #: ``cost_scale`` scales FLOPs and activation traffic,
        #: ``weight_scale`` scales weight bytes, ``op_scale`` scales the
        #: executed-op count (dispatch overhead + hot-code traffic).
        self.cost_scale: float = 1.0
        self.weight_scale: float = 1.0
        self.op_scale: float = 1.0
        self.activation_scale: float = 1.0

    @property
    def operations(self) -> List["Operation"]:
        return list(self._operations)

    def unique_name(self, base: str) -> str:
        count = self._name_counts.get(base, 0)
        self._name_counts[base] = count + 1
        return base if count == 0 else f"{base}_{count}"

    def register(self, op: "Operation") -> None:
        if op.name in self._by_name:
            raise GraphError(f"duplicate operation name {op.name!r}")
        self._operations.append(op)
        self._by_name[op.name] = op

    def get_operation(self, name: str) -> "Operation":
        if name not in self._by_name:
            raise GraphError(f"no operation named {name!r} in graph")
        return self._by_name[name]

    def get_tensor(self, name: str) -> "Tensor":
        """Look up a tensor by ``op_name`` or ``op_name:index``."""
        if ":" in name:
            op_name, _, index_str = name.partition(":")
            index = int(index_str)
        else:
            op_name, index = name, 0
        op = self.get_operation(op_name)
        if index >= len(op.outputs):
            raise GraphError(
                f"operation {op_name!r} has {len(op.outputs)} outputs, "
                f"index {index} requested"
            )
        return op.outputs[index]

    def add_to_collection(self, key: str, value: Any) -> None:
        self.collections.setdefault(key, []).append(value)

    def get_collection(self, key: str) -> List[Any]:
        return list(self.collections.get(key, []))

    def as_default(self) -> "_DefaultGraphContext":
        return _DefaultGraphContext(self)

    def __repr__(self) -> str:
        return f"Graph({len(self._operations)} ops)"


class Operation:
    """A node: an op type applied to input tensors, yielding outputs."""

    def __init__(
        self,
        graph: Graph,
        op_type: str,
        name: str,
        inputs: Sequence["Tensor"],
        attrs: Dict[str, Any],
        output_shapes: Sequence[Shape],
        output_dtypes: Sequence[str],
        compute: Callable[..., Any],
        control_inputs: Optional[Sequence["Operation"]] = None,
    ) -> None:
        self.graph = graph
        self.op_type = op_type
        self.name = graph.unique_name(name)
        self.inputs: List[Tensor] = list(inputs)
        self.attrs = dict(attrs)
        self.control_inputs: List[Operation] = list(control_inputs or [])
        self._compute = compute
        self.outputs: List[Tensor] = [
            Tensor(self, i, shape, dtype)
            for i, (shape, dtype) in enumerate(zip(output_shapes, output_dtypes))
        ]
        graph.register(self)

    def compute(self, *input_values: Any) -> Any:
        """Run the op's numpy kernel on concrete input values."""
        return self._compute(self, *input_values)

    @property
    def output(self) -> "Tensor":
        if len(self.outputs) != 1:
            raise GraphError(
                f"operation {self.name!r} has {len(self.outputs)} outputs"
            )
        return self.outputs[0]

    def add_control_input(self, op: "Operation") -> None:
        self.control_inputs.append(op)

    def __repr__(self) -> str:
        return f"Operation(name={self.name!r}, type={self.op_type!r})"


class Tensor:
    """A symbolic handle to one output of an operation."""

    def __init__(self, op: Operation, index: int, shape: Shape, dtype: str) -> None:
        self.op = op
        self.index = index
        self.shape: Shape = tuple(shape)
        self.dtype = dtype

    @property
    def graph(self) -> Graph:
        return self.op.graph

    @property
    def name(self) -> str:
        return f"{self.op.name}:{self.index}"

    @property
    def rank(self) -> int:
        return len(self.shape)

    def __repr__(self) -> str:
        return f"Tensor({self.name!r}, shape={self.shape}, dtype={self.dtype})"

    # Operator sugar (built lazily to avoid import cycles).

    def __add__(self, other: Any) -> "Tensor":
        from repro.tensor import ops

        return ops.add(self, ops.as_tensor(other, graph=self.graph))

    def __radd__(self, other: Any) -> "Tensor":
        from repro.tensor import ops

        return ops.add(ops.as_tensor(other, graph=self.graph), self)

    def __sub__(self, other: Any) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(self, ops.as_tensor(other, graph=self.graph))

    def __rsub__(self, other: Any) -> "Tensor":
        from repro.tensor import ops

        return ops.sub(ops.as_tensor(other, graph=self.graph), self)

    def __mul__(self, other: Any) -> "Tensor":
        from repro.tensor import ops

        return ops.mul(self, ops.as_tensor(other, graph=self.graph))

    def __rmul__(self, other: Any) -> "Tensor":
        from repro.tensor import ops

        return ops.mul(ops.as_tensor(other, graph=self.graph), self)

    def __truediv__(self, other: Any) -> "Tensor":
        from repro.tensor import ops

        return ops.div(self, ops.as_tensor(other, graph=self.graph))

    def __matmul__(self, other: "Tensor") -> "Tensor":
        from repro.tensor import ops

        return ops.matmul(self, other)

    def __neg__(self) -> "Tensor":
        from repro.tensor import ops

        return ops.neg(self)


class _GraphStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[Graph] = [Graph()]


_STACK = _GraphStack()


class _DefaultGraphContext:
    def __init__(self, graph: Graph) -> None:
        self._graph = graph

    def __enter__(self) -> Graph:
        _STACK.stack.append(self._graph)
        return self._graph

    def __exit__(self, *exc_info: object) -> None:
        _STACK.stack.pop()


def get_default_graph() -> Graph:
    """The innermost graph opened with ``as_default`` (or the root one)."""
    return _STACK.stack[-1]


def default_graph() -> Graph:
    """Alias kept for API familiarity."""
    return get_default_graph()


def reset_default_graph() -> Graph:
    """Replace the root default graph (test isolation)."""
    _STACK.stack[:] = [Graph()]
    return _STACK.stack[0]
