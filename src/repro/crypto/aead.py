"""A uniform AEAD interface with a nonce-managing key wrapper.

The shields and CAS never call ciphers directly; they hold an
:class:`AeadKey`, which owns a monotonically increasing nonce counter so
that nonce reuse — the classic AEAD catastrophe — is impossible by
construction within one key's lifetime.

:func:`get_aead` memoizes cipher objects per ``(cipher, key)``.  AES-GCM
in particular does real per-key setup (key schedule plus GHASH tables),
so re-deriving the same object on every file read would dominate small
operations.  Cipher objects are stateless after construction — nonces
live in :class:`AeadKey` — which is what makes sharing them safe.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Dict, Protocol, Tuple, Type

from repro.crypto.chacha import ChaCha20Poly1305
from repro.crypto.gcm import AesGcm
from repro.errors import ConfigurationError


class Aead(Protocol):
    """Structural interface all AEAD ciphers implement."""

    NONCE_SIZE: int
    TAG_SIZE: int

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes: ...

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes: ...


_CIPHERS: Dict[str, Type] = {
    "chacha20-poly1305": ChaCha20Poly1305,
    "aes-256-gcm": AesGcm,
    "aes-128-gcm": AesGcm,
}

_KEY_SIZES: Dict[str, int] = {
    "chacha20-poly1305": 32,
    "aes-256-gcm": 32,
    "aes-128-gcm": 16,
}


# Process-wide cipher-object cache.  Bounded LRU so long-running
# simulations with many ephemeral session keys can't grow it forever.
_AEAD_CACHE: "OrderedDict[Tuple[str, bytes], Aead]" = OrderedDict()
_AEAD_CACHE_CAPACITY = 64
_aead_cache_hits = 0
_aead_cache_misses = 0


def get_aead(cipher: str, key: bytes) -> Aead:
    """Return a (cached) instance of a named AEAD cipher with ``key``."""
    global _aead_cache_hits, _aead_cache_misses
    if cipher not in _CIPHERS:
        raise ConfigurationError(
            f"unknown AEAD cipher {cipher!r}; known: {sorted(_CIPHERS)}"
        )
    expected = _KEY_SIZES[cipher]
    if len(key) != expected:
        raise ConfigurationError(
            f"{cipher} needs a {expected}-byte key, got {len(key)}"
        )
    cache_key = (cipher, key)
    cached = _AEAD_CACHE.get(cache_key)
    if cached is not None:
        _AEAD_CACHE.move_to_end(cache_key)
        _aead_cache_hits += 1
        return cached
    _aead_cache_misses += 1
    aead = _CIPHERS[cipher](key)
    _AEAD_CACHE[cache_key] = aead
    while len(_AEAD_CACHE) > _AEAD_CACHE_CAPACITY:
        _AEAD_CACHE.popitem(last=False)
    return aead


def aead_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters for the process-wide cipher cache."""
    return {
        "hits": _aead_cache_hits,
        "misses": _aead_cache_misses,
        "size": len(_AEAD_CACHE),
    }


def reset_aead_cache() -> None:
    """Drop all cached cipher objects and zero the counters (test hook)."""
    global _aead_cache_hits, _aead_cache_misses
    _AEAD_CACHE.clear()
    _aead_cache_hits = 0
    _aead_cache_misses = 0


def key_size(cipher: str) -> int:
    """Key size in bytes for a named cipher."""
    if cipher not in _KEY_SIZES:
        raise ConfigurationError(f"unknown AEAD cipher {cipher!r}")
    return _KEY_SIZES[cipher]


class AeadKey:
    """An AEAD key bound to a cipher with automatic nonce sequencing.

    Nonces are ``4-byte prefix || 8-byte big-endian counter``.  Callers
    that need random-access decryption (the file-system shield) pass
    explicit sequence numbers instead.
    """

    def __init__(self, cipher: str, key: bytes, nonce_prefix: bytes = b"\x00" * 4) -> None:
        if len(nonce_prefix) != 4:
            raise ConfigurationError("nonce prefix must be 4 bytes")
        self._cipher_name = cipher
        self._aead = get_aead(cipher, key)
        self._prefix = nonce_prefix
        self._counter = 0

    @property
    def cipher(self) -> str:
        return self._cipher_name

    @property
    def messages_sealed(self) -> int:
        return self._counter

    def _nonce(self, sequence: int) -> bytes:
        return self._prefix + struct.pack(">Q", sequence)

    def seal(self, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt with the next sequence number; returns seq || ct || tag."""
        sequence = self._counter
        self._counter += 1
        body = self._aead.encrypt(self._nonce(sequence), plaintext, aad)
        return struct.pack(">Q", sequence) + body

    def open(self, sealed: bytes, aad: bytes = b"") -> bytes:
        """Decrypt a :meth:`seal` output (sequence number is embedded)."""
        if len(sealed) < 8:
            raise ConfigurationError("sealed message shorter than its header")
        (sequence,) = struct.unpack(">Q", sealed[:8])
        return self._aead.decrypt(self._nonce(sequence), sealed[8:], aad)

    def seal_at(self, sequence: int, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt at an explicit sequence number (no header prepended)."""
        return self._aead.encrypt(self._nonce(sequence), plaintext, aad)

    def open_at(self, sequence: int, data: bytes, aad: bytes = b"") -> bytes:
        """Decrypt data sealed with :meth:`seal_at` at ``sequence``."""
        return self._aead.decrypt(self._nonce(sequence), data, aad)
