"""X25519 Diffie-Hellman over Curve25519 (RFC 7748).

Used by the TLS-like channel for ephemeral key agreement (the paper
recommends replacing RSA with forward-secret ECDHE, §7.3).  Implemented
with the standard Montgomery ladder; verified against RFC 7748 vectors.
"""

from __future__ import annotations

from repro.errors import SecurityError

_P = 2**255 - 19
_A24 = 121665


def _clamp(scalar: bytes) -> int:
    if len(scalar) != 32:
        raise ValueError(f"X25519 scalar must be 32 bytes, got {len(scalar)}")
    k = bytearray(scalar)
    k[0] &= 248
    k[31] &= 127
    k[31] |= 64
    return int.from_bytes(k, "little")


def _decode_u(u: bytes) -> int:
    if len(u) != 32:
        raise ValueError(f"X25519 point must be 32 bytes, got {len(u)}")
    masked = bytearray(u)
    masked[31] &= 127
    return int.from_bytes(masked, "little") % _P


def x25519(scalar: bytes, u_point: bytes) -> bytes:
    """Scalar multiplication: returns ``scalar * u_point`` on Curve25519."""
    k = _clamp(scalar)
    u = _decode_u(u_point)

    x1 = u
    x2, z2 = 1, 0
    x3, z3 = u, 1
    swap = 0
    for t in range(254, -1, -1):
        k_t = (k >> t) & 1
        swap ^= k_t
        if swap:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = k_t

        a = (x2 + z2) % _P
        aa = (a * a) % _P
        b = (x2 - z2) % _P
        bb = (b * b) % _P
        e = (aa - bb) % _P
        c = (x3 + z3) % _P
        d = (x3 - z3) % _P
        da = (d * a) % _P
        cb = (c * b) % _P
        x3 = (da + cb) % _P
        x3 = (x3 * x3) % _P
        z3 = (da - cb) % _P
        z3 = (x1 * z3 * z3) % _P
        x2 = (aa * bb) % _P
        z2 = (e * (aa + _A24 * e)) % _P

    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2

    result = (x2 * pow(z2, _P - 2, _P)) % _P
    return result.to_bytes(32, "little")


_BASE_POINT = (9).to_bytes(32, "little")


class X25519PrivateKey:
    """An X25519 private key (32 opaque bytes)."""

    def __init__(self, private_bytes: bytes) -> None:
        if len(private_bytes) != 32:
            raise ValueError("X25519 private key must be 32 bytes")
        self._private = private_bytes

    @classmethod
    def generate(cls, random_bytes: bytes) -> "X25519PrivateKey":
        """Build a key from caller-supplied randomness (32 bytes)."""
        return cls(random_bytes)

    def public_key(self) -> "X25519PublicKey":
        return X25519PublicKey(x25519(self._private, _BASE_POINT))

    def exchange(self, peer: "X25519PublicKey") -> bytes:
        """Compute the shared secret with ``peer``; rejects low-order points."""
        shared = x25519(self._private, peer.public_bytes())
        if shared == b"\x00" * 32:
            raise SecurityError("X25519 produced an all-zero shared secret")
        return shared


class X25519PublicKey:
    """An X25519 public key (curve point, 32 bytes)."""

    def __init__(self, public_bytes: bytes) -> None:
        if len(public_bytes) != 32:
            raise ValueError("X25519 public key must be 32 bytes")
        self._public = public_bytes

    def public_bytes(self) -> bytes:
        return self._public

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, X25519PublicKey) and self._public == other._public
        )

    def __hash__(self) -> int:
        return hash(self._public)
