"""Minimal certificates and a certificate authority.

The paper's CAS generates TLS certificates *inside* its enclave so no
human ever sees the private keys (§7.3).  This module provides the
certificate format those flows use: a canonically encoded body
(subject, public keys, validity, extensions) signed with Ed25519, plus
chain validation against a trusted root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.crypto import encoding
from repro.crypto.ed25519 import Ed25519PrivateKey, Ed25519PublicKey
from repro.errors import IntegrityError, SecurityError


@dataclass(frozen=True)
class Certificate:
    """A signed binding of a subject name to its public keys."""

    subject: str
    issuer: str
    ed25519_public: bytes
    x25519_public: bytes
    not_before: float
    not_after: float
    serial: int
    extensions: Dict[str, str]
    signature: bytes = b""

    def body_bytes(self) -> bytes:
        """The canonical to-be-signed representation."""
        return encoding.encode(
            {
                "subject": self.subject,
                "issuer": self.issuer,
                "ed25519_public": self.ed25519_public,
                "x25519_public": self.x25519_public,
                "not_before": self.not_before,
                "not_after": self.not_after,
                "serial": self.serial,
                "extensions": dict(self.extensions),
            }
        )

    def to_bytes(self) -> bytes:
        return encoding.encode({"body": self.body_bytes(), "signature": self.signature})

    @classmethod
    def from_bytes(cls, data: bytes) -> "Certificate":
        outer = encoding.decode(data)
        if not isinstance(outer, dict) or set(outer) != {"body", "signature"}:
            raise IntegrityError("malformed certificate envelope")
        body = encoding.decode(outer["body"])
        try:
            return cls(
                subject=body["subject"],
                issuer=body["issuer"],
                ed25519_public=body["ed25519_public"],
                x25519_public=body["x25519_public"],
                not_before=body["not_before"],
                not_after=body["not_after"],
                serial=body["serial"],
                extensions=dict(body["extensions"]),
                signature=outer["signature"],
            )
        except (KeyError, TypeError) as exc:
            raise IntegrityError("malformed certificate body") from exc

    def verify_signature(self, issuer_key: Ed25519PublicKey) -> None:
        """Check the issuer's signature over the certificate body."""
        issuer_key.verify(self.signature, self.body_bytes())

    def check_validity(self, now: float) -> None:
        if not (self.not_before <= now <= self.not_after):
            raise SecurityError(
                f"certificate for {self.subject!r} not valid at t={now:.3f} "
                f"(window [{self.not_before:.3f}, {self.not_after:.3f}])"
            )

    def signing_key(self) -> Ed25519PublicKey:
        return Ed25519PublicKey(self.ed25519_public)


@dataclass
class CertificateAuthority:
    """Issues and validates certificates under a self-signed root.

    In the reproduction the root key lives inside the CAS enclave; tests
    also instantiate standalone CAs to exercise chain validation.
    """

    name: str
    root_key: Ed25519PrivateKey
    validity_seconds: float = 365.0 * 24 * 3600
    #: notBefore is backdated by this much — standard CA practice so that
    #: verifiers with slightly-behind clocks (distinct per-node clocks in
    #: this simulation, NTP skew in reality) accept fresh certificates.
    backdate_seconds: float = 300.0
    _serial: int = field(default=0, init=False)

    def root_certificate(self, now: float = 0.0) -> Certificate:
        """The self-signed root certificate."""
        return self.issue(
            subject=self.name,
            ed25519_public=self.root_key.public_key().public_bytes(),
            x25519_public=b"\x00" * 32,
            now=now,
            extensions={"ca": "true"},
        )

    def issue(
        self,
        subject: str,
        ed25519_public: bytes,
        x25519_public: bytes,
        now: float,
        extensions: Optional[Dict[str, str]] = None,
    ) -> Certificate:
        """Issue a certificate for ``subject`` signed by this CA."""
        self._serial += 1
        cert = Certificate(
            subject=subject,
            issuer=self.name,
            ed25519_public=ed25519_public,
            x25519_public=x25519_public,
            not_before=now - self.backdate_seconds,
            not_after=now + self.validity_seconds,
            serial=self._serial,
            extensions=dict(extensions or {}),
        )
        signature = self.root_key.sign(cert.body_bytes())
        return Certificate(**{**cert.__dict__, "signature": signature})

    def public_key(self) -> Ed25519PublicKey:
        return self.root_key.public_key()


def verify_chain(
    leaf: Certificate,
    trusted_roots: List[Ed25519PublicKey],
    now: float,
) -> None:
    """Validate a leaf certificate against a set of trusted root keys.

    The CA model here is one level deep (CAS root → service leaf), which
    matches the paper's deployment; a full chain walk is unnecessary.
    """
    leaf.check_validity(now)
    errors = []
    for root in trusted_roots:
        try:
            leaf.verify_signature(root)
            return
        except IntegrityError as exc:
            errors.append(str(exc))
    raise SecurityError(
        f"certificate for {leaf.subject!r} is not signed by any trusted root"
    )
