"""Constant-time primitives shared by the AEAD implementations.

Tag comparison must not leak *where* two MACs diverge: an early-exit
``==`` lets a byte-at-a-time forgery attack time its way to a valid tag.
Both AEADs (:mod:`repro.crypto.gcm`, :mod:`repro.crypto.chacha`) verify
through this one helper so the property is enforced in a single place.
"""

from __future__ import annotations


def ct_eq(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit on mismatch."""
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0
