"""ChaCha20-Poly1305 AEAD (RFC 8439), numpy-vectorized.

This is the workhorse cipher of the file-system and network shields: the
ChaCha20 keystream for all blocks of a message is generated in one
vectorized pass over a ``uint32`` matrix, which makes pure-Python bulk
encryption practical (tens of MB/s).

Poly1305 is vectorized too for long messages: blocks are split into S
interleaved stripes, each stripe runs Horner's rule with the shared
multiplier r^S, and all S stripe accumulators advance in lockstep as
radix-2^26 limb vectors (five ``uint64`` numpy arrays, products bounded
below 2^58 by a carry chain each step).  A final serial Horner pass over
the S stripe results with r itself recombines them — algebraically
identical to the straight serial evaluation, and asserted byte-identical
to :func:`poly1305_mac_reference` by the property tests.  Short messages
take the plain bigint loop, which wins below a few KB.

Verified against the RFC 8439 test vectors in the test suite.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.crypto._ct import ct_eq
from repro.errors import IntegrityError

_CONSTANTS = np.array(
    [0x61707865, 0x3320646E, 0x79622D32, 0x6B206574], dtype=np.uint32
)


def _rotl(x: np.ndarray, n: int) -> np.ndarray:
    return (x << np.uint32(n)) | (x >> np.uint32(32 - n))


def _quarter_round(state: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    """One ChaCha quarter round applied across all blocks at once.

    ``state`` has shape (16, n_blocks); rows are the ChaCha state words.
    """
    state[a] += state[b]
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] += state[d]
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] += state[b]
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] += state[d]
    state[b] = _rotl(state[b] ^ state[c], 7)


def chacha20_keystream(key: bytes, nonce: bytes, counter: int, n_bytes: int) -> bytes:
    """Generate ``n_bytes`` of ChaCha20 keystream starting at ``counter``."""
    if len(key) != 32:
        raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
    if len(nonce) != 12:
        raise ValueError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")
    if n_bytes == 0:
        return b""
    n_blocks = -(-n_bytes // 64)
    key_words = np.frombuffer(key, dtype="<u4").astype(np.uint32)
    nonce_words = np.frombuffer(nonce, dtype="<u4").astype(np.uint32)

    state = np.empty((16, n_blocks), dtype=np.uint32)
    state[0:4] = _CONSTANTS[:, None]
    state[4:12] = key_words[:, None]
    state[12] = (np.arange(n_blocks, dtype=np.uint64) + np.uint64(counter)).astype(
        np.uint32
    )
    state[13:16] = nonce_words[:, None]

    working = state.copy()
    with np.errstate(over="ignore"):
        for _ in range(10):
            # Column rounds.
            _quarter_round(working, 0, 4, 8, 12)
            _quarter_round(working, 1, 5, 9, 13)
            _quarter_round(working, 2, 6, 10, 14)
            _quarter_round(working, 3, 7, 11, 15)
            # Diagonal rounds.
            _quarter_round(working, 0, 5, 10, 15)
            _quarter_round(working, 1, 6, 11, 12)
            _quarter_round(working, 2, 7, 8, 13)
            _quarter_round(working, 3, 4, 9, 14)
        working += state
    # Serialize: per block, 16 little-endian words.
    stream = working.T.astype("<u4").tobytes()
    return stream[:n_bytes]


def chacha20_xor(key: bytes, nonce: bytes, counter: int, data: bytes) -> bytes:
    """XOR ``data`` with the ChaCha20 keystream (encrypts and decrypts)."""
    stream = chacha20_keystream(key, nonce, counter, len(data))
    a = np.frombuffer(data, dtype=np.uint8)
    b = np.frombuffer(stream, dtype=np.uint8)
    return (a ^ b).tobytes()


_P1305 = (1 << 130) - 5
_M26 = np.uint64((1 << 26) - 1)
_HI_BIT = 1 << 128
# Below this many full blocks the serial bigint loop is faster than the
# numpy setup cost.
_BULK_MIN_BLOCKS = 512


def poly1305_mac_reference(key: bytes, message: bytes) -> bytes:
    """Poly1305 one-time authenticator (RFC 8439 §2.5), serial bigints.

    The oracle the vectorized path is tested against.
    """
    if len(key) != 32:
        raise ValueError(f"Poly1305 key must be 32 bytes, got {len(key)}")
    r = int.from_bytes(key[:16], "little") & 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
    s = int.from_bytes(key[16:], "little")
    acc = 0
    for offset in range(0, len(message), 16):
        chunk = message[offset: offset + 16]
        n = int.from_bytes(chunk + b"\x01", "little")
        acc = ((acc + n) * r) % _P1305
    acc = (acc + s) & ((1 << 128) - 1)
    return acc.to_bytes(16, "little")


def _limbs26(x: int) -> list:
    return [(x >> (26 * i)) & ((1 << 26) - 1) for i in range(5)]


def _poly1305_bulk(r: int, blocks: np.ndarray, stripes: int) -> int:
    """Evaluate ``sum c_j * r^(N-j)`` over N = m*stripes full blocks.

    ``blocks`` is (N, 16) uint8.  Block j goes to stripe j % stripes;
    each stripe is a Horner chain with multiplier r^stripes, and all
    stripes advance together as radix-2^26 limb vectors.  Limbs stay
    below ~2^27 thanks to the carry chain (including the 5*carry
    wrap-around fold), so every limb product fits uint64.
    """
    n_blocks = blocks.shape[0]
    m = n_blocks // stripes
    b = blocks.astype(np.uint64)

    def le32(k: int) -> np.ndarray:
        return (
            b[:, k]
            | (b[:, k + 1] << np.uint64(8))
            | (b[:, k + 2] << np.uint64(16))
            | (b[:, k + 3] << np.uint64(24))
        )

    l0 = (le32(0) & _M26).reshape(m, stripes)
    l1 = ((le32(3) >> np.uint64(2)) & _M26).reshape(m, stripes)
    l2 = ((le32(6) >> np.uint64(4)) & _M26).reshape(m, stripes)
    l3 = ((le32(9) >> np.uint64(6)) & _M26).reshape(m, stripes)
    l4 = ((le32(12) >> np.uint64(8)) | np.uint64(1 << 24)).reshape(m, stripes)

    r_s = pow(r, stripes, _P1305)
    r0, r1, r2, r3, r4 = (np.uint64(v) for v in _limbs26(r_s))
    f1, f2, f3, f4 = (np.uint64(5 * v) for v in _limbs26(r_s)[1:])

    a0 = l0[0].copy()
    a1 = l1[0].copy()
    a2 = l2[0].copy()
    a3 = l3[0].copy()
    a4 = l4[0].copy()
    s26 = np.uint64(26)
    five = np.uint64(5)
    for i in range(1, m):
        t0 = a0 * r0 + a1 * f4 + a2 * f3 + a3 * f2 + a4 * f1
        t1 = a0 * r1 + a1 * r0 + a2 * f4 + a3 * f3 + a4 * f2
        t2 = a0 * r2 + a1 * r1 + a2 * r0 + a3 * f4 + a4 * f3
        t3 = a0 * r3 + a1 * r2 + a2 * r1 + a3 * r0 + a4 * f4
        t4 = a0 * r4 + a1 * r3 + a2 * r2 + a3 * r1 + a4 * r0
        c = t0 >> s26; t0 &= _M26; t1 += c
        c = t1 >> s26; t1 &= _M26; t2 += c
        c = t2 >> s26; t2 &= _M26; t3 += c
        c = t3 >> s26; t3 &= _M26; t4 += c
        c = t4 >> s26; t4 &= _M26; t0 += five * c
        c = t0 >> s26; t0 &= _M26; t1 += c
        a0 = t0 + l0[i]
        a1 = t1 + l1[i]
        a2 = t2 + l2[i]
        a3 = t3 + l3[i]
        a4 = t4 + l4[i]
    v0 = a0.tolist()
    v1 = a1.tolist()
    v2 = a2.tolist()
    v3 = a3.tolist()
    v4 = a4.tolist()
    acc = 0
    for s in range(stripes):
        stripe = (
            v0[s] + (v1[s] << 26) + (v2[s] << 52) + (v3[s] << 78) + (v4[s] << 104)
        )
        acc = (acc + stripe) * r % _P1305
    return acc


def poly1305_mac(key: bytes, message: bytes, _min_blocks: int = _BULK_MIN_BLOCKS) -> bytes:
    """Poly1305 one-time authenticator (RFC 8439 §2.5).

    Long messages run through the striped numpy evaluator; the tail and
    short messages through the serial loop.  ``_min_blocks`` exists so
    tests can force the bulk path on small inputs.
    """
    if len(key) != 32:
        raise ValueError(f"Poly1305 key must be 32 bytes, got {len(key)}")
    r = int.from_bytes(key[:16], "little") & 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
    s = int.from_bytes(key[16:], "little")
    n = len(message)
    n_full = n // 16
    acc = 0
    offset = 0
    if r != 0 and n_full >= _min_blocks:
        # Stripe count: power of two scaled to message size so each
        # stripe still has enough blocks to amortize the numpy setup.
        stripes = 1 << max(2, min(11, (n_full // 8).bit_length() - 1))
        while stripes > n_full:
            stripes >>= 1
        bulk_blocks = (n_full // stripes) * stripes
        blocks = np.frombuffer(
            message, dtype=np.uint8, count=bulk_blocks * 16
        ).reshape(bulk_blocks, 16)
        acc = _poly1305_bulk(r, blocks, stripes)
        offset = bulk_blocks * 16
    fb = int.from_bytes
    full = n_full * 16
    while offset < full:
        acc = (acc + (fb(message[offset: offset + 16], "little") | _HI_BIT)) * r % _P1305
        offset += 16
    if offset < n:
        acc = (acc + fb(message[offset:] + b"\x01", "little")) * r % _P1305
    acc %= _P1305
    acc = (acc + s) & ((1 << 128) - 1)
    return acc.to_bytes(16, "little")


def _pad16(data: bytes) -> bytes:
    if len(data) % 16 == 0:
        return b""
    return b"\x00" * (16 - len(data) % 16)


class ChaCha20Poly1305:
    """RFC 8439 AEAD construction."""

    NONCE_SIZE = 12
    TAG_SIZE = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != 32:
            raise ValueError(f"key must be 32 bytes, got {len(key)}")
        self._key = key

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        otk = chacha20_keystream(self._key, nonce, 0, 32)
        mac_data = (
            aad
            + _pad16(aad)
            + ciphertext
            + _pad16(ciphertext)
            + struct.pack("<QQ", len(aad), len(ciphertext))
        )
        return poly1305_mac(otk, mac_data)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ciphertext || tag."""
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"nonce must be 12 bytes, got {len(nonce)}")
        ciphertext = chacha20_xor(self._key, nonce, 1, plaintext)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt; raises IntegrityError on tampering."""
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"nonce must be 12 bytes, got {len(nonce)}")
        if len(data) < self.TAG_SIZE:
            raise IntegrityError("ciphertext shorter than the Poly1305 tag")
        ciphertext, tag = data[: -self.TAG_SIZE], data[-self.TAG_SIZE:]
        expected = self._tag(nonce, aad, ciphertext)
        if not ct_eq(expected, tag):
            raise IntegrityError("Poly1305 tag verification failed")
        return chacha20_xor(self._key, nonce, 1, ciphertext)
