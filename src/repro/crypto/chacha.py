"""ChaCha20-Poly1305 AEAD (RFC 8439), numpy-vectorized.

This is the workhorse cipher of the file-system and network shields: the
ChaCha20 keystream for all blocks of a message is generated in one
vectorized pass over a ``uint32`` matrix, which makes pure-Python bulk
encryption practical (tens of MB/s).  Poly1305 runs over 16-byte chunks
with Python big integers.

Verified against the RFC 8439 test vectors in the test suite.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import IntegrityError

_CONSTANTS = np.array(
    [0x61707865, 0x3320646E, 0x79622D32, 0x6B206574], dtype=np.uint32
)


def _rotl(x: np.ndarray, n: int) -> np.ndarray:
    return (x << np.uint32(n)) | (x >> np.uint32(32 - n))


def _quarter_round(state: np.ndarray, a: int, b: int, c: int, d: int) -> None:
    """One ChaCha quarter round applied across all blocks at once.

    ``state`` has shape (16, n_blocks); rows are the ChaCha state words.
    """
    state[a] += state[b]
    state[d] = _rotl(state[d] ^ state[a], 16)
    state[c] += state[d]
    state[b] = _rotl(state[b] ^ state[c], 12)
    state[a] += state[b]
    state[d] = _rotl(state[d] ^ state[a], 8)
    state[c] += state[d]
    state[b] = _rotl(state[b] ^ state[c], 7)


def chacha20_keystream(key: bytes, nonce: bytes, counter: int, n_bytes: int) -> bytes:
    """Generate ``n_bytes`` of ChaCha20 keystream starting at ``counter``."""
    if len(key) != 32:
        raise ValueError(f"ChaCha20 key must be 32 bytes, got {len(key)}")
    if len(nonce) != 12:
        raise ValueError(f"ChaCha20 nonce must be 12 bytes, got {len(nonce)}")
    if n_bytes == 0:
        return b""
    n_blocks = -(-n_bytes // 64)
    key_words = np.frombuffer(key, dtype="<u4").astype(np.uint32)
    nonce_words = np.frombuffer(nonce, dtype="<u4").astype(np.uint32)

    state = np.empty((16, n_blocks), dtype=np.uint32)
    state[0:4] = _CONSTANTS[:, None]
    state[4:12] = key_words[:, None]
    state[12] = (np.arange(n_blocks, dtype=np.uint64) + np.uint64(counter)).astype(
        np.uint32
    )
    state[13:16] = nonce_words[:, None]

    working = state.copy()
    with np.errstate(over="ignore"):
        for _ in range(10):
            # Column rounds.
            _quarter_round(working, 0, 4, 8, 12)
            _quarter_round(working, 1, 5, 9, 13)
            _quarter_round(working, 2, 6, 10, 14)
            _quarter_round(working, 3, 7, 11, 15)
            # Diagonal rounds.
            _quarter_round(working, 0, 5, 10, 15)
            _quarter_round(working, 1, 6, 11, 12)
            _quarter_round(working, 2, 7, 8, 13)
            _quarter_round(working, 3, 4, 9, 14)
        working += state
    # Serialize: per block, 16 little-endian words.
    stream = working.T.astype("<u4").tobytes()
    return stream[:n_bytes]


def chacha20_xor(key: bytes, nonce: bytes, counter: int, data: bytes) -> bytes:
    """XOR ``data`` with the ChaCha20 keystream (encrypts and decrypts)."""
    stream = chacha20_keystream(key, nonce, counter, len(data))
    a = np.frombuffer(data, dtype=np.uint8)
    b = np.frombuffer(stream, dtype=np.uint8)
    return (a ^ b).tobytes()


_P1305 = (1 << 130) - 5


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Poly1305 one-time authenticator (RFC 8439 §2.5)."""
    if len(key) != 32:
        raise ValueError(f"Poly1305 key must be 32 bytes, got {len(key)}")
    r = int.from_bytes(key[:16], "little") & 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
    s = int.from_bytes(key[16:], "little")
    acc = 0
    for offset in range(0, len(message), 16):
        chunk = message[offset: offset + 16]
        n = int.from_bytes(chunk + b"\x01", "little")
        acc = ((acc + n) * r) % _P1305
    acc = (acc + s) & ((1 << 128) - 1)
    return acc.to_bytes(16, "little")


def _pad16(data: bytes) -> bytes:
    if len(data) % 16 == 0:
        return b""
    return b"\x00" * (16 - len(data) % 16)


class ChaCha20Poly1305:
    """RFC 8439 AEAD construction."""

    NONCE_SIZE = 12
    TAG_SIZE = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != 32:
            raise ValueError(f"key must be 32 bytes, got {len(key)}")
        self._key = key

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        otk = chacha20_keystream(self._key, nonce, 0, 32)
        mac_data = (
            aad
            + _pad16(aad)
            + ciphertext
            + _pad16(ciphertext)
            + struct.pack("<QQ", len(aad), len(ciphertext))
        )
        return poly1305_mac(otk, mac_data)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ciphertext || tag."""
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"nonce must be 12 bytes, got {len(nonce)}")
        ciphertext = chacha20_xor(self._key, nonce, 1, plaintext)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt; raises IntegrityError on tampering."""
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"nonce must be 12 bytes, got {len(nonce)}")
        if len(data) < self.TAG_SIZE:
            raise IntegrityError("ciphertext shorter than the Poly1305 tag")
        ciphertext, tag = data[: -self.TAG_SIZE], data[-self.TAG_SIZE:]
        expected = self._tag(nonce, aad, ciphertext)
        if not _ct_eq(expected, tag):
            raise IntegrityError("Poly1305 tag verification failed")
        return chacha20_xor(self._key, nonce, 1, ciphertext)


def _ct_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0
