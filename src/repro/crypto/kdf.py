"""HMAC-SHA256 and HKDF (RFC 5869), plus the TLS 1.3 Expand-Label form.

All session keys in the shields and CAS are derived through HKDF so that
compromise of one derived key never reveals siblings (standard key
separation).  ``hkdf_expand_label`` mirrors RFC 8446 §7.1 so the TLS-like
channel's key schedule reads like the real thing.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import struct

_HASH_LEN = 32


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA256 of ``data`` under ``key``."""
    return _hmac.new(key, data, hashlib.sha256).digest()


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """HKDF-Extract: concentrate input keying material into a PRK."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac_sha256(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF-Expand: derive ``length`` bytes of output keying material."""
    if length <= 0:
        raise ValueError(f"requested non-positive key length: {length}")
    if length > 255 * _HASH_LEN:
        raise ValueError(f"HKDF output too long: {length}")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac_sha256(prk, previous + info + bytes([counter]))
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def hkdf(salt: bytes, ikm: bytes, info: bytes, length: int) -> bytes:
    """One-shot HKDF (extract then expand)."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)


def hkdf_expand_label(secret: bytes, label: str, context: bytes, length: int) -> bytes:
    """TLS 1.3 HKDF-Expand-Label (RFC 8446 §7.1)."""
    full_label = b"tls13 " + label.encode("ascii")
    if len(full_label) > 255 or len(context) > 255:
        raise ValueError("label or context too long for HkdfLabel encoding")
    hkdf_label = (
        struct.pack(">H", length)
        + bytes([len(full_label)])
        + full_label
        + bytes([len(context)])
        + context
    )
    return hkdf_expand(secret, hkdf_label, length)


def sha256(data: bytes) -> bytes:
    """SHA-256 digest (convenience re-export used across the library)."""
    return hashlib.sha256(data).digest()
