"""Canonical binary encoding (a deterministic mini-CBOR).

Signatures and measurements must cover a *byte-exact* representation, so
the library needs a deterministic serialization of structured values.
This module provides one: a small tag-length-value format over
``None``/``bool``/``int``/``float``/``bytes``/``str``/``list``/``dict``
with dictionary keys sorted, so ``encode(x)`` is a pure function of the
value.  Quotes, certificates, checkpoints, Lite models, and CAS records
all use it.
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

from repro.errors import IntegrityError

_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_BYTES = 0x05
_T_STR = 0x06
_T_LIST = 0x07
_T_DICT = 0x08


def encode(value: Any) -> bytes:
    """Deterministically encode ``value`` to bytes."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        payload = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        out.append(_T_INT)
        out.extend(struct.pack(">I", len(payload)))
        out.extend(payload)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(_T_BYTES)
        out.extend(struct.pack(">I", len(raw)))
        out.extend(raw)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out.extend(struct.pack(">I", len(raw)))
        out.extend(raw)
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST)
        out.extend(struct.pack(">I", len(value)))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        keys = list(value.keys())
        if not all(isinstance(k, str) for k in keys):
            raise TypeError("canonical encoding requires string dict keys")
        out.append(_T_DICT)
        out.extend(struct.pack(">I", len(keys)))
        for key in sorted(keys):
            _encode_into(key, out)
            _encode_into(value[key], out)
    else:
        raise TypeError(f"cannot canonically encode {type(value).__name__}")


def decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode`.

    Raises :class:`IntegrityError` on malformed input (truncated, trailing
    garbage, unknown tags) — decoders in this library always face
    attacker-controlled bytes.
    """
    value, offset = _decode_at(data, 0)
    if offset != len(data):
        raise IntegrityError("trailing bytes after canonical value")
    return value


def _read(data: bytes, offset: int, n: int) -> Tuple[bytes, int]:
    if offset + n > len(data):
        raise IntegrityError("truncated canonical value")
    return data[offset: offset + n], offset + n


def _decode_at(data: bytes, offset: int) -> Tuple[Any, int]:
    tag_bytes, offset = _read(data, offset, 1)
    tag = tag_bytes[0]
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        raw, offset = _read(data, offset, 4)
        (length,) = struct.unpack(">I", raw)
        payload, offset = _read(data, offset, length)
        return int.from_bytes(payload, "big", signed=True), offset
    if tag == _T_FLOAT:
        raw, offset = _read(data, offset, 8)
        return struct.unpack(">d", raw)[0], offset
    if tag == _T_BYTES:
        raw, offset = _read(data, offset, 4)
        (length,) = struct.unpack(">I", raw)
        payload, offset = _read(data, offset, length)
        return payload, offset
    if tag == _T_STR:
        raw, offset = _read(data, offset, 4)
        (length,) = struct.unpack(">I", raw)
        payload, offset = _read(data, offset, length)
        try:
            return payload.decode("utf-8"), offset
        except UnicodeDecodeError as exc:
            raise IntegrityError("invalid UTF-8 in canonical string") from exc
    if tag == _T_LIST:
        raw, offset = _read(data, offset, 4)
        (count,) = struct.unpack(">I", raw)
        items = []
        for _ in range(count):
            item, offset = _decode_at(data, offset)
            items.append(item)
        return items, offset
    if tag == _T_DICT:
        raw, offset = _read(data, offset, 4)
        (count,) = struct.unpack(">I", raw)
        result = {}
        previous_key = None
        for _ in range(count):
            key, offset = _decode_at(data, offset)
            if not isinstance(key, str):
                raise IntegrityError("canonical dict key must be a string")
            if previous_key is not None and key <= previous_key:
                raise IntegrityError("canonical dict keys out of order")
            previous_key = key
            value, offset = _decode_at(data, offset)
            result[key] = value
        return result, offset
    raise IntegrityError(f"unknown canonical tag 0x{tag:02x}")
