"""From-scratch cryptographic substrate for the secureTF reproduction.

The paper's shields (file-system, network) and CAS all rest on standard
primitives: AEAD encryption, key derivation, Diffie-Hellman key exchange,
signatures, and certificates.  No third-party crypto package is available
offline, so this package implements them directly:

- :mod:`repro.crypto.aes` — AES-128/192/256 block cipher (table based).
- :mod:`repro.crypto.gcm` — AES-GCM authenticated encryption.
- :mod:`repro.crypto.chacha` — ChaCha20-Poly1305 AEAD (numpy-vectorized;
  the default cipher for the shields because it is fast in pure Python).
- :mod:`repro.crypto.kdf` — HMAC, HKDF-Extract/Expand (RFC 5869).
- :mod:`repro.crypto.x25519` — Curve25519 ECDH (RFC 7748).
- :mod:`repro.crypto.ed25519` — Ed25519 signatures (RFC 8032).
- :mod:`repro.crypto.certs` — minimal certificates and chain validation.
- :mod:`repro.crypto.tls` — a TLS-1.3-shaped secure channel (ECDHE
  handshake, HKDF key schedule, AEAD record layer with replay protection).
- :mod:`repro.crypto.masking` — fixed-point additive secret sharing over
  Z_2^64 for the secure-aggregation training mode.

These are real implementations operating on real bytes — tests verify
them against RFC test vectors — but they are **not constant-time** and
must never be used outside this simulation.
"""

from repro.crypto.aead import Aead, AeadKey, get_aead
from repro.crypto.aes import AES
from repro.crypto.chacha import ChaCha20Poly1305
from repro.crypto.gcm import AesGcm
from repro.crypto.kdf import hkdf_expand, hkdf_extract, hkdf_expand_label, hmac_sha256
from repro.crypto.x25519 import X25519PrivateKey, X25519PublicKey, x25519
from repro.crypto.ed25519 import Ed25519PrivateKey, Ed25519PublicKey
from repro.crypto.certs import Certificate, CertificateAuthority
from repro.crypto.masking import (
    additive_shares,
    combine_shares,
    combine_tensor_shares,
    decode_fixed,
    encode_fixed,
    share_tensors,
)

__all__ = [
    "AES",
    "AesGcm",
    "ChaCha20Poly1305",
    "Aead",
    "AeadKey",
    "get_aead",
    "hmac_sha256",
    "hkdf_extract",
    "hkdf_expand",
    "hkdf_expand_label",
    "x25519",
    "X25519PrivateKey",
    "X25519PublicKey",
    "Ed25519PrivateKey",
    "Ed25519PublicKey",
    "Certificate",
    "CertificateAuthority",
    "additive_shares",
    "combine_shares",
    "combine_tensor_shares",
    "decode_fixed",
    "encode_fixed",
    "share_tensors",
]
