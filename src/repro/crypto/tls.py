"""A TLS-1.3-shaped secure channel.

The network shield wraps every socket in this channel (paper §3.3.3):
X25519 ECDHE handshake, certificate authentication (server always,
client optionally — CAS requires mutual TLS), an RFC 8446-style HKDF key
schedule, and an AEAD record layer with per-direction sequence numbers
so replayed, reordered, or dropped records are detected.

The module is *pure*: it performs real cryptography on real bytes but
never touches the simulated clock.  Transport cost accounting lives in
the network shield, keeping protocol logic testable in isolation.

Handshake shape (1-RTT, all server flight messages coalesced):

    client                                server
      | ---- ClientHello (x25519 pub) ----> |
      | <--- ServerHello + Certificate      |
      |      + CertificateVerify + Finished |
      | ---- [Certificate + Verify] +       |
      |      Finished ---------------------> |
      |        application records ...      |
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto import encoding
from repro.crypto.aead import get_aead, key_size
from repro.crypto.certs import Certificate, verify_chain
from repro.crypto.ed25519 import Ed25519PrivateKey, Ed25519PublicKey
from repro.crypto.kdf import hkdf_expand_label, hkdf_extract, hmac_sha256
from repro.crypto.x25519 import X25519PrivateKey, X25519PublicKey
from repro.errors import HandshakeError, IntegrityError

_DEFAULT_CIPHER = "chacha20-poly1305"


@dataclass
class TlsIdentity:
    """Long-term identity: a signing key and its certificate."""

    signing_key: Ed25519PrivateKey
    certificate: Certificate


class _KeySchedule:
    """RFC 8446 §7.1 key schedule (simplified: no PSK, no 0-RTT)."""

    def __init__(self, cipher: str) -> None:
        self._cipher = cipher
        self._transcript = hashlib.sha256()
        zeros = b"\x00" * 32
        self._early_secret = hkdf_extract(b"", zeros)

    def update_transcript(self, message: bytes) -> None:
        self._transcript.update(message)

    def transcript_hash(self) -> bytes:
        return self._transcript.copy().digest()

    def derive_handshake(self, shared_secret: bytes) -> None:
        derived = hkdf_expand_label(self._early_secret, "derived", b"", 32)
        self._handshake_secret = hkdf_extract(derived, shared_secret)
        th = self.transcript_hash()
        self.client_hs = hkdf_expand_label(self._handshake_secret, "c hs traffic", th, 32)
        self.server_hs = hkdf_expand_label(self._handshake_secret, "s hs traffic", th, 32)

    def derive_application(self) -> None:
        derived = hkdf_expand_label(self._handshake_secret, "derived", b"", 32)
        master = hkdf_extract(derived, b"\x00" * 32)
        th = self.transcript_hash()
        self.client_app = hkdf_expand_label(master, "c ap traffic", th, 32)
        self.server_app = hkdf_expand_label(master, "s ap traffic", th, 32)

    def finished_mac(self, base_secret: bytes) -> bytes:
        finished_key = hkdf_expand_label(base_secret, "finished", b"", 32)
        return hmac_sha256(finished_key, self.transcript_hash())

    def traffic_keys(self, secret: bytes) -> Tuple[bytes, bytes]:
        n = key_size(self._cipher)
        key = hkdf_expand_label(secret, "key", b"", n)
        iv = hkdf_expand_label(secret, "iv", b"", 12)
        return key, iv


class RecordLayer:
    """AEAD record protection with per-direction sequence numbers.

    Out-of-order or replayed records fail decryption (the sequence number
    is bound into the nonce and the record header into the AAD).
    """

    def __init__(self, cipher: str, send: Tuple[bytes, bytes], recv: Tuple[bytes, bytes]):
        #: Negotiated cipher name (for per-cipher accounting upstream).
        self.cipher = cipher
        self._send_aead = get_aead(cipher, send[0])
        self._send_iv = send[1]
        self._recv_aead = get_aead(cipher, recv[0])
        self._recv_iv = recv[1]
        self._send_seq = 0
        self._recv_seq = 0

    @staticmethod
    def _nonce(iv: bytes, seq: int) -> bytes:
        seq_bytes = struct.pack(">Q", seq).rjust(12, b"\x00")
        return bytes(a ^ b for a, b in zip(iv, seq_bytes))

    def protect(self, plaintext: bytes) -> bytes:
        header = struct.pack(">BI", 0x17, len(plaintext))
        sealed = self._send_aead.encrypt(
            self._nonce(self._send_iv, self._send_seq), plaintext, aad=header
        )
        self._send_seq += 1
        return header + sealed

    def unprotect(self, record: bytes) -> bytes:
        if len(record) < 5:
            raise IntegrityError("TLS record shorter than its header")
        header, sealed = record[:5], record[5:]
        kind, _length = struct.unpack(">BI", header)
        if kind != 0x17:
            raise IntegrityError(f"unexpected TLS record type 0x{kind:02x}")
        plaintext = self._recv_aead.decrypt(
            self._nonce(self._recv_iv, self._recv_seq), sealed, aad=header
        )
        self._recv_seq += 1
        return plaintext

    @property
    def records_sent(self) -> int:
        return self._send_seq

    @property
    def records_received(self) -> int:
        return self._recv_seq


def _encode_message(kind: str, fields: dict) -> bytes:
    return encoding.encode({"kind": kind, **fields})


def _decode_message(data: bytes, expected_kind: str) -> dict:
    try:
        msg = encoding.decode(data)
    except IntegrityError as exc:
        raise HandshakeError(f"malformed {expected_kind} message") from exc
    if not isinstance(msg, dict) or msg.get("kind") != expected_kind:
        raise HandshakeError(
            f"expected {expected_kind}, got {msg.get('kind') if isinstance(msg, dict) else type(msg).__name__}"
        )
    return msg


class TlsClient:
    """Client side of the handshake state machine."""

    def __init__(
        self,
        trusted_roots: List[Ed25519PublicKey],
        identity: Optional[TlsIdentity] = None,
        random_bytes: bytes = b"",
        cipher: str = _DEFAULT_CIPHER,
        now: float = 0.0,
        expected_server: Optional[str] = None,
    ) -> None:
        if len(random_bytes) < 64:
            raise HandshakeError("client needs at least 64 bytes of randomness")
        self._roots = trusted_roots
        self._identity = identity
        self._cipher = cipher
        self._now = now
        self._expected_server = expected_server
        self._ephemeral = X25519PrivateKey.generate(random_bytes[:32])
        self._random = random_bytes[32:64]
        self._schedule = _KeySchedule(cipher)
        self._record_layer: Optional[RecordLayer] = None
        self.server_certificate: Optional[Certificate] = None

    def client_hello(self) -> bytes:
        message = _encode_message(
            "client_hello",
            {
                "random": self._random,
                "key_share": self._ephemeral.public_key().public_bytes(),
                "cipher": self._cipher,
            },
        )
        self._schedule.update_transcript(message)
        return message

    def process_server_flight(self, data: bytes) -> bytes:
        """Verify the server flight; returns the client's finished flight."""
        msg = _decode_message(data, "server_flight")
        try:
            server_share = msg["key_share"]
            cert_bytes = msg["certificate"]
            cert_verify = msg["certificate_verify"]
            server_finished = msg["finished"]
            require_client_cert = bool(msg["require_client_cert"])
        except KeyError as exc:
            raise HandshakeError(f"server flight missing field {exc}") from exc

        hello_part = _encode_message(
            "server_hello", {"key_share": server_share, "cipher": msg["cipher"]}
        )
        self._schedule.update_transcript(hello_part)
        shared = self._ephemeral.exchange(X25519PublicKey(server_share))
        self._schedule.derive_handshake(shared)

        certificate = Certificate.from_bytes(cert_bytes)
        verify_chain(certificate, self._roots, now=self._now)
        if self._expected_server is not None and certificate.subject != self._expected_server:
            raise HandshakeError(
                f"server presented certificate for {certificate.subject!r}, "
                f"expected {self._expected_server!r}"
            )
        self._schedule.update_transcript(cert_bytes)
        try:
            certificate.signing_key().verify(
                cert_verify, b"TLS 1.3, server CertificateVerify" + self._schedule.transcript_hash()
            )
        except IntegrityError as exc:
            raise HandshakeError("server CertificateVerify failed") from exc
        self._schedule.update_transcript(cert_verify)

        expected_finished = self._schedule.finished_mac(self._schedule.server_hs)
        if expected_finished != server_finished:
            raise HandshakeError("server Finished MAC mismatch")
        self._schedule.update_transcript(server_finished)
        self.server_certificate = certificate

        # Optional client authentication (mutual TLS).
        fields: dict = {}
        if require_client_cert:
            if self._identity is None:
                raise HandshakeError("server requires a client certificate")
            client_cert = self._identity.certificate.to_bytes()
            self._schedule.update_transcript(client_cert)
            signature = self._identity.signing_key.sign(
                b"TLS 1.3, client CertificateVerify" + self._schedule.transcript_hash()
            )
            self._schedule.update_transcript(signature)
            fields["certificate"] = client_cert
            fields["certificate_verify"] = signature

        fields["finished"] = self._schedule.finished_mac(self._schedule.client_hs)
        self._schedule.update_transcript(fields["finished"])
        flight = _encode_message("client_flight", fields)

        self._schedule.derive_application()
        self._record_layer = RecordLayer(
            self._cipher,
            send=self._schedule.traffic_keys(self._schedule.client_app),
            recv=self._schedule.traffic_keys(self._schedule.server_app),
        )
        return flight

    @property
    def record_layer(self) -> RecordLayer:
        if self._record_layer is None:
            raise HandshakeError("handshake has not completed")
        return self._record_layer


class TlsServer:
    """Server side of the handshake state machine."""

    def __init__(
        self,
        identity: TlsIdentity,
        random_bytes: bytes = b"",
        require_client_cert: bool = False,
        trusted_roots: Optional[List[Ed25519PublicKey]] = None,
        now: float = 0.0,
    ) -> None:
        if len(random_bytes) < 32:
            raise HandshakeError("server needs at least 32 bytes of randomness")
        if require_client_cert and not trusted_roots:
            raise HandshakeError("mutual TLS requires trusted roots for client certs")
        self._identity = identity
        self._ephemeral = X25519PrivateKey.generate(random_bytes[:32])
        self._require_client_cert = require_client_cert
        self._roots = trusted_roots or []
        self._now = now
        self._schedule: Optional[_KeySchedule] = None
        self._cipher = _DEFAULT_CIPHER
        self._record_layer: Optional[RecordLayer] = None
        self.client_certificate: Optional[Certificate] = None

    def process_client_hello(self, data: bytes) -> bytes:
        msg = _decode_message(data, "client_hello")
        try:
            client_share = msg["key_share"]
            self._cipher = msg["cipher"]
        except KeyError as exc:
            raise HandshakeError(f"client hello missing field {exc}") from exc

        self._schedule = _KeySchedule(self._cipher)
        self._schedule.update_transcript(data)

        server_share = self._ephemeral.public_key().public_bytes()
        hello_part = _encode_message(
            "server_hello", {"key_share": server_share, "cipher": self._cipher}
        )
        self._schedule.update_transcript(hello_part)
        shared = self._ephemeral.exchange(X25519PublicKey(client_share))
        self._schedule.derive_handshake(shared)

        cert_bytes = self._identity.certificate.to_bytes()
        self._schedule.update_transcript(cert_bytes)
        cert_verify = self._identity.signing_key.sign(
            b"TLS 1.3, server CertificateVerify" + self._schedule.transcript_hash()
        )
        self._schedule.update_transcript(cert_verify)
        finished = self._schedule.finished_mac(self._schedule.server_hs)
        self._schedule.update_transcript(finished)

        return _encode_message(
            "server_flight",
            {
                "key_share": server_share,
                "cipher": self._cipher,
                "certificate": cert_bytes,
                "certificate_verify": cert_verify,
                "finished": finished,
                "require_client_cert": self._require_client_cert,
            },
        )

    def process_client_flight(self, data: bytes) -> None:
        if self._schedule is None:
            raise HandshakeError("client flight before client hello")
        msg = _decode_message(data, "client_flight")

        if self._require_client_cert:
            try:
                cert_bytes = msg["certificate"]
                cert_verify = msg["certificate_verify"]
            except KeyError as exc:
                raise HandshakeError("client did not present a certificate") from exc
            certificate = Certificate.from_bytes(cert_bytes)
            verify_chain(certificate, self._roots, now=self._now)
            self._schedule.update_transcript(cert_bytes)
            try:
                certificate.signing_key().verify(
                    cert_verify,
                    b"TLS 1.3, client CertificateVerify" + self._schedule.transcript_hash(),
                )
            except IntegrityError as exc:
                raise HandshakeError("client CertificateVerify failed") from exc
            self._schedule.update_transcript(cert_verify)
            self.client_certificate = certificate

        try:
            client_finished = msg["finished"]
        except KeyError as exc:
            raise HandshakeError("client flight missing Finished") from exc
        expected = self._schedule.finished_mac(self._schedule.client_hs)
        if expected != client_finished:
            raise HandshakeError("client Finished MAC mismatch")
        self._schedule.update_transcript(client_finished)

        self._schedule.derive_application()
        self._record_layer = RecordLayer(
            self._cipher,
            send=self._schedule.traffic_keys(self._schedule.server_app),
            recv=self._schedule.traffic_keys(self._schedule.client_app),
        )

    @property
    def record_layer(self) -> RecordLayer:
        if self._record_layer is None:
            raise HandshakeError("handshake has not completed")
        return self._record_layer


def handshake_in_memory(
    client: TlsClient, server: TlsServer
) -> Tuple[RecordLayer, RecordLayer]:
    """Run a complete handshake with direct message passing (no network).

    Returns ``(client_records, server_records)``.  Used by tests and by
    components that establish channels between co-located parties.
    """
    hello = client.client_hello()
    server_flight = server.process_client_hello(hello)
    client_flight = client.process_server_flight(server_flight)
    server.process_client_flight(client_flight)
    return client.record_layer, server.record_layer
