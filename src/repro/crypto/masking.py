"""Additive masking for secure aggregation (federated training, §6.2).

The secure-aggregation mode splits every model update into *additive
shares over the ring Z_2^64*: the plaintext tensor is encoded into
fixed-point integers, ``n - 1`` shares are drawn uniformly at random,
and the last share is the wrapping difference — so each share on its own
is statistically independent of the update (a one-time pad over the
ring), while the wrapping sum of all ``n`` shares reconstructs the
encoded value *exactly*.  This is the arithmetic secret sharing scheme
tf-encrypted's secure aggregation and the classic Bonawitz et al.
protocol build on: each aggregator enclave receives one share per data
owner, sums the shares it holds (learning nothing), and only the
*combination* of every aggregator's partial sum reveals the aggregate —
never an individual hospital's update.

Fixed-point arithmetic keeps aggregation deterministic and bit-exact:
float tensors are scaled by ``2**FIXED_POINT_FRACTION_BITS`` and rounded
to integers, so the masked aggregate equals the unmasked fixed-point
aggregate byte for byte (addition over Z_2^64 is associative and exact,
unlike float addition).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro._sim.rng import DeterministicRng
from repro.errors import ConfigurationError

#: Fraction bits of the fixed-point encoding (~4.6 decimal digits).
FIXED_POINT_FRACTION_BITS = 16

_SCALE = np.float64(1 << FIXED_POINT_FRACTION_BITS)


def encode_fixed(values: np.ndarray) -> np.ndarray:
    """Encode a float tensor into fixed-point ring elements (uint64).

    Negative values map to their two's complement representative, so
    ring addition (wrapping uint64) behaves as signed fixed-point
    addition for any aggregate that stays within +/-2^47 units.
    """
    scaled = np.rint(np.asarray(values, dtype=np.float64) * _SCALE)
    return scaled.astype(np.int64).astype(np.uint64)


def decode_fixed(values: np.ndarray) -> np.ndarray:
    """Invert :func:`encode_fixed` (uint64 ring elements -> float32)."""
    signed = np.asarray(values, dtype=np.uint64).astype(np.int64)
    return (signed.astype(np.float64) / _SCALE).astype(np.float32)


def _uniform_ring(shape: tuple, rng: DeterministicRng) -> np.ndarray:
    """A uniformly random uint64 tensor from the deterministic stream."""
    n = int(np.prod(shape, dtype=np.int64)) if shape else 1
    raw = rng.random_bytes(8 * max(1, n))
    return np.frombuffer(raw, dtype=np.uint64)[:n].reshape(shape)


def additive_shares(
    encoded: np.ndarray, n_shares: int, rng: DeterministicRng
) -> List[np.ndarray]:
    """Split an encoded tensor into ``n_shares`` additive ring shares.

    Shares ``0 .. n-2`` are uniform masks; the last share is the
    wrapping remainder.  The wrapping sum of all shares is exactly
    ``encoded``; any proper subset is statistically independent of it.
    """
    if n_shares < 2:
        raise ConfigurationError(
            f"additive sharing needs >= 2 shares, got {n_shares}"
        )
    encoded = np.asarray(encoded, dtype=np.uint64)
    masks = [_uniform_ring(encoded.shape, rng) for _ in range(n_shares - 1)]
    remainder = encoded.copy()
    for mask in masks:
        remainder = remainder - mask  # wrapping uint64 subtraction
    return masks + [remainder]


def combine_shares(shares: List[np.ndarray]) -> np.ndarray:
    """Wrapping sum of additive shares (or of aggregators' partial sums)."""
    if not shares:
        raise ConfigurationError("cannot combine zero shares")
    total = np.zeros_like(np.asarray(shares[0], dtype=np.uint64))
    for share in shares:
        total = total + np.asarray(share, dtype=np.uint64)
    return total


def share_tensors(
    tensors: Dict[str, np.ndarray], n_shares: int, rng: DeterministicRng
) -> List[Dict[str, np.ndarray]]:
    """Encode + share a tensor dict; returns one share-dict per party.

    Tensor order is canonical (sorted by name) so the deterministic
    mask stream is identical across runs.
    """
    shares: List[Dict[str, np.ndarray]] = [{} for _ in range(n_shares)]
    for name in sorted(tensors):
        for index, share in enumerate(
            additive_shares(encode_fixed(tensors[name]), n_shares, rng)
        ):
            shares[index][name] = share
    return shares


def combine_tensor_shares(
    parts: List[Dict[str, np.ndarray]]
) -> Dict[str, np.ndarray]:
    """Combine per-party share dicts into the encoded aggregate."""
    if not parts:
        raise ConfigurationError("cannot combine zero share dicts")
    return {
        name: combine_shares([part[name] for part in parts])
        for name in parts[0]
    }


__all__ = [
    "FIXED_POINT_FRACTION_BITS",
    "additive_shares",
    "combine_shares",
    "combine_tensor_shares",
    "decode_fixed",
    "encode_fixed",
    "share_tensors",
]
