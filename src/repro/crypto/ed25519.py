"""Ed25519 signatures (RFC 8032).

Signatures authenticate enclave quotes (the simulated hardware signing
key), CAS-issued certificates, and checkpoints.  Implemented over the
twisted Edwards form of Curve25519 with extended coordinates; verified
against RFC 8032 test vectors.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from repro.errors import IntegrityError

_P = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = (-121665 * pow(121666, _P - 2, _P)) % _P

Point = Tuple[int, int, int, int]  # extended coordinates (X, Y, Z, T)

_IDENTITY: Point = (0, 1, 1, 0)


def _point_add(p: Point, q: Point) -> Point:
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = ((y1 - x1) * (y2 - x2)) % _P
    b = ((y1 + x1) * (y2 + x2)) % _P
    c = (2 * t1 * t2 * _D) % _P
    d = (2 * z1 * z2) % _P
    e = b - a
    f = d - c
    g = d + c
    h = b + a
    return ((e * f) % _P, (g * h) % _P, (f * g) % _P, (e * h) % _P)


def _scalar_mult(scalar: int, point: Point) -> Point:
    result = _IDENTITY
    addend = point
    while scalar:
        if scalar & 1:
            result = _point_add(result, addend)
        addend = _point_add(addend, addend)
        scalar >>= 1
    return result


def _recover_x(y: int, sign: int) -> int:
    if y >= _P:
        raise IntegrityError("Ed25519 point y-coordinate out of range")
    x2 = (y * y - 1) * pow(_D * y * y + 1, _P - 2, _P)
    if x2 == 0:
        if sign:
            raise IntegrityError("invalid Ed25519 point encoding")
        return 0
    x = pow(x2, (_P + 3) // 8, _P)
    if (x * x - x2) % _P != 0:
        x = (x * pow(2, (_P - 1) // 4, _P)) % _P
    if (x * x - x2) % _P != 0:
        raise IntegrityError("invalid Ed25519 point encoding")
    if x & 1 != sign:
        x = _P - x
    return x


_BASE_Y = (4 * pow(5, _P - 2, _P)) % _P
_BASE_X = _recover_x(_BASE_Y, 0)
_BASE: Point = (_BASE_X, _BASE_Y, 1, (_BASE_X * _BASE_Y) % _P)


def _compress(point: Point) -> bytes:
    x, y, z, _ = point
    z_inv = pow(z, _P - 2, _P)
    x, y = (x * z_inv) % _P, (y * z_inv) % _P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _decompress(data: bytes) -> Point:
    if len(data) != 32:
        raise IntegrityError("Ed25519 point must be 32 bytes")
    y = int.from_bytes(data, "little")
    sign = y >> 255
    y &= (1 << 255) - 1
    x = _recover_x(y, sign)
    return (x, y, 1, (x * y) % _P)


def _points_equal(p: Point, q: Point) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % _P == 0 and (y1 * z2 - y2 * z1) % _P == 0


def _sha512(*parts: bytes) -> bytes:
    h = hashlib.sha512()
    for part in parts:
        h.update(part)
    return h.digest()


def _secret_expand(secret: bytes) -> Tuple[int, bytes]:
    if len(secret) != 32:
        raise ValueError("Ed25519 private key must be 32 bytes")
    h = _sha512(secret)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a, h[32:]


class Ed25519PrivateKey:
    """Ed25519 signing key."""

    def __init__(self, private_bytes: bytes) -> None:
        self._secret = private_bytes
        self._scalar, self._prefix = _secret_expand(private_bytes)
        self._public_point = _scalar_mult(self._scalar, _BASE)
        self._public_bytes = _compress(self._public_point)

    @classmethod
    def generate(cls, random_bytes: bytes) -> "Ed25519PrivateKey":
        """Build a signing key from caller-supplied randomness (32 bytes)."""
        return cls(random_bytes)

    def public_key(self) -> "Ed25519PublicKey":
        return Ed25519PublicKey(self._public_bytes)

    def private_bytes(self) -> bytes:
        return self._secret

    def sign(self, message: bytes) -> bytes:
        """Produce a 64-byte RFC 8032 signature."""
        r = int.from_bytes(_sha512(self._prefix, message), "little") % _L
        r_point = _scalar_mult(r, _BASE)
        r_bytes = _compress(r_point)
        k = (
            int.from_bytes(
                _sha512(r_bytes, self._public_bytes, message), "little"
            )
            % _L
        )
        s = (r + k * self._scalar) % _L
        return r_bytes + s.to_bytes(32, "little")


class Ed25519PublicKey:
    """Ed25519 verification key."""

    def __init__(self, public_bytes: bytes) -> None:
        if len(public_bytes) != 32:
            raise ValueError("Ed25519 public key must be 32 bytes")
        self._public_bytes = public_bytes
        self._point = _decompress(public_bytes)

    def public_bytes(self) -> bytes:
        return self._public_bytes

    def verify(self, signature: bytes, message: bytes) -> None:
        """Raise :class:`IntegrityError` unless ``signature`` is valid."""
        if len(signature) != 64:
            raise IntegrityError("Ed25519 signature must be 64 bytes")
        r_bytes, s_bytes = signature[:32], signature[32:]
        s = int.from_bytes(s_bytes, "little")
        if s >= _L:
            raise IntegrityError("Ed25519 signature scalar out of range")
        r_point = _decompress(r_bytes)
        k = (
            int.from_bytes(
                _sha512(r_bytes, self._public_bytes, message), "little"
            )
            % _L
        )
        lhs = _scalar_mult(s, _BASE)
        rhs = _point_add(r_point, _scalar_mult(k, self._point))
        if not _points_equal(lhs, rhs):
            raise IntegrityError("Ed25519 signature verification failed")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Ed25519PublicKey)
            and self._public_bytes == other._public_bytes
        )

    def __hash__(self) -> int:
        return hash(self._public_bytes)
