"""AES-GCM authenticated encryption (NIST SP 800-38D).

GHASH is implemented over GF(2^128) with Python integers; this is fine
for the small payloads AES-GCM protects here (handshake messages, secret
records).  Bulk data goes through :class:`repro.crypto.chacha.ChaCha20Poly1305`
instead, which is vectorized.
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.errors import IntegrityError

_R = 0xE1000000000000000000000000000000


def _gf_mult(x: int, y: int) -> int:
    """Multiplication in GF(2^128) with the GCM reduction polynomial."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


class AesGcm:
    """AES-GCM with 12-byte nonces and 16-byte tags."""

    NONCE_SIZE = 12
    TAG_SIZE = 16

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)
        self._h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")

    def _ghash(self, aad: bytes, ciphertext: bytes) -> int:
        y = 0
        for data in (aad, ciphertext):
            for offset in range(0, len(data), 16):
                block = data[offset: offset + 16].ljust(16, b"\x00")
                y = _gf_mult(y ^ int.from_bytes(block, "big"), self._h)
        lengths = (len(aad) * 8).to_bytes(8, "big") + (
            len(ciphertext) * 8
        ).to_bytes(8, "big")
        return _gf_mult(y ^ int.from_bytes(lengths, "big"), self._h)

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        j0 = nonce + b"\x00\x00\x00\x01"
        s = self._ghash(aad, ciphertext)
        ek_j0 = int.from_bytes(self._aes.encrypt_block(j0), "big")
        return ((s ^ ek_j0) & ((1 << 128) - 1)).to_bytes(16, "big")

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ciphertext || tag."""
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"GCM nonce must be 12 bytes, got {len(nonce)}")
        ciphertext = self._aes.encrypt_ctr(nonce, plaintext, initial_counter=2)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext.

        Raises :class:`~repro.errors.IntegrityError` on any mismatch —
        tampering with nonce, ciphertext, tag, or AAD must all be caught.
        """
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"GCM nonce must be 12 bytes, got {len(nonce)}")
        if len(data) < self.TAG_SIZE:
            raise IntegrityError("GCM ciphertext shorter than the tag")
        ciphertext, tag = data[: -self.TAG_SIZE], data[-self.TAG_SIZE:]
        expected = self._tag(nonce, aad, ciphertext)
        if not _constant_time_eq(expected, tag):
            raise IntegrityError("GCM tag verification failed")
        return self._aes.encrypt_ctr(nonce, ciphertext, initial_counter=2)


def _constant_time_eq(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0
