"""AES-GCM authenticated encryption (NIST SP 800-38D).

GHASH runs table-driven: :class:`AesGcm` precomputes, per key, 16 tables
of 256 entries each so that one 128-bit GF multiplication is 16 lookups
and XORs instead of a 128-iteration bit loop.  For long messages a
grouped variant goes further — blocks are processed 16 at a time, the
inner 15 products of each group are gathered with numpy from hi/lo
uint64 tables for H^1..H^15, and only one serial table multiply (by
H^16) remains per group.  Together with the vectorized AES-CTR core
this lifts AES-GCM from ~0.2 MB/s to double-digit MB/s while producing
byte-identical ciphertext and tags.

The bit-loop multiply :func:`_gf_mult` is retained as the reference the
test suite checks the table paths against.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.crypto._ct import ct_eq
from repro.crypto.aes import AES
from repro.errors import IntegrityError

_R = 0xE1000000000000000000000000000000


def _gf_mult(x: int, y: int) -> int:
    """Multiplication in GF(2^128) with the GCM reduction polynomial."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _build_red() -> Tuple[int, ...]:
    """Reduction table for shifting a field element right by one byte.

    The 8 low bits that fall off fold back in through the GCM reduction
    polynomial (bit-reflected convention).
    """
    red = []
    for b in range(256):
        t = 0
        v = b
        for _ in range(8):
            if v & 1:
                t = (t >> 1) ^ _R
            else:
                t >>= 1
            v >>= 1
        red.append(t)
    return tuple(red)


_RED = _build_red()


def _mul_x8(v: int) -> int:
    """Multiply a field element by x^8 (one byte shift with reduction)."""
    return (v >> 8) ^ _RED[v & 0xFF]


def _build_table_set(hpow: int) -> List[List[int]]:
    """Per-key GHASH tables: ``tables[j][b]`` = byte ``b`` at big-endian
    byte position ``j`` times ``hpow``.

    A full 128-bit multiply by ``hpow`` then is 16 lookups XORed together.
    """
    m = [0] * 256
    v = hpow
    m[0x80] = v
    for i in range(1, 8):
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
        m[0x80 >> i] = v
    step = 2
    while step <= 256:
        half = step >> 1
        base = m[half]
        for j in range(1, half):
            m[half + j] = base ^ m[j]
        step <<= 1
    tables = [m]
    for _ in range(15):
        tables.append([_mul_x8(x) for x in tables[-1]])
    return tables


# Blocks per group in the grouped GHASH path, and the message size below
# which building the stride tables isn't worth the ~20 ms it costs.
_GROUP_SIZE = 16
_GROUPED_THRESHOLD = 4096
_BYTE_IDX = np.arange(16)[None, None, :]
_POW_IDX = (np.arange(_GROUP_SIZE - 1, 0, -1) - 1)[None, :, None]


class AesGcm:
    """AES-GCM with 12-byte nonces and 16-byte tags."""

    NONCE_SIZE = 12
    TAG_SIZE = 16

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)
        self._h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")
        self._tables = _build_table_set(self._h)
        # Grouped-path tables are built lazily on the first long message.
        self._tables_hk: Optional[List[List[int]]] = None
        self._tn_hi: Optional[np.ndarray] = None
        self._tn_lo: Optional[np.ndarray] = None

    def _build_stride_tables(self) -> None:
        k = _GROUP_SIZE
        hp = [0, self._h]
        for _ in range(2, k + 1):
            hp.append(_gf_mult(hp[-1], self._h))
        sets = {p: _build_table_set(hp[p]) for p in range(1, k + 1)}
        tn_hi = np.empty((k - 1, 16, 256), dtype=np.uint64)
        tn_lo = np.empty((k - 1, 16, 256), dtype=np.uint64)
        mask64 = 0xFFFFFFFFFFFFFFFF
        for p in range(1, k):
            for j in range(16):
                col = sets[p][j]
                tn_hi[p - 1, j] = [v >> 64 for v in col]
                tn_lo[p - 1, j] = [v & mask64 for v in col]
        self._tables_hk = sets[k]
        self._tn_hi = tn_hi
        self._tn_lo = tn_lo

    def _ghash_update_serial(self, y: int, data: bytes) -> int:
        tables = self._tables
        for offset in range(0, len(data), 16):
            block = data[offset: offset + 16].ljust(16, b"\x00")
            wb = (y ^ int.from_bytes(block, "big")).to_bytes(16, "big")
            z = 0
            for i in range(16):
                z ^= tables[i][wb[i]]
            y = z
        return y

    def _ghash_update_grouped(self, y: int, data: bytes) -> int:
        k = _GROUP_SIZE
        n = len(data)
        n_groups = n // (16 * k)
        if n_groups:
            if self._tables_hk is None:
                self._build_stride_tables()
            tables_hk = self._tables_hk
            nb = n_groups * k
            blocks = np.frombuffer(data, dtype=np.uint8, count=nb * 16).reshape(
                n_groups, k, 16
            )
            # Positions 1..k-1 of each group multiply H^{k-1}..H^1; those
            # products are pure table gathers, vectorized across groups.
            sub = blocks[:, 1:, :]
            hi = np.bitwise_xor.reduce(
                self._tn_hi[_POW_IDX, _BYTE_IDX, sub], axis=(1, 2)
            ).tolist()
            lo = np.bitwise_xor.reduce(
                self._tn_lo[_POW_IDX, _BYTE_IDX, sub], axis=(1, 2)
            ).tolist()
            first = blocks[:, 0, :].tobytes()
            for g in range(n_groups):
                wb = (
                    y ^ int.from_bytes(first[g * 16: (g + 1) * 16], "big")
                ).to_bytes(16, "big")
                z = 0
                for i in range(16):
                    z ^= tables_hk[i][wb[i]]
                y = z ^ (hi[g] << 64) ^ lo[g]
            offset = nb * 16
        else:
            offset = 0
        return self._ghash_update_serial(y, data[offset:])

    def _ghash(self, aad: bytes, ciphertext: bytes) -> int:
        y = 0
        for data in (aad, ciphertext):
            if len(data) >= _GROUPED_THRESHOLD:
                y = self._ghash_update_grouped(y, data)
            else:
                y = self._ghash_update_serial(y, data)
        lengths = (len(aad) * 8).to_bytes(8, "big") + (
            len(ciphertext) * 8
        ).to_bytes(8, "big")
        return self._ghash_update_serial(y, lengths)

    def _ghash_reference(self, aad: bytes, ciphertext: bytes) -> int:
        """Bit-loop GHASH; the oracle the table paths are tested against."""
        y = 0
        for data in (aad, ciphertext):
            for offset in range(0, len(data), 16):
                block = data[offset: offset + 16].ljust(16, b"\x00")
                y = _gf_mult(y ^ int.from_bytes(block, "big"), self._h)
        lengths = (len(aad) * 8).to_bytes(8, "big") + (
            len(ciphertext) * 8
        ).to_bytes(8, "big")
        return _gf_mult(y ^ int.from_bytes(lengths, "big"), self._h)

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        j0 = nonce + b"\x00\x00\x00\x01"
        s = self._ghash(aad, ciphertext)
        ek_j0 = int.from_bytes(self._aes.encrypt_block(j0), "big")
        return ((s ^ ek_j0) & ((1 << 128) - 1)).to_bytes(16, "big")

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ciphertext || tag."""
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"GCM nonce must be 12 bytes, got {len(nonce)}")
        ciphertext = self._aes.encrypt_ctr(nonce, plaintext, initial_counter=2)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext.

        Raises :class:`~repro.errors.IntegrityError` on any mismatch —
        tampering with nonce, ciphertext, tag, or AAD must all be caught.
        """
        if len(nonce) != self.NONCE_SIZE:
            raise ValueError(f"GCM nonce must be 12 bytes, got {len(nonce)}")
        if len(data) < self.TAG_SIZE:
            raise IntegrityError("GCM ciphertext shorter than the tag")
        ciphertext, tag = data[: -self.TAG_SIZE], data[-self.TAG_SIZE:]
        expected = self._tag(nonce, aad, ciphertext)
        if not ct_eq(expected, tag):
            raise IntegrityError("GCM tag verification failed")
        return self._aes.encrypt_ctr(nonce, ciphertext, initial_counter=2)
