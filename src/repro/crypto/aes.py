"""AES block cipher (FIPS 197), table-based pure-Python implementation.

Supports 128/192/256-bit keys.  Used by :mod:`repro.crypto.gcm` for
AES-GCM and directly by the secrets database for key wrapping.  Verified
against FIPS 197 and NIST SP 800-38A vectors in the test suite.

Single blocks go through the scalar byte-oriented rounds.  Bulk CTR mode
is vectorized with numpy: the classic 32-bit encryption T-tables (each
entry fuses SubBytes, ShiftRows, and MixColumns for one byte) are applied
to *all* counter blocks of a message at once, which lifts pure-Python
AES-CTR from ~0.2 MB/s to tens of MB/s.  The scalar CTR loop is kept as
:meth:`AES.encrypt_ctr_reference` and the test suite asserts the two
paths are byte-identical.

Not constant-time; simulation use only.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

_SBOX: Tuple[int, ...] = (
    0x63, 0x7C, 0x77, 0x7B, 0xF2, 0x6B, 0x6F, 0xC5, 0x30, 0x01, 0x67, 0x2B,
    0xFE, 0xD7, 0xAB, 0x76, 0xCA, 0x82, 0xC9, 0x7D, 0xFA, 0x59, 0x47, 0xF0,
    0xAD, 0xD4, 0xA2, 0xAF, 0x9C, 0xA4, 0x72, 0xC0, 0xB7, 0xFD, 0x93, 0x26,
    0x36, 0x3F, 0xF7, 0xCC, 0x34, 0xA5, 0xE5, 0xF1, 0x71, 0xD8, 0x31, 0x15,
    0x04, 0xC7, 0x23, 0xC3, 0x18, 0x96, 0x05, 0x9A, 0x07, 0x12, 0x80, 0xE2,
    0xEB, 0x27, 0xB2, 0x75, 0x09, 0x83, 0x2C, 0x1A, 0x1B, 0x6E, 0x5A, 0xA0,
    0x52, 0x3B, 0xD6, 0xB3, 0x29, 0xE3, 0x2F, 0x84, 0x53, 0xD1, 0x00, 0xED,
    0x20, 0xFC, 0xB1, 0x5B, 0x6A, 0xCB, 0xBE, 0x39, 0x4A, 0x4C, 0x58, 0xCF,
    0xD0, 0xEF, 0xAA, 0xFB, 0x43, 0x4D, 0x33, 0x85, 0x45, 0xF9, 0x02, 0x7F,
    0x50, 0x3C, 0x9F, 0xA8, 0x51, 0xA3, 0x40, 0x8F, 0x92, 0x9D, 0x38, 0xF5,
    0xBC, 0xB6, 0xDA, 0x21, 0x10, 0xFF, 0xF3, 0xD2, 0xCD, 0x0C, 0x13, 0xEC,
    0x5F, 0x97, 0x44, 0x17, 0xC4, 0xA7, 0x7E, 0x3D, 0x64, 0x5D, 0x19, 0x73,
    0x60, 0x81, 0x4F, 0xDC, 0x22, 0x2A, 0x90, 0x88, 0x46, 0xEE, 0xB8, 0x14,
    0xDE, 0x5E, 0x0B, 0xDB, 0xE0, 0x32, 0x3A, 0x0A, 0x49, 0x06, 0x24, 0x5C,
    0xC2, 0xD3, 0xAC, 0x62, 0x91, 0x95, 0xE4, 0x79, 0xE7, 0xC8, 0x37, 0x6D,
    0x8D, 0xD5, 0x4E, 0xA9, 0x6C, 0x56, 0xF4, 0xEA, 0x65, 0x7A, 0xAE, 0x08,
    0xBA, 0x78, 0x25, 0x2E, 0x1C, 0xA6, 0xB4, 0xC6, 0xE8, 0xDD, 0x74, 0x1F,
    0x4B, 0xBD, 0x8B, 0x8A, 0x70, 0x3E, 0xB5, 0x66, 0x48, 0x03, 0xF6, 0x0E,
    0x61, 0x35, 0x57, 0xB9, 0x86, 0xC1, 0x1D, 0x9E, 0xE1, 0xF8, 0x98, 0x11,
    0x69, 0xD9, 0x8E, 0x94, 0x9B, 0x1E, 0x87, 0xE9, 0xCE, 0x55, 0x28, 0xDF,
    0x8C, 0xA1, 0x89, 0x0D, 0xBF, 0xE6, 0x42, 0x68, 0x41, 0x99, 0x2D, 0x0F,
    0xB0, 0x54, 0xBB, 0x16,
)

_INV_SBOX_LIST = [0] * 256
for _i, _s in enumerate(_SBOX):
    _INV_SBOX_LIST[_s] = _i
_INV_SBOX: Tuple[int, ...] = tuple(_INV_SBOX_LIST)
del _INV_SBOX_LIST, _i, _s

_RCON: Tuple[int, ...] = (
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8,
    0xAB, 0x4D,
)


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


# Precompute multiplication tables for MixColumns / InvMixColumns.
_MUL2 = tuple(_gmul(i, 2) for i in range(256))
_MUL3 = tuple(_gmul(i, 3) for i in range(256))
_MUL9 = tuple(_gmul(i, 9) for i in range(256))
_MUL11 = tuple(_gmul(i, 11) for i in range(256))
_MUL13 = tuple(_gmul(i, 13) for i in range(256))
_MUL14 = tuple(_gmul(i, 14) for i in range(256))

# 32-bit encryption T-tables for the vectorized CTR path.  Te0[b] packs
# SubBytes + MixColumns for a byte landing in a column's first row; the
# other three tables are byte rotations of it.
_TE0 = np.array(
    [
        (_MUL2[_SBOX[b]] << 24) | (_SBOX[b] << 16) | (_SBOX[b] << 8) | _MUL3[_SBOX[b]]
        for b in range(256)
    ],
    dtype=np.uint32,
)
_TE1 = ((_TE0 >> np.uint32(8)) | (_TE0 << np.uint32(24))).astype(np.uint32)
_TE2 = ((_TE1 >> np.uint32(8)) | (_TE1 << np.uint32(24))).astype(np.uint32)
_TE3 = ((_TE2 >> np.uint32(8)) | (_TE2 << np.uint32(24))).astype(np.uint32)
_SBOX_U32 = np.array(_SBOX, dtype=np.uint32)


class AES:
    """AES block cipher over 16-byte blocks."""

    BLOCK_SIZE = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)
        # Round keys as big-endian 32-bit words for the vectorized path.
        self._rk_words = np.array(
            [
                [int.from_bytes(bytes(rk[4 * i: 4 * i + 4]), "big") for i in range(4)]
                for rk in self._round_keys
            ],
            dtype=np.uint32,
        )

    @property
    def rounds(self) -> int:
        return self._rounds

    def _expand_key(self, key: bytes) -> List[List[int]]:
        """FIPS 197 key schedule, returned as one flat word list per round."""
        nk = len(key) // 4
        words: List[List[int]] = [list(key[4 * i: 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self._rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]
                temp = [_SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([words[i - nk][j] ^ temp[j] for j in range(4)])
        # Group into 16-byte round keys.
        round_keys = []
        for r in range(self._rounds + 1):
            rk: List[int] = []
            for w in words[4 * r: 4 * r + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    @staticmethod
    def _add_round_key(state: List[int], rk: List[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> List[int]:
        # State is column-major: state[r + 4*c].
        s = state
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> List[int]:
        s = state
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i], state[i + 1], state[i + 2], state[i + 3]
            state[i] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            state[i + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            state[i + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            state[i + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for c in range(4):
            i = 4 * c
            a0, a1, a2, a3 = state[i], state[i + 1], state[i + 2], state[i + 3]
            state[i] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            state[i + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            state[i + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            state[i + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for r in range(1, self._rounds):
            self._sub_bytes(state)
            state = self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[r])
        self._sub_bytes(state)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self._rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        state = list(block)
        self._add_round_key(state, self._round_keys[self._rounds])
        for r in range(self._rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[r])
            self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    def keystream_ctr(self, nonce: bytes, n_blocks: int, initial_counter: int = 1) -> np.ndarray:
        """CTR keystream for ``n_blocks`` blocks as a flat uint8 array.

        All blocks are encrypted at once: the state lives in four uint32
        column vectors (one lane per block) and every round is table
        lookups + XORs across the whole message.
        """
        if len(nonce) != 12:
            raise ValueError(f"CTR nonce must be 12 bytes, got {len(nonce)}")
        rks = self._rk_words
        counters = (
            (np.arange(n_blocks, dtype=np.uint64) + np.uint64(initial_counter))
            & np.uint64(0xFFFFFFFF)
        ).astype(np.uint32)
        n0, n1, n2 = (int.from_bytes(nonce[i: i + 4], "big") for i in (0, 4, 8))
        with np.errstate(over="ignore"):
            c0 = np.full(n_blocks, n0, dtype=np.uint32) ^ rks[0, 0]
            c1 = np.full(n_blocks, n1, dtype=np.uint32) ^ rks[0, 1]
            c2 = np.full(n_blocks, n2, dtype=np.uint32) ^ rks[0, 2]
            c3 = counters ^ rks[0, 3]
            s8, s16, s24 = np.uint32(8), np.uint32(16), np.uint32(24)
            mask = np.uint32(0xFF)
            for r in range(1, self._rounds):
                rk = rks[r]
                b0 = _TE0[c0 >> s24] ^ _TE1[(c1 >> s16) & mask] ^ _TE2[(c2 >> s8) & mask] ^ _TE3[c3 & mask] ^ rk[0]
                b1 = _TE0[c1 >> s24] ^ _TE1[(c2 >> s16) & mask] ^ _TE2[(c3 >> s8) & mask] ^ _TE3[c0 & mask] ^ rk[1]
                b2 = _TE0[c2 >> s24] ^ _TE1[(c3 >> s16) & mask] ^ _TE2[(c0 >> s8) & mask] ^ _TE3[c1 & mask] ^ rk[2]
                b3 = _TE0[c3 >> s24] ^ _TE1[(c0 >> s16) & mask] ^ _TE2[(c1 >> s8) & mask] ^ _TE3[c2 & mask] ^ rk[3]
                c0, c1, c2, c3 = b0, b1, b2, b3
            rk = rks[self._rounds]
            b0 = ((_SBOX_U32[c0 >> s24] << s24) | (_SBOX_U32[(c1 >> s16) & mask] << s16)
                  | (_SBOX_U32[(c2 >> s8) & mask] << s8) | _SBOX_U32[c3 & mask]) ^ rk[0]
            b1 = ((_SBOX_U32[c1 >> s24] << s24) | (_SBOX_U32[(c2 >> s16) & mask] << s16)
                  | (_SBOX_U32[(c3 >> s8) & mask] << s8) | _SBOX_U32[c0 & mask]) ^ rk[1]
            b2 = ((_SBOX_U32[c2 >> s24] << s24) | (_SBOX_U32[(c3 >> s16) & mask] << s16)
                  | (_SBOX_U32[(c0 >> s8) & mask] << s8) | _SBOX_U32[c1 & mask]) ^ rk[2]
            b3 = ((_SBOX_U32[c3 >> s24] << s24) | (_SBOX_U32[(c0 >> s16) & mask] << s16)
                  | (_SBOX_U32[(c1 >> s8) & mask] << s8) | _SBOX_U32[c2 & mask]) ^ rk[3]
        out = np.empty((n_blocks, 4), dtype=">u4")
        out[:, 0] = b0
        out[:, 1] = b1
        out[:, 2] = b2
        out[:, 3] = b3
        return out.view(np.uint8).reshape(-1)

    def encrypt_ctr(self, nonce: bytes, data: bytes, initial_counter: int = 1) -> bytes:
        """CTR mode with a 12-byte nonce and 32-bit big-endian counter.

        CTR is an involution, so this both encrypts and decrypts.
        """
        if len(nonce) != 12:
            raise ValueError(f"CTR nonce must be 12 bytes, got {len(nonce)}")
        n = len(data)
        if n == 0:
            return b""
        keystream = self.keystream_ctr(nonce, -(-n // 16), initial_counter)[:n]
        return (np.frombuffer(data, dtype=np.uint8) ^ keystream).tobytes()

    def encrypt_ctr_reference(
        self, nonce: bytes, data: bytes, initial_counter: int = 1
    ) -> bytes:
        """Block-at-a-time CTR; the oracle the vectorized path is tested against."""
        if len(nonce) != 12:
            raise ValueError(f"CTR nonce must be 12 bytes, got {len(nonce)}")
        out = bytearray()
        counter = initial_counter
        for offset in range(0, len(data), 16):
            block = nonce + counter.to_bytes(4, "big")
            keystream = self.encrypt_block(block)
            chunk = data[offset: offset + 16]
            out.extend(x ^ y for x, y in zip(chunk, keystream))
            counter = (counter + 1) & 0xFFFFFFFF
        return bytes(out)
