"""Containers: the deployment unit of secureTF (paper §3.3.3, Docker).

A container binds a :class:`SconeRuntime` to a node with lifecycle
state; starting one charges the node's clock for image setup (the cost
the elastic-scaling experiment measures on top of attestation).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.cluster.node import Node
from repro.errors import ClusterError
from repro.runtime.scone import RuntimeConfig, SconeRuntime


class ContainerState(enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"
    FAILED = "failed"


class Container:
    """One secureTF container on one node."""

    def __init__(self, name: str, node: Node, config: RuntimeConfig) -> None:
        self.name = name
        self.node = node
        self.config = config
        self.state = ContainerState.CREATED
        self.runtime: Optional[SconeRuntime] = None

    def start(self) -> SconeRuntime:
        """Start the container: image setup + enclave creation."""
        if self.state is ContainerState.RUNNING:
            raise ClusterError(f"container {self.name!r} is already running")
        self.node.clock.advance(self.node.cost_model.container_start_cost)
        self.runtime = SconeRuntime(
            self.config,
            self.node.vfs,
            self.node.cost_model,
            self.node.clock,
            cpu=self.node.cpu,
            rng=self.node.rng.child(f"container-{self.name}"),
        )
        self.state = ContainerState.RUNNING
        return self.runtime

    def stop(self) -> None:
        if self.state is not ContainerState.RUNNING:
            raise ClusterError(f"container {self.name!r} is not running")
        self.node.clock.advance(self.node.cost_model.container_stop_cost)
        if self.runtime is not None:
            self.runtime.shutdown()
        self.runtime = None
        self.state = ContainerState.STOPPED

    def fail(self) -> None:
        """Simulate a crash (no graceful teardown cost)."""
        if self.runtime is not None:
            self.runtime.shutdown()
        self.runtime = None
        self.state = ContainerState.FAILED

    @property
    def running(self) -> bool:
        return self.state is ContainerState.RUNNING

    def __repr__(self) -> str:
        return f"Container({self.name!r} on {self.node.node_id}, {self.state.value})"
