"""A physical node: CPU (with SGX + EPC), its own clock, OS storage."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro._sim.clock import SimClock
from repro._sim.rng import DeterministicRng
from repro._sim.scheduler import Scheduler
from repro.enclave.attestation import ProvisioningAuthority
from repro.enclave.cost_model import CostModel
from repro.enclave.sgx import SgxCpu
from repro.runtime.vfs import VirtualFileSystem


@dataclass
class Node:
    """One server of the simulated cluster (paper: Xeon E3-1280 v6)."""

    node_id: str
    cpu: SgxCpu
    clock: SimClock
    vfs: VirtualFileSystem
    cost_model: CostModel
    rng: DeterministicRng

    @property
    def cores(self) -> int:
        return self.cost_model.cores_per_node

    def syscall_interface(self):
        """The host-side (non-enclave) syscall interface of this node.

        Lazily built once per node: processes that run *outside* any
        SCONE runtime (plain RPC endpoints, owner-side tools, the
        network delivery path) charge their I/O here, so every byte a
        node moves flows through one accountable syscall layer.
        """
        if "_syscalls" not in self.__dict__:
            from repro.enclave.sgx import SgxMode
            from repro.runtime.syscall import SyscallInterface

            self._syscalls = SyscallInterface(
                self.vfs, self.cost_model, self.clock, mode=SgxMode.NATIVE
            )
        return self._syscalls

    def __repr__(self) -> str:
        return f"Node({self.node_id!r}, t={self.clock.now:.3f}s)"


def make_cluster(
    n_nodes: int,
    cost_model: CostModel,
    provisioning: ProvisioningAuthority,
    seed: int = 0,
    epc_policy: str = "random",
    scheduler: Optional[Scheduler] = None,
) -> List[Node]:
    """Build ``n_nodes`` homogeneous nodes, each with its own clock/EPC.

    With ``scheduler`` given, every node clock is registered as a view
    onto that scheduler's timeline (so ``fleet_time()`` and fleet-wide
    event accounting see the whole cluster).
    """
    root = DeterministicRng(seed, label="cluster")
    nodes = []
    for index in range(n_nodes):
        node_id = f"node-{index}"
        clock = SimClock()
        if scheduler is not None:
            scheduler.register_clock(clock)
        rng = root.child(node_id)
        cpu = SgxCpu(
            f"cpu-{index}",
            cost_model,
            clock,
            provisioning,
            rng.child("cpu"),
            epc_policy=epc_policy,
        )
        nodes.append(
            Node(
                node_id=node_id,
                cpu=cpu,
                clock=clock,
                vfs=VirtualFileSystem(),
                cost_model=cost_model,
                rng=rng,
            )
        )
    return nodes
