"""Simulated cluster: nodes, network, containers, orchestration, PS/workers.

Models the paper's deployment substrate (§5.1): three SGX servers on a
1 Gb/s switched LAN, Docker containers, elastic scaling, and the
parameter-server architecture of distributed TensorFlow (§3.3, Fig. 2).

Timing is a discrete-event simulation on a **global event heap**
(:class:`~repro._sim.scheduler.Scheduler`) with one clock per node as
the per-node *view*: an RPC is a delivery event that advances the
callee to the request's arrival time, runs the handler on the callee's
clock (so a busy parameter server naturally serializes its callers),
and a reply event that advances the caller to the response's arrival —
blocking callers park on the heap, fleet-scale replicas run as
stackless activities (:mod:`repro.cluster.fleet`).  Barriers take the
max across clocks — which is exactly how synchronous data-parallel
training behaves on real clusters.

The network carries opaque bytes and exposes a Dolev-Yao adversary hook
(drop/tamper/replay); every protected channel in the test suite must
detect its interference.  A second, separately-accounted interception
layer — the seeded chaos plane of :mod:`repro.cluster.faults` — models
the *cloud* misbehaving (message loss, latency spikes, duplicate
delivery, transient partitions, container crashes), and
:mod:`repro.cluster.retry` provides the client-side resilience policy
(backoff, deadlines, circuit breaking) that keeps training running
through it.
"""

from repro.cluster.network import FaultAction, Network, NetworkStats
from repro.cluster.node import Node, make_cluster
from repro.cluster.container import Container, ContainerState
from repro.cluster.fleet import FleetStats, ReplicaFleet
from repro.cluster.faults import (
    CrashFault,
    FaultCounters,
    FaultPlan,
    FaultSpec,
    TransientPartition,
)
from repro.cluster.retry import (
    BreakerRegistry,
    CircuitBreaker,
    RecoveryStats,
    RetryPolicy,
    RetryingExecutor,
)
from repro.cluster.rpc import RpcClient, RpcServer, SecureRpcClient, SecureRpcServer
from repro.cluster.orchestrator import Orchestrator, ContainerSpec, Watchdog
from repro.cluster.parameter_server import (
    AsyncTrainer,
    InMemoryCheckpointStore,
    ParameterServer,
    PSCheckpoint,
    ShardedParameterService,
    ShardedSyncTrainer,
    SyncTrainer,
)
from repro.cluster.sharding import (
    GradientQuantizer,
    ShardMap,
    ShardPiece,
    ShardTrainingStats,
)
from repro.cluster.worker import TrainingWorker

__all__ = [
    "Network",
    "NetworkStats",
    "FaultAction",
    "Node",
    "make_cluster",
    "Container",
    "ContainerState",
    "FleetStats",
    "ReplicaFleet",
    "CrashFault",
    "FaultCounters",
    "FaultPlan",
    "FaultSpec",
    "TransientPartition",
    "BreakerRegistry",
    "CircuitBreaker",
    "RecoveryStats",
    "RetryPolicy",
    "RetryingExecutor",
    "RpcClient",
    "RpcServer",
    "SecureRpcClient",
    "SecureRpcServer",
    "Orchestrator",
    "ContainerSpec",
    "Watchdog",
    "ParameterServer",
    "PSCheckpoint",
    "InMemoryCheckpointStore",
    "ShardedParameterService",
    "ShardedSyncTrainer",
    "GradientQuantizer",
    "ShardMap",
    "ShardPiece",
    "ShardTrainingStats",
    "SyncTrainer",
    "AsyncTrainer",
    "TrainingWorker",
]
