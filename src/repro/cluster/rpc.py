"""RPC over the simulated network — plain and network-shield-protected.

Plain RPC (:class:`RpcServer`/:class:`RpcClient`) is what *native*
TensorFlow uses: canonical-encoded envelopes in cleartext, readable and
forgeable by the Dolev-Yao adversary.  Secure RPC layers the network
shield's TLS session over the same transport: a two-step handshake
(carried as plain RPCs, as TLS handshakes are), then AEAD-protected
records per call.  The paper's Fig. 8 contrast "with/without network
shield" is exactly the choice between these two stacks.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional, Tuple

from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.crypto import encoding
from repro.crypto.tls import RecordLayer
from repro.errors import IntegrityError, ReproError, RpcError
from repro.runtime.net_shield import (
    NetworkShield,
    ServerHandshake,
    charge_record_crypto,
    protect_timed,
    unprotect_timed,
)

#: method handler: fn(payload_bytes, peer_subject) -> response_bytes
MethodHandler = Callable[[bytes, Optional[str]], bytes]


def _envelope(kind: str, **fields: object) -> bytes:
    return encoding.encode({"kind": kind, **fields})


def _open_envelope(data: bytes, expected: Optional[str] = None) -> dict:
    try:
        msg = encoding.decode(data)
    except IntegrityError as exc:
        raise RpcError("malformed RPC envelope") from exc
    if not isinstance(msg, dict) or "kind" not in msg:
        raise RpcError("RPC envelope missing kind")
    if msg["kind"] == "error":
        raise RpcError(f"remote error: {msg.get('message', 'unknown')}")
    if expected is not None and msg["kind"] != expected:
        raise RpcError(f"expected {expected!r} envelope, got {msg['kind']!r}")
    return msg


class RpcServer:
    """Cleartext RPC endpoint."""

    def __init__(self, network: Network, address: str, node: Node) -> None:
        self._network = network
        self.address = address
        self._node = node
        self._methods: Dict[str, MethodHandler] = {}
        self._started = False

    def register(self, method: str, handler: MethodHandler) -> None:
        self._methods[method] = handler

    def start(self) -> None:
        if self._started:
            raise RpcError(f"server {self.address!r} already started")
        self._network.register(self.address, self._node.clock, self._handle)
        self._started = True

    def stop(self) -> None:
        if self._started:
            self._network.unregister(self.address)
            self._started = False

    def _dispatch(self, method: str, payload: bytes, peer: Optional[str]) -> bytes:
        handler = self._methods.get(method)
        if handler is None:
            raise RpcError(f"unknown method {method!r} at {self.address!r}")
        return handler(payload, peer)

    def _handle(self, request: bytes) -> bytes:
        try:
            msg = _open_envelope(request, "call")
            response = self._dispatch(msg["method"], msg["payload"], None)
            return _envelope("reply", payload=response)
        except (ReproError, KeyError) as exc:
            return _envelope("error", message=f"{type(exc).__name__}: {exc}")


class RpcClient:
    """Cleartext RPC caller."""

    def __init__(self, network: Network, address: str, node: Node) -> None:
        self._network = network
        self.address = address
        self._node = node

    def call(
        self,
        dst: str,
        method: str,
        payload: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
    ) -> bytes:
        request = _envelope("call", method=method, payload=payload)
        raw = self._network.call(
            self.address,
            self._node.clock,
            dst,
            request,
            declared_request=declared_request,
            declared_response=declared_response,
        )
        return _open_envelope(raw, "reply")["payload"]


class SecureRpcServer(RpcServer):
    """RPC endpoint behind the network shield (TLS sessions per client)."""

    def __init__(
        self,
        network: Network,
        address: str,
        node: Node,
        shield: NetworkShield,
        require_client_cert: bool = True,
    ) -> None:
        super().__init__(network, address, node)
        self._shield = shield
        self._require_client_cert = require_client_cert
        self._pending: Dict[int, ServerHandshake] = {}
        self._sessions: Dict[int, Tuple[RecordLayer, Optional[str]]] = {}
        self._conn_ids = itertools.count(1)

    def _handle(self, request: bytes) -> bytes:
        try:
            msg = _open_envelope(request)
            kind = msg["kind"]
            if kind == "hs1":
                handshake = self._shield.server_handshake(
                    require_client_cert=self._require_client_cert,
                    now=self._node.clock.now,
                )
                conn = next(self._conn_ids)
                flight = handshake.respond(msg["hello"])
                self._pending[conn] = handshake
                return _envelope("hs1_reply", conn=conn, flight=flight)
            if kind == "hs2":
                conn = msg["conn"]
                handshake = self._pending.pop(conn, None)
                if handshake is None:
                    raise RpcError(f"no pending handshake for connection {conn}")
                handshake.complete(msg["client_flight"])
                self._shield.charge_handshake()
                self._sessions[conn] = (
                    handshake.record_layer,
                    handshake.peer_subject,
                )
                return _envelope("hs2_reply", conn=conn)
            if kind == "secure_call":
                conn = msg["conn"]
                session = self._sessions.get(conn)
                if session is None:
                    raise RpcError(f"unknown secure connection {conn}")
                records, peer = session
                declared = msg.get("declared_request")
                inner_raw = unprotect_timed(records, self._shield.stats, msg["record"])
                charge_record_crypto(
                    self._node.cost_model,
                    self._node.clock,
                    self._shield.stats,
                    declared if declared is not None else len(inner_raw),
                )
                inner = _open_envelope(inner_raw, "call")
                response = self._dispatch(inner["method"], inner["payload"], peer)
                reply = _envelope("reply", payload=response)
                declared_resp = msg.get("declared_response")
                charge_record_crypto(
                    self._node.cost_model,
                    self._node.clock,
                    self._shield.stats,
                    declared_resp if declared_resp is not None else len(reply),
                )
                return _envelope(
                    "secure_reply",
                    record=protect_timed(records, self._shield.stats, reply),
                )
            raise RpcError(f"unexpected envelope kind {kind!r}")
        except (ReproError, KeyError) as exc:
            return _envelope("error", message=f"{type(exc).__name__}: {exc}")


class SecureConnection:
    """One established TLS session from a client to a secure server."""

    def __init__(
        self,
        client: "SecureRpcClient",
        dst: str,
        conn: int,
        records: RecordLayer,
        peer_subject: Optional[str],
    ) -> None:
        self._client = client
        self._dst = dst
        self._conn = conn
        self._records = records
        self.peer_subject = peer_subject

    def call(
        self,
        method: str,
        payload: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
    ) -> bytes:
        client = self._client
        inner = _envelope("call", method=method, payload=payload)
        charge_record_crypto(
            client._node.cost_model,
            client._node.clock,
            client._shield.stats,
            declared_request if declared_request is not None else len(inner),
        )
        request = _envelope(
            "secure_call",
            conn=self._conn,
            record=protect_timed(self._records, client._shield.stats, inner),
            declared_request=declared_request,
            declared_response=declared_response,
        )
        raw = client._network.call(
            client.address,
            client._node.clock,
            self._dst,
            request,
            declared_request=declared_request,
            declared_response=declared_response,
        )
        msg = _open_envelope(raw, "secure_reply")
        try:
            reply_raw = unprotect_timed(self._records, client._shield.stats, msg["record"])
        except IntegrityError:
            client._network.stats.tampered_detected += 1
            raise
        charge_record_crypto(
            client._node.cost_model,
            client._node.clock,
            client._shield.stats,
            declared_response if declared_response is not None else len(reply_raw),
        )
        return _open_envelope(reply_raw, "reply")["payload"]


class SecureRpcClient(RpcClient):
    """RPC caller that establishes network-shield TLS sessions."""

    def __init__(
        self,
        network: Network,
        address: str,
        node: Node,
        shield: NetworkShield,
    ) -> None:
        super().__init__(network, address, node)
        self._shield = shield

    def connect(
        self,
        dst: str,
        expected_server: Optional[str] = None,
        mutual: bool = True,
    ) -> SecureConnection:
        """Run the TLS handshake with ``dst`` and return the session."""
        handshake = self._shield.client_handshake(
            expected_server=expected_server,
            mutual=mutual,
            now=self._node.clock.now,
        )
        raw = self._network.call(
            self.address, self._node.clock, dst, _envelope("hs1", hello=handshake.hello())
        )
        msg = _open_envelope(raw, "hs1_reply")
        client_flight = handshake.finish(msg["flight"])
        raw = self._network.call(
            self.address,
            self._node.clock,
            dst,
            _envelope("hs2", conn=msg["conn"], client_flight=client_flight),
        )
        _open_envelope(raw, "hs2_reply")
        self._shield.charge_handshake()
        return SecureConnection(
            self,
            dst,
            msg["conn"],
            handshake.record_layer,
            handshake.peer_subject,
        )
