"""RPC over the simulated network — plain and network-shield-protected.

Plain RPC (:class:`RpcServer`/:class:`RpcClient`) is what *native*
TensorFlow uses: canonical-encoded envelopes in cleartext, readable and
forgeable by the Dolev-Yao adversary.  Secure RPC layers the network
shield's TLS session over the same transport: a two-step handshake
(carried as plain RPCs, as TLS handshakes are), then AEAD-protected
records per call.  The paper's Fig. 8 contrast "with/without network
shield" is exactly the choice between these two stacks.

Resilience (paper challenge ❹ — elastic clouds kill containers and lose
messages) is layered on without changing the wire protocol's shape:

- **Typed remote errors**: the error envelope carries the exception
  class name, and callers re-raise the matching :mod:`repro.errors`
  type, so a remote ``PolicyError`` stays a policy decision (never
  retried) instead of collapsing into a generic ``RpcError``.
- **At-most-once calls**: clients built with a
  :class:`~repro.cluster.retry.RetryPolicy` stamp each call with a
  unique call ID; servers keep a bounded dedup window of (ID → reply),
  so a retried or duplicate-delivered mutation executes exactly once
  and the cached reply is returned.
- **Retry/backoff + circuit breaking** on every client call, via
  :class:`~repro.cluster.retry.RetryingExecutor`.
- **Epoch fencing**: a client holding an
  :class:`~repro.cluster.epoch.EpochLease` (``client.fence = lease``)
  stamps its role + epoch into every call envelope; servers guarding a
  role (:meth:`RpcServer.add_guard`) reject stale-epoch requests with a
  typed :class:`~repro.errors.FencedError` *before* dispatch, so a
  zombie leader's writes never execute.  Fencing errors are
  authoritative — the retry layer refuses to re-issue them.
- **Transparent secure-session reconnect**: a :class:`SecureConnection`
  that hits a transport fault or a restarted server re-runs the full
  TLS handshake (charged through the shield's cost model) and resends
  under the same call ID — replay-safe because of the dedup window.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

import repro.errors as _errors
from repro._sim import probe
from repro.cluster.epoch import EpochGuard, EpochLease
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.retry import (
    BreakerRegistry,
    RecoveryStats,
    RetryPolicy,
    RetryingExecutor,
)
from repro.crypto import encoding
from repro.crypto.tls import RecordLayer
from repro.errors import (
    IntegrityError,
    ReproError,
    RpcError,
    RpcTransportError,
    StaleConnectionError,
)
from repro.runtime import stats_registry
from repro.runtime.syscall import SyscallInterface
from repro.runtime.net_shield import (
    NetworkShield,
    ServerHandshake,
    charge_record_crypto,
    protect_timed,
    unprotect_timed,
)

#: method handler: fn(payload_bytes, peer_subject) -> response_bytes
MethodHandler = Callable[[bytes, Optional[str]], bytes]

#: Known error types a remote error envelope may name.
_ERROR_TYPES = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, ReproError)
}

def _envelope(kind: str, **fields: object) -> bytes:
    return encoding.encode({"kind": kind, **fields})


def _trace_fields(tracer: object, clock) -> dict:
    """Trace-context envelope fields for the innermost open span on
    ``clock`` — empty (so envelopes are byte-identical to an untraced
    build) when tracing is off or no span is open."""
    if tracer is None:
        return {}
    context = tracer.current_context(clock)
    return {"trace": context} if context is not None else {}


def _raise_remote_error(msg: dict) -> None:
    """Re-raise a remote failure as its original :mod:`repro.errors` type."""
    error_cls = _ERROR_TYPES.get(msg.get("error"), RpcError)
    raise error_cls(f"remote error: {msg.get('message', 'unknown')}")


def _open_envelope(data: bytes, expected: Optional[str] = None) -> dict:
    try:
        msg = encoding.decode(data)
    except IntegrityError as exc:
        raise RpcError("malformed RPC envelope") from exc
    if not isinstance(msg, dict) or "kind" not in msg:
        raise RpcError("RPC envelope missing kind")
    if msg["kind"] == "error":
        _raise_remote_error(msg)
    if expected is not None and msg["kind"] != expected:
        raise RpcError(f"expected {expected!r} envelope, got {msg['kind']!r}")
    return msg


class PendingRpc:
    """One in-flight call whose send half has already run.

    Returned by the ``begin_call`` methods: the optimistic first attempt
    is parked on the event heap; :meth:`settle` drives the heap until
    the reply lands (or falls back to the client's synchronous retry
    path, resending the **same** envelope under the same call ID).
    Settling is idempotent-unsafe by design — call it exactly once.
    """

    def __init__(self, settle) -> None:
        self._settle = settle

    def settle(self) -> bytes:
        return self._settle()


class RpcServer:
    """Cleartext RPC endpoint with an at-most-once dedup window."""

    #: Bounds of the (call ID → cached reply) dedup window.
    DEDUP_CAPACITY = 1024
    DEDUP_TTL = 300.0  # sim-seconds

    def __init__(
        self,
        network: Network,
        address: str,
        node: Node,
        syscalls: Optional[SyscallInterface] = None,
    ) -> None:
        self._network = network
        self.address = address
        self._node = node
        #: The syscall plane this endpoint's socket I/O is charged to at
        #: delivery time (enclave plane for shielded servers, the node's
        #: host interface otherwise).
        self._syscalls = syscalls if syscalls is not None else node.syscall_interface()
        self._methods: Dict[str, MethodHandler] = {}
        self._started = False
        self._dedup: "OrderedDict[str, Tuple[float, bytes]]" = OrderedDict()
        #: Acceptor-side fencing guards, one per leader role this
        #: endpoint accepts writes from (see :meth:`add_guard`).
        self._guards: Dict[str, EpochGuard] = {}
        self.stats = RecoveryStats()
        stats_registry.register_recovery_stats(self.stats, node.clock)
        #: Called after a call commits (dispatched + dedup-recorded);
        #: lets stateful services checkpoint atomically with the dedup
        #: window (see ``ParameterServer``).
        self.on_committed: Optional[Callable[[], None]] = None

    def register(self, method: str, handler: MethodHandler) -> None:
        self._methods[method] = handler

    def add_guard(self, guard: EpochGuard) -> EpochGuard:
        """Fence this endpoint for the guard's role: every call envelope
        stamped for that role must carry an epoch ≥ the highest this
        guard has seen (requests below it raise
        :class:`~repro.errors.FencedError` before any handler runs).
        Guards with ``require=True`` additionally reject *unstamped*
        calls — an endpoint that only serves a fenced leader demands
        proof of leadership on every request."""
        self._guards[guard.role] = guard
        return guard

    def start(self) -> None:
        if self._started:
            raise RpcError(f"server {self.address!r} already started")
        self._network.register(
            self.address, self._node.clock, self._handle, syscalls=self._syscalls
        )
        self._started = True

    def stop(self) -> None:
        if self._started:
            self._network.unregister(self.address)
            self._started = False

    def abort(self) -> None:
        """Crash the endpoint: vanish from the network, no teardown."""
        if self._started:
            self._network.unregister(self.address)
            self._started = False

    # -- dedup window ----------------------------------------------------

    def _expire_dedup(self, now: float) -> None:
        while self._dedup:
            call_id, (stamp, _) = next(iter(self._dedup.items()))
            if now - stamp < self.DEDUP_TTL:
                break
            del self._dedup[call_id]

    def dedup_snapshot(self) -> list:
        """The dedup window as re-loadable state (for checkpoints)."""
        return [(cid, stamp, reply) for cid, (stamp, reply) in self._dedup.items()]

    def dedup_restore(self, entries: list) -> None:
        self._dedup = OrderedDict(
            (cid, (stamp, reply)) for cid, stamp, reply in entries
        )

    def _dispatch(self, method: str, payload: bytes, peer: Optional[str]) -> bytes:
        handler = self._methods.get(method)
        if handler is None:
            raise RpcError(f"unknown method {method!r} at {self.address!r}")
        return handler(payload, peer)

    def _dispatch_call(self, msg: dict, peer: Optional[str]) -> bytes:
        """Dispatch one call envelope with at-most-once semantics.

        The envelope's propagated trace context (if any) parents the
        handler span, linking the client's call span on its node to the
        server work on this one — one trace ID across the cluster.
        """
        trace = msg.get("trace")
        if not (isinstance(trace, dict) and "t" in trace and "s" in trace):
            trace = None  # absent or forged context must not fail the call
        with probe.span(
            self._node.clock,
            "rpc.server",
            category="rpc",
            attrs={"address": self.address, "method": msg.get("method")},
            parent_context=trace,
        ):
            return self._dispatch_call_inner(msg, peer)

    def _check_fence(self, msg: dict) -> None:
        """Reject stale-epoch (or missing-epoch, for ``require`` guards)
        requests before any handler executes."""
        if not self._guards:
            return
        fence = msg.get("fence")
        if not isinstance(fence, dict):
            fence = None
        for role, guard in self._guards.items():
            if fence is not None and fence.get("role") == role:
                epoch = fence.get("epoch")
                guard.check(epoch if isinstance(epoch, int) else None)
            else:
                guard.check(None)

    def _dispatch_call_inner(self, msg: dict, peer: Optional[str]) -> bytes:
        call_id = msg.get("call_id")
        now = self._node.clock.now
        if call_id is not None:
            self._expire_dedup(now)
            hit = self._dedup.get(call_id)
            if hit is not None:
                self.stats.dedup_hits += 1
                return hit[1]
        # Fencing before deadline/dispatch (but after dedup replay: a
        # cached reply is work that already committed under a then-valid
        # epoch, and replaying it executes nothing).
        self._check_fence(msg)
        deadline = msg.get("deadline")
        if isinstance(deadline, (int, float)) and now > deadline:
            # Server-side shed of already-expired work: the caller's
            # budget ran out while this request sat on the wire or in
            # queue — executing it would burn enclave time on a reply
            # nobody is waiting for.  (A dedup hit above still replays
            # its cached reply: the work already happened.)
            raise _errors.DeadlineExceededError(
                f"request deadline {deadline:.6f} expired at "
                f"{self.address!r} (now {now:.6f})"
            )
        response = self._dispatch(msg["method"], msg["payload"], peer)
        if call_id is not None:
            self._dedup[call_id] = (now, response)
            while len(self._dedup) > self.DEDUP_CAPACITY:
                self._dedup.popitem(last=False)
        if self.on_committed is not None:
            try:
                self.on_committed()
            except Exception:
                # The commit hook (e.g. a fenced checkpoint save) vetoed
                # the call: the success reply must not survive in the
                # dedup window, or a duplicate delivery would replay an
                # outcome that never committed.
                if call_id is not None:
                    self._dedup.pop(call_id, None)
                raise
        return response

    def _handle(self, request: bytes) -> bytes:
        try:
            msg = _open_envelope(request, "call")
            response = self._dispatch_call(msg, None)
            return _envelope("reply", payload=response)
        except (ReproError, KeyError) as exc:
            return _envelope(
                "error",
                message=f"{type(exc).__name__}: {exc}",
                error=type(exc).__name__,
            )


class RpcClient:
    """Cleartext RPC caller (optionally retrying with backoff)."""

    def __init__(
        self,
        network: Network,
        address: str,
        node: Node,
        retry: Optional[RetryPolicy] = None,
        breakers: Optional[BreakerRegistry] = None,
        syscalls: Optional[SyscallInterface] = None,
    ) -> None:
        self._network = network
        self.address = address
        self._node = node
        self._syscalls = syscalls if syscalls is not None else node.syscall_interface()
        self.stats = RecoveryStats()
        #: When set (an :class:`~repro.cluster.epoch.EpochLease`), every
        #: call envelope carries this lease's role + epoch.  The stamp is
        #: the lease's *cached* epoch — a fenced zombie keeps stamping
        #: its dead epoch, and the acceptor's guard is what says no.
        self.fence: Optional[EpochLease] = None
        self._executor: Optional[RetryingExecutor] = None
        if retry is not None:
            stats_registry.register_recovery_stats(self.stats, node.clock)
            self._executor = RetryingExecutor(
                retry,
                node.clock,
                node.rng.child(f"retry|{address}"),
                breakers=breakers or BreakerRegistry(stats=self.stats),
                stats=self.stats,
                # Backoffs ride the network's event heap, so a parked
                # retry never blocks the rest of the fleet.
                scheduler=network.scheduler,
            )
        # The instance number is drawn from the *network* (not a process
        # global): unique within the simulation — which is all dedup
        # needs — and reproducible however many simulations ran earlier
        # in this process.
        self._call_nonce = f"{address}#{network.next_client_instance()}"
        self._call_seq = itertools.count(1)

    def next_call_id(self) -> str:
        """A network-unique call ID (at-most-once dedup key)."""
        return f"{self._call_nonce}/{next(self._call_seq)}"

    def reset_breaker(self, dst: str) -> None:
        """Forget accumulated failures for ``dst`` (after known recovery)."""
        if self._executor is not None:
            self._executor.breakers.reset(dst)

    def _roundtrip(
        self,
        dst: str,
        request: bytes,
        declared_request: Optional[int],
        declared_response: Optional[int],
    ) -> bytes:
        # The caller's socket write goes through its own syscall plane
        # (fire-and-forget submission); the read for the reply is charged
        # after the response arrives.
        self._syscalls.socket_send(
            declared_request if declared_request is not None else len(request)
        )
        raw = self._network.call(
            self.address,
            self._node.clock,
            dst,
            request,
            declared_request=declared_request,
            declared_response=declared_response,
        )
        self._syscalls.socket_recv(
            declared_response if declared_response is not None else len(raw)
        )
        return _open_envelope(raw, "reply")["payload"]

    def call(
        self,
        dst: str,
        method: str,
        payload: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> bytes:
        """Issue an RPC.  ``deadline`` (absolute simulated seconds) is
        stamped into the call envelope so the server can shed the request
        if it arrives already expired, and bounds this client's retry
        loop to the same budget."""
        with probe.span(
            self._node.clock,
            "rpc.call",
            category="rpc",
            attrs={"dst": dst, "method": method},
        ):
            trace = _trace_fields(probe.ACTIVE, self._node.clock)
            budget = {"deadline": deadline} if deadline is not None else {}
            stamp = {"fence": self.fence.stamp()} if self.fence is not None else {}
            if self._executor is None:
                request = _envelope(
                    "call", method=method, payload=payload, **budget, **trace, **stamp
                )
                return self._roundtrip(dst, request, declared_request, declared_response)
            request = _envelope(
                "call",
                method=method,
                payload=payload,
                call_id=self.next_call_id(),
                **budget,
                **trace,
                **stamp,
            )
            return self._executor.run(
                dst,
                lambda: self._roundtrip(dst, request, declared_request, declared_response),
                deadline=deadline,
            )

    def begin_call(
        self,
        dst: str,
        method: str,
        payload: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
    ) -> "PendingRpc":
        """Issue the send half of a call now; settle the reply later.

        The envelope (and its dedup call ID) is built exactly once: the
        optimistic first attempt rides the event heap as an async
        completion, and if that attempt fails in a retryable way,
        :meth:`PendingRpc.settle` falls back to the executor's
        synchronous retry loop **resending the same envelope** — so the
        server's at-most-once window sees one call ID however the
        attempt was carried.  Several pending calls issued back-to-back
        share the caller's send timestamp, overlapping their transfers
        (this is how sharded training fans out per-shard traffic).
        """
        trace = _trace_fields(probe.ACTIVE, self._node.clock)
        stamp = {"fence": self.fence.stamp()} if self.fence is not None else {}
        ids = {"call_id": self.next_call_id()} if self._executor is not None else {}
        request = _envelope(
            "call", method=method, payload=payload, **ids, **trace, **stamp
        )
        completion = None
        first_error: Optional[Exception] = None
        try:
            self._syscalls.socket_send(
                declared_request if declared_request is not None else len(request)
            )
            completion = self._network.call_async(
                self.address,
                self._node.clock,
                dst,
                request,
                declared_request=declared_request,
                declared_response=declared_response,
            )
        except (RpcTransportError, StaleConnectionError) as exc:
            first_error = exc

        def settle() -> bytes:
            if completion is not None:
                try:
                    raw = self._network.scheduler.run_until(completion)
                    self._syscalls.socket_recv(
                        declared_response
                        if declared_response is not None
                        else len(raw)
                    )
                    return _open_envelope(raw, "reply")["payload"]
                except (RpcTransportError, StaleConnectionError):
                    if self._executor is None:
                        raise
            elif self._executor is None:
                raise first_error  # type: ignore[misc]
            return self._executor.run(
                dst,
                lambda: self._roundtrip(
                    dst, request, declared_request, declared_response
                ),
            )

        return PendingRpc(settle)


class SecureRpcServer(RpcServer):
    """RPC endpoint behind the network shield (TLS sessions per client)."""

    #: Bounds on half-open handshakes: abandoned ``hs1`` state expires by
    #: count and by clock age, so a flaky (or malicious) client cannot
    #: pin server memory.
    PENDING_CAPACITY = 64
    PENDING_TTL = 60.0  # sim-seconds

    def __init__(
        self,
        network: Network,
        address: str,
        node: Node,
        shield: NetworkShield,
        require_client_cert: bool = True,
    ) -> None:
        # A shielded server's socket I/O belongs to its enclave's plane.
        super().__init__(network, address, node, syscalls=shield.syscalls)
        self._shield = shield
        self._require_client_cert = require_client_cert
        self._pending: "OrderedDict[int, Tuple[float, ServerHandshake]]" = OrderedDict()
        self._sessions: Dict[int, Tuple[RecordLayer, Optional[str]]] = {}
        self._conn_ids = itertools.count(1)

    def abort(self) -> None:
        super().abort()
        self._pending.clear()
        self._sessions.clear()

    def _expire_pending(self, now: float) -> None:
        while self._pending:
            conn, (stamp, _) = next(iter(self._pending.items()))
            if now - stamp < self.PENDING_TTL and len(self._pending) <= self.PENDING_CAPACITY:
                break
            del self._pending[conn]
            self.stats.handshakes_expired += 1

    def _handle(self, request: bytes) -> bytes:
        try:
            msg = _open_envelope(request)
            kind = msg["kind"]
            now = self._node.clock.now
            if kind == "hs1":
                handshake = self._shield.server_handshake(
                    require_client_cert=self._require_client_cert,
                    now=now,
                )
                conn = next(self._conn_ids)
                flight = handshake.respond(msg["hello"])
                self._pending[conn] = (now, handshake)
                self._expire_pending(now)
                return _envelope("hs1_reply", conn=conn, flight=flight)
            if kind == "hs2":
                conn = msg["conn"]
                pending = self._pending.pop(conn, None)
                if pending is None:
                    if conn in self._sessions:
                        # Duplicate/retried hs2 for an established
                        # session: idempotent success.
                        return _envelope("hs2_reply", conn=conn)
                    raise StaleConnectionError(
                        f"no pending handshake for connection {conn}"
                    )
                _, handshake = pending
                handshake.complete(msg["client_flight"])
                self._shield.charge_handshake()
                self._sessions[conn] = (
                    handshake.record_layer,
                    handshake.peer_subject,
                )
                return _envelope("hs2_reply", conn=conn)
            if kind == "secure_call":
                conn = msg["conn"]
                session = self._sessions.get(conn)
                if session is None:
                    raise StaleConnectionError(f"unknown secure connection {conn}")
                records, peer = session
                declared = msg.get("declared_request")
                inner_raw = unprotect_timed(records, self._shield.stats, msg["record"])
                charge_record_crypto(
                    self._node.cost_model,
                    self._node.clock,
                    self._shield.stats,
                    declared if declared is not None else len(inner_raw),
                )
                inner = _open_envelope(inner_raw, "call")
                response = self._dispatch_call(inner, peer)
                reply = _envelope("reply", payload=response)
                declared_resp = msg.get("declared_response")
                charge_record_crypto(
                    self._node.cost_model,
                    self._node.clock,
                    self._shield.stats,
                    declared_resp if declared_resp is not None else len(reply),
                )
                return _envelope(
                    "secure_reply",
                    record=protect_timed(records, self._shield.stats, reply),
                )
            raise RpcError(f"unexpected envelope kind {kind!r}")
        except (ReproError, KeyError) as exc:
            return _envelope(
                "error",
                message=f"{type(exc).__name__}: {exc}",
                error=type(exc).__name__,
            )


class SecureConnection:
    """One established TLS session from a client to a secure server.

    With a retrying client, the session is *self-healing*: a transport
    fault, a desynced record layer, or a server restart triggers a full
    re-handshake (re-attested identity, fresh keys — charged via the
    shield's cost model) and the call is resent under its original call
    ID, which the server's dedup window makes at-most-once.
    """

    def __init__(
        self,
        client: "SecureRpcClient",
        dst: str,
        conn: int,
        records: RecordLayer,
        peer_subject: Optional[str],
        expected_server: Optional[str] = None,
        mutual: bool = True,
    ) -> None:
        self._client = client
        self._dst = dst
        self._conn = conn
        self._records = records
        self.peer_subject = peer_subject
        self._expected_server = expected_server
        self._mutual = mutual

    def _reconnect(self) -> None:
        with probe.span(
            self._client._node.clock,
            "rpc.reconnect",
            category="rpc",
            attrs={"dst": self._dst},
        ):
            conn, records, subject = self._client._handshake_once(
                self._dst, self._expected_server, self._mutual
            )
        self._conn = conn
        self._records = records
        self.peer_subject = subject
        self._client.stats.reconnects += 1

    def _call_once(
        self,
        inner: bytes,
        declared_request: Optional[int],
        declared_response: Optional[int],
    ) -> bytes:
        client = self._client
        charge_record_crypto(
            client._node.cost_model,
            client._node.clock,
            client._shield.stats,
            declared_request if declared_request is not None else len(inner),
        )
        request = _envelope(
            "secure_call",
            conn=self._conn,
            record=protect_timed(self._records, client._shield.stats, inner),
            declared_request=declared_request,
            declared_response=declared_response,
        )
        client._syscalls.socket_send(
            declared_request if declared_request is not None else len(request)
        )
        raw = client._network.call(
            client.address,
            client._node.clock,
            self._dst,
            request,
            declared_request=declared_request,
            declared_response=declared_response,
        )
        client._syscalls.socket_recv(
            declared_response if declared_response is not None else len(raw)
        )
        msg = _open_envelope(raw, "secure_reply")
        try:
            reply_raw = unprotect_timed(self._records, client._shield.stats, msg["record"])
        except IntegrityError:
            client._network.stats.tampered_detected += 1
            raise
        charge_record_crypto(
            client._node.cost_model,
            client._node.clock,
            client._shield.stats,
            declared_response if declared_response is not None else len(reply_raw),
        )
        return _open_envelope(reply_raw, "reply")["payload"]

    def call(
        self,
        method: str,
        payload: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> bytes:
        client = self._client
        with probe.span(
            client._node.clock,
            "rpc.call",
            category="rpc",
            attrs={"dst": self._dst, "method": method, "secure": True},
        ):
            return self._call_traced(
                method, payload, declared_request, declared_response, deadline
            )

    def _call_traced(
        self,
        method: str,
        payload: bytes,
        declared_request: Optional[int],
        declared_response: Optional[int],
        deadline: Optional[float] = None,
    ) -> bytes:
        client = self._client
        trace = _trace_fields(probe.ACTIVE, client._node.clock)
        budget = {"deadline": deadline} if deadline is not None else {}
        stamp = {"fence": client.fence.stamp()} if client.fence is not None else {}
        if client._executor is None:
            inner = _envelope(
                "call", method=method, payload=payload, **budget, **trace, **stamp
            )
            return self._call_once(inner, declared_request, declared_response)

        inner = _envelope(
            "call",
            method=method,
            payload=payload,
            call_id=client.next_call_id(),
            **budget,
            **trace,
            **stamp,
        )

        def attempt() -> bytes:
            try:
                return self._call_once(inner, declared_request, declared_response)
            except (RpcTransportError, StaleConnectionError, IntegrityError) as exc:
                # The session may be dead (server restarted) or desynced
                # (a record was lost or mangled in flight): TLS cannot
                # resume a broken stream, so establish a fresh session
                # before the next attempt resends under the same call ID.
                self._try_reconnect()
                if isinstance(exc, IntegrityError):
                    raise StaleConnectionError(
                        f"secure session to {self._dst!r} failed verification; "
                        "re-established"
                    ) from exc
                raise

        return client._executor.run(self._dst, attempt, deadline=deadline)

    def begin_call(
        self,
        method: str,
        payload: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
    ) -> PendingRpc:
        """Issue the send half of a secure call; settle the reply later.

        The inner envelope is protected and written to the wire now (on
        this caller's clock), so back-to-back ``begin_call``s to
        different shards overlap their transfers.  Each secure session
        carries at most one record in flight here, which keeps the
        record layer's sequence numbers aligned however the replies
        interleave on the heap.  On a retryable failure,
        :meth:`PendingRpc.settle` re-handshakes and resends the same
        inner envelope (same call ID) through the executor, exactly as
        :meth:`call` would.
        """
        client = self._client
        trace = _trace_fields(probe.ACTIVE, client._node.clock)
        stamp = {"fence": client.fence.stamp()} if client.fence is not None else {}
        ids = (
            {"call_id": client.next_call_id()}
            if client._executor is not None
            else {}
        )
        inner = _envelope(
            "call", method=method, payload=payload, **ids, **trace, **stamp
        )
        completion = None
        first_error: Optional[Exception] = None
        try:
            charge_record_crypto(
                client._node.cost_model,
                client._node.clock,
                client._shield.stats,
                declared_request if declared_request is not None else len(inner),
            )
            request = _envelope(
                "secure_call",
                conn=self._conn,
                record=protect_timed(self._records, client._shield.stats, inner),
                declared_request=declared_request,
                declared_response=declared_response,
            )
            client._syscalls.socket_send(
                declared_request if declared_request is not None else len(request)
            )
            completion = client._network.call_async(
                client.address,
                client._node.clock,
                self._dst,
                request,
                declared_request=declared_request,
                declared_response=declared_response,
            )
        except (RpcTransportError, StaleConnectionError) as exc:
            first_error = exc

        def finish(raw: bytes) -> bytes:
            client._syscalls.socket_recv(
                declared_response if declared_response is not None else len(raw)
            )
            msg = _open_envelope(raw, "secure_reply")
            try:
                reply_raw = unprotect_timed(
                    self._records, client._shield.stats, msg["record"]
                )
            except IntegrityError:
                client._network.stats.tampered_detected += 1
                raise
            charge_record_crypto(
                client._node.cost_model,
                client._node.clock,
                client._shield.stats,
                declared_response
                if declared_response is not None
                else len(reply_raw),
            )
            return _open_envelope(reply_raw, "reply")["payload"]

        def retry_attempt() -> bytes:
            try:
                return self._call_once(inner, declared_request, declared_response)
            except (RpcTransportError, StaleConnectionError, IntegrityError) as exc:
                self._try_reconnect()
                if isinstance(exc, IntegrityError):
                    raise StaleConnectionError(
                        f"secure session to {self._dst!r} failed verification; "
                        "re-established"
                    ) from exc
                raise

        def settle() -> bytes:
            if completion is not None:
                try:
                    return finish(client._network.scheduler.run_until(completion))
                except (RpcTransportError, StaleConnectionError, IntegrityError):
                    if client._executor is None:
                        raise
                    # The optimistic record may be lost or desynced:
                    # re-handshake before the executor resends.
                    self._try_reconnect()
            elif client._executor is None:
                raise first_error  # type: ignore[misc]
            return client._executor.run(self._dst, retry_attempt)

        return PendingRpc(settle)

    def _try_reconnect(self) -> None:
        try:
            self._reconnect()
        except RpcError:
            # Transport still down; the retry loop will back off and the
            # next attempt re-triggers reconnection.  Security failures
            # (bad certificate, tampered handshake) propagate.
            pass


class SecureRpcClient(RpcClient):
    """RPC caller that establishes network-shield TLS sessions."""

    def __init__(
        self,
        network: Network,
        address: str,
        node: Node,
        shield: NetworkShield,
        retry: Optional[RetryPolicy] = None,
        breakers: Optional[BreakerRegistry] = None,
    ) -> None:
        super().__init__(
            network,
            address,
            node,
            retry=retry,
            breakers=breakers,
            syscalls=shield.syscalls,
        )
        self._shield = shield

    def _handshake_once(
        self,
        dst: str,
        expected_server: Optional[str],
        mutual: bool,
    ) -> Tuple[int, RecordLayer, Optional[str]]:
        """One full TLS handshake with ``dst`` (fresh state each time)."""
        with probe.span(
            self._node.clock, "tls.handshake", category="crypto", attrs={"dst": dst}
        ):
            handshake = self._shield.client_handshake(
                expected_server=expected_server,
                mutual=mutual,
                now=self._node.clock.now,
            )
            hs1 = _envelope("hs1", hello=handshake.hello())
            self._syscalls.socket_send(len(hs1))
            raw = self._network.call(self.address, self._node.clock, dst, hs1)
            self._syscalls.socket_recv(len(raw))
            msg = _open_envelope(raw, "hs1_reply")
            client_flight = handshake.finish(msg["flight"])
            hs2 = _envelope("hs2", conn=msg["conn"], client_flight=client_flight)
            self._syscalls.socket_send(len(hs2))
            raw = self._network.call(self.address, self._node.clock, dst, hs2)
            self._syscalls.socket_recv(len(raw))
            _open_envelope(raw, "hs2_reply")
            self._shield.charge_handshake()
            return msg["conn"], handshake.record_layer, handshake.peer_subject

    def connect(
        self,
        dst: str,
        expected_server: Optional[str] = None,
        mutual: bool = True,
    ) -> SecureConnection:
        """Run the TLS handshake with ``dst`` and return the session.

        With a retry policy, a handshake interrupted by loss or a
        transient partition is restarted from ``hs1`` with fresh state
        after backoff (abandoned server-side state expires).
        """
        if self._executor is None:
            conn, records, subject = self._handshake_once(dst, expected_server, mutual)
        else:
            conn, records, subject = self._executor.run(
                dst, lambda: self._handshake_once(dst, expected_server, mutual)
            )
        return SecureConnection(
            self,
            dst,
            conn,
            records,
            subject,
            expected_server=expected_server,
            mutual=mutual,
        )
