"""Deterministic chaos injection (paper challenge ❹: elastic clouds).

Public clouds lose messages, stall links, deliver duplicates, split the
network, and kill containers — and they do it *constantly* at scale.  A
fault-tolerance claim is only testable if those faults can be produced
on demand and **reproduced exactly**, so this module implements a seeded
chaos plane:

- :class:`FaultPlan` — a deterministic plan of probabilistic message
  faults (loss, latency spikes, duplicate delivery), time-windowed
  transient partitions, and round-scheduled container crashes.  Every
  stochastic decision flows through :class:`repro._sim.rng
  .DeterministicRng`, so the same seed replays the same fault sequence
  byte for byte.
- ``FaultPlan.inject`` — a fault-chain element for
  :attr:`repro.cluster.network.Network.faults`, composable with the
  Dolev-Yao adversary hook (faults model the *cloud* misbehaving, the
  adversary models an *attacker*; the two are accounted separately).
- an **event trace**: every injected fault is appended to
  ``plan.events`` with its simulated timestamp; ``trace_bytes()`` is a
  canonical encoding that tests compare across runs to prove
  reproducibility.

The plan draws exactly three uniforms per in-scope message leg (loss,
delay, duplication) regardless of outcome, keeping the random stream
aligned no matter which faults fire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Set

from repro._sim.rng import DeterministicRng
from repro.cluster.network import FaultAction


@dataclass(frozen=True)
class FaultSpec:
    """Per-message fault probabilities (each leg rolls independently)."""

    loss: float = 0.0             # P(message dropped)
    delay: float = 0.0            # P(latency spike)
    delay_seconds: float = 0.05   # spike magnitude when one fires
    duplication: float = 0.0      # P(message delivered twice)
    #: Addresses the spec applies to (either endpoint); None = all.
    targets: Optional[FrozenSet[str]] = None

    def applies_to(self, src: str, dst: str) -> bool:
        return self.targets is None or src in self.targets or dst in self.targets


@dataclass(frozen=True)
class TransientPartition:
    """``address`` is unreachable during ``[start, end)`` sim-seconds.

    Healing is just simulated time passing — a client that backs off
    past ``end`` reconnects without anyone calling ``heal()``.

    ``direction`` selects which legs the partition severs:

    - ``"both"`` (default): the classic symmetric partition — no message
      touching ``address`` gets through in either direction.
    - ``"inbound"``: messages *to* ``address`` are dropped while its own
      sends still flow — the node is deaf but not mute (e.g. a
      half-broken switch port, or an iptables rule on its RX path).
    - ``"outbound"``: messages *from* ``address`` are dropped while it
      still hears the world — mute but not deaf.

    One-way partitions are the nastiest split-brain schedules: an
    outbound-partitioned primary still *receives* client writes and
    believes it is serving them (its replies and replications vanish),
    while the watchdog — whose probe replies are among the vanished
    sends — promotes a replacement.  Symmetric windows cannot express
    this: they silence the zombie's intake too.
    """

    address: str
    start: float
    end: float
    direction: str = "both"  # "both" | "inbound" | "outbound"

    def __post_init__(self) -> None:
        if self.direction not in ("both", "inbound", "outbound"):
            raise ValueError(
                f"partition direction must be 'both', 'inbound', or "
                f"'outbound', got {self.direction!r}"
            )

    def active(self, now: float) -> bool:
        return self.start <= now < self.end

    def drops(self, src: str, dst: str, now: float) -> bool:
        """Does this partition sever the ``src → dst`` leg at ``now``?

        Each network *leg* (a one-way message: request or reply) is
        judged independently, which is what makes one-way partitions
        expressible: the A→B request may die while the B→A reply path
        would have been fine.
        """
        if not self.active(now):
            return False
        if self.direction == "both":
            return self.address in (src, dst)
        if self.direction == "inbound":
            return dst == self.address
        return src == self.address  # outbound


@dataclass(frozen=True)
class CrashFault:
    """Kill container/service ``target`` at the start of round ``at_round``.

    Targets are role names interpreted by the deployment under test
    (e.g. ``"ps"`` or ``"worker-1"`` for a training job).  Crashes are
    round-scheduled rather than time-scheduled so recovery traces stay
    byte-identical even when retries shift the clock.
    """

    target: str
    at_round: int


@dataclass
class FaultCounters:
    """Per-fault injection counts (chaos-plane side of ``NetworkStats``)."""

    losses: int = 0
    delays: int = 0
    duplicates: int = 0
    partition_drops: int = 0
    crashes: int = 0


class FaultPlan:
    """A seeded, replayable schedule of network and container faults."""

    def __init__(
        self,
        seed: int,
        spec: FaultSpec = FaultSpec(),
        partitions: Sequence[TransientPartition] = (),
        crashes: Sequence[CrashFault] = (),
    ) -> None:
        self.seed = int(seed)
        self.spec = spec
        self.partitions = list(partitions)
        self.crashes = sorted(crashes, key=lambda c: (c.at_round, c.target))
        self.counters = FaultCounters()
        self.events: List[str] = []
        self._rng = DeterministicRng(self.seed, label="faults")
        self._fired: Set[CrashFault] = set()

    # -- trace ----------------------------------------------------------

    def record(self, event: str) -> None:
        self.events.append(event)

    def trace_bytes(self) -> bytes:
        """Canonical encoding of the injection trace (for replay tests)."""
        return "\n".join(self.events).encode()

    # -- message faults (fault-chain element) ----------------------------

    def inject(
        self, src: str, dst: str, n_bytes: int, now: float
    ) -> Optional[FaultAction]:
        for partition in self.partitions:
            if partition.drops(src, dst, now):
                self.counters.partition_drops += 1
                self.record(f"partition {src}->{dst} @{now:.6f}")
                return FaultAction(drop=True, reason="transient partition")
        if not self.spec.applies_to(src, dst):
            return None
        # Always three draws per leg, in a fixed order, so the stream
        # stays aligned whatever fires.
        u_loss = self._rng.uniform()
        u_delay = self._rng.uniform()
        u_dup = self._rng.uniform()
        action = FaultAction()
        if u_loss < self.spec.loss:
            self.counters.losses += 1
            self.record(f"loss {src}->{dst} @{now:.6f}")
            action.drop = True
            action.reason = "injected loss"
            return action
        if u_delay < self.spec.delay:
            self.counters.delays += 1
            self.record(f"delay {src}->{dst} @{now:.6f}")
            action.delay = self.spec.delay_seconds
        if u_dup < self.spec.duplication:
            self.counters.duplicates += 1
            self.record(f"duplicate {src}->{dst} @{now:.6f}")
            action.duplicate = True
        if not (action.delay or action.duplicate):
            return None
        return action

    # -- container crashes ----------------------------------------------

    def due_crashes(self, round_index: int) -> List[CrashFault]:
        """Crashes scheduled for ``round_index`` that have not fired yet."""
        due = [
            c
            for c in self.crashes
            if c.at_round == round_index and c not in self._fired
        ]
        for crash in due:
            self._fired.add(crash)
            self.counters.crashes += 1
            self.record(f"crash {crash.target} round={round_index}")
        return due


__all__ = [
    "CrashFault",
    "FaultCounters",
    "FaultPlan",
    "FaultSpec",
    "TransientPartition",
]
