"""Training workers: local graph + gradients on a data shard (§5.4).

Each worker owns a full local copy of the training graph (data-parallel
replication, as distributed TensorFlow does), executed with the **full
TensorFlow** engine profile — the paper trains with full TF because Lite
cannot train (§3.3.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

import repro.tensor as tf
from repro.cluster.node import Node
from repro.errors import ClusterError
from repro.runtime.net_shield import NetworkShield
from repro.runtime.scone import SconeRuntime
from repro.tensor.engine import ExecutionEngine, FULL_TF_TRAINING_PROFILE
from repro.tensor.variables import GLOBAL_VARIABLES


class TrainingWorker:
    """One data-parallel worker bound to a node + runtime."""

    def __init__(
        self,
        name: str,
        node: Node,
        runtime: SconeRuntime,
        model_name: str = "mnist_cnn",
        seed: int = 0,
        threads: int = 4,
        shield: Optional[NetworkShield] = None,
    ) -> None:
        from repro.models import build_model  # local import avoids cycle

        self.name = name
        self.node = node
        self.runtime = runtime
        self.shield = shield
        self.address = f"{name}@{node.node_id}"

        built = build_model(model_name, seed=seed)
        self._built = built
        self.graph = built.graph
        with self.graph.as_default():
            self._labels = tf.placeholder("float32", (None, 10), name=f"{name}/labels")
            self._loss = tf.losses.softmax_cross_entropy(self._labels, built.logits)
            self._variables = [
                v for v in self.graph.get_collection(GLOBAL_VARIABLES) if v.trainable
            ]
            self._grads = tf.gradients(
                self._loss, [v.tensor for v in self._variables]
            )
        engine = ExecutionEngine(runtime, FULL_TF_TRAINING_PROFILE, threads=threads)
        self._session = tf.Session(graph=self.graph, engine=engine, threads=threads)
        self.declared_model_bytes = int(
            sum(v.nbytes for v in self._variables) * self.graph.weight_scale
        )

    @property
    def variables(self) -> List:
        return list(self._variables)

    def initial_weights(self) -> Dict[str, np.ndarray]:
        """This worker's initialized weights (used to seed the PS)."""
        return {v.name: v.value for v in self._variables}

    def variable_nbytes(self) -> Dict[str, int]:
        """Per-variable float32 sizes — the shard map's input."""
        return {v.name: int(v.nbytes) for v in self._variables}

    def declared_bytes_for(self, nbytes: int) -> int:
        """Declared wire size for ``nbytes`` of local variables, scaled
        to the paper's model size the same way
        :attr:`declared_model_bytes` is."""
        return int(nbytes * self.graph.weight_scale)

    def load_weights(self, weights: Dict[str, np.ndarray]) -> None:
        for var in self._variables:
            if var.name not in weights:
                raise ClusterError(f"pulled weights missing {var.name!r}")
            var.load(weights[var.name])

    def compute_gradients(
        self, images: np.ndarray, labels: np.ndarray
    ) -> Tuple[Dict[str, np.ndarray], float]:
        """One forward+backward pass on a batch; returns (grads, loss)."""
        fetches = list(self._grads) + [self._loss]
        feed = {self._built.input: images, self._labels: labels}
        *grad_values, loss = self._session.run(fetches, feed_dict=feed)
        gradients = {
            var.name: np.asarray(g)
            for var, g in zip(self._variables, grad_values)
        }
        return gradients, float(loss)

    def evaluate_loss(self, images: np.ndarray, labels: np.ndarray) -> float:
        return float(
            self._session.run(
                self._loss, {self._built.input: images, self._labels: labels}
            )
        )
