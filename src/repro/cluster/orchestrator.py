"""Elastic, fault-tolerant container orchestration (paper challenge ❹).

Public clouds spawn and kill service containers as load changes; every
new secureTF container must be attested and provisioned before it may
join.  The orchestrator handles the mechanical part — placement,
lifecycle, failure handling — and exposes an ``on_start`` hook where the
secureTF platform layer attaches attestation + secret provisioning
(:mod:`repro.core.platform`), keeping the layering of Fig. 2.

Supervision: :meth:`Orchestrator.supervise` sweeps a service for failed
replicas and restarts each on its original node, re-running the
``on_start`` hooks so a *replacement* container is attested and
provisioned exactly like the original — a restarted enclave has fresh
memory and must re-prove itself.  Restarts are budgeted per replica
lineage (a crash-looping container is quarantined, not restarted
forever), and every supervision decision is appended to
:attr:`Orchestrator.events` for the monitoring plane.

Health probing scales two ways: the synchronous sweeps above (called
from drive loops, as the training supervisor does at round boundaries)
and a :class:`Watchdog` that schedules the same sweeps as **recurring
events on the event-heap scheduler** — the fleet-scale form, where a
256-replica deployment is probed on a simulated period without any
drive loop having to iterate the fleet between its own steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro._sim import probe as _probe
from repro._sim.clock import SimClock
from repro._sim.scheduler import Scheduler
from repro.cluster.container import Container, ContainerState
from repro.cluster.node import Node
from repro.errors import ClusterError
from repro.runtime.scone import RuntimeConfig

#: Builds the runtime config for replica ``index`` placed on ``node``.
ConfigFactory = Callable[[Node, int], RuntimeConfig]

#: Called after a container starts (attestation/provisioning hook).
StartHook = Callable[[Container], None]


@dataclass
class ContainerSpec:
    """A scalable service: a name prefix plus a per-replica config."""

    name: str
    config_factory: ConfigFactory


class Orchestrator:
    """Places containers on nodes round-robin; supports elastic scaling."""

    def __init__(self, nodes: List[Node], restart_budget: int = 3) -> None:
        if not nodes:
            raise ClusterError("orchestrator needs at least one node")
        self._nodes = list(nodes)
        self._next_placement = 0
        self._replicas: Dict[str, List[Container]] = {}
        self.on_start: List[StartHook] = []
        #: Max restarts per replica lineage before quarantine.
        self.restart_budget = restart_budget
        #: container name -> replica index it descends from (lineage root).
        self._lineage: Dict[str, int] = {}
        #: (spec name, lineage root index) -> restarts consumed.
        self._restarts: Dict[tuple, int] = {}
        #: Monotonic per-spec replica counter, so a replacement never
        #: reuses a crashed replica's name (names are identities in the
        #: network and the CAS session registry).
        self._spec_indices: Dict[str, int] = {}
        self._quarantined: Dict[str, List[Container]] = {}
        #: Supervision decisions, in order (restart/quarantine/failover).
        self.events: List[str] = []
        #: Singleton services under watchdog supervision:
        #: name -> (health probe, recovery action).
        self._services: Dict[str, tuple] = {}

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes)

    def replicas(self, spec_name: str) -> List[Container]:
        """Running replicas of a service."""
        return [
            c for c in self._replicas.get(spec_name, []) if c.running
        ]

    def all_containers(self) -> List[Container]:
        return [c for group in self._replicas.values() for c in group]

    def quarantined(self, spec_name: str) -> List[Container]:
        """Replicas whose lineage exhausted its restart budget."""
        return list(self._quarantined.get(spec_name, []))

    @property
    def restarts_total(self) -> int:
        return sum(self._restarts.values())

    @property
    def quarantined_total(self) -> int:
        return sum(len(group) for group in self._quarantined.values())

    # ------------------------------------------------------------------

    def _place(self, node: Optional[Node]) -> Node:
        if node is not None:
            return node
        chosen = self._nodes[self._next_placement % len(self._nodes)]
        self._next_placement += 1
        return chosen

    def launch(self, spec: ContainerSpec, node: Optional[Node] = None) -> Container:
        """Start one replica (attestation hooks run before it is visible)."""
        group = self._replicas.setdefault(spec.name, [])
        index = self._spec_indices.get(spec.name, 0)
        self._spec_indices[spec.name] = index + 1
        target = self._place(node)
        container = Container(
            f"{spec.name}-{index}", target, spec.config_factory(target, index)
        )
        container.start()
        for hook in self.on_start:
            hook(container)
        group.append(container)
        self._lineage[container.name] = index
        return container

    def scale_to(self, spec: ContainerSpec, replicas: int) -> List[Container]:
        """Elastic scaling: launch or stop replicas to reach ``replicas``."""
        if replicas < 0:
            raise ClusterError(f"cannot scale to {replicas} replicas")
        current = self.replicas(spec.name)
        while len(current) < replicas:
            self.launch(spec)
            current = self.replicas(spec.name)
        while len(current) > replicas:
            current[-1].stop()
            current = self.replicas(spec.name)
        return current

    def fail_container(self, container: Container) -> None:
        """Inject a crash."""
        container.fail()

    # -- supervision ----------------------------------------------------

    def health(self, spec_name: str) -> Dict[str, ContainerState]:
        """Probe every tracked replica: name -> lifecycle state."""
        return {c.name: c.state for c in self._replicas.get(spec_name, [])}

    def probe(self, spec_name: str) -> bool:
        """True when no tracked replica of the service is failed."""
        return all(
            c.state is not ContainerState.FAILED
            for c in self._replicas.get(spec_name, [])
        )

    def restart(
        self, spec: ContainerSpec, container: Container, reason: str = ""
    ) -> Optional[Container]:
        """Replace one failed replica, consuming its lineage's budget.

        Returns the replacement (attested and provisioned via the
        ``on_start`` hooks), or ``None`` when the lineage is out of
        budget and the replica was quarantined instead.  ``reason`` (a
        short tag like ``ps-shard-2``) is recorded in the event log so
        a sharded service's restarts are attributable per shard.
        """
        if container.state is not ContainerState.FAILED:
            raise ClusterError(
                f"container {container.name!r} is {container.state.name}, "
                "not FAILED"
            )
        group = self._replicas.setdefault(spec.name, [])
        if container in group:
            group.remove(container)
        root = self._lineage.get(container.name, 0)
        key = (spec.name, root)
        used = self._restarts.get(key, 0)
        if used >= self.restart_budget:
            self._quarantined.setdefault(spec.name, []).append(container)
            self.events.append(
                f"quarantine {container.name} restarts={used}"
            )
            _probe.flight(
                container.node.clock,
                "watchdog",
                container.name,
                f"quarantine restarts={used}",
            )
            _probe.incident(
                "watchdog.quarantine",
                container.name,
                clock=container.node.clock,
                detail=f"restart budget exhausted after {used} restarts",
            )
            return None
        self._restarts[key] = used + 1
        replacement = self.launch(spec, node=container.node)
        # The replacement continues the crashed replica's lineage: its
        # future crashes draw down the same budget.
        self._lineage[replacement.name] = root
        self.events.append(
            f"restart {container.name} -> {replacement.name} "
            f"budget={self.restart_budget - used - 1}"
            + (f" reason={reason}" if reason else "")
        )
        _probe.flight(
            container.node.clock,
            "watchdog",
            container.name,
            f"restart -> {replacement.name}"
            + (f" reason={reason}" if reason else ""),
        )
        return replacement

    def supervise(self, spec: ContainerSpec) -> Dict[str, Optional[Container]]:
        """One supervision pass: restart (or quarantine) failed replicas.

        Returns failed-name -> replacement container (None = quarantined).
        """
        outcome: Dict[str, Optional[Container]] = {}
        for container in list(self._replicas.get(spec.name, [])):
            if container.state is ContainerState.FAILED:
                outcome[container.name] = self.restart(spec, container)
        return outcome

    # -- singleton-service watchdog -------------------------------------

    def register_service(
        self,
        name: str,
        probe: Callable[[], bool],
        recover: Callable[[], None],
    ) -> None:
        """Supervise a non-container service (e.g. the CAS pair): when
        ``probe()`` goes false, run ``recover()`` — typically a standby
        promotion rather than a restart."""
        self._services[name] = (probe, recover)

    def supervise_services(self) -> Dict[str, bool]:
        """One watchdog pass over registered services.

        Returns name -> health *before* recovery; unhealthy services had
        their recovery action run (and an event logged).
        """
        outcome: Dict[str, bool] = {}
        for name, (probe, recover) in self._services.items():
            healthy = bool(probe())
            outcome[name] = healthy
            if not healthy:
                recover()
                self.events.append(f"service-failover {name}")
                _probe.flight(None, "watchdog", name, "service-failover")
        return outcome

    def recover(self, spec: ContainerSpec) -> List[Container]:
        """Replace every failed replica with a fresh attested container."""
        return [
            replacement
            for replacement in self.supervise(spec).values()
            if replacement is not None
        ]

    def start_watchdog(
        self,
        scheduler: Scheduler,
        interval: float,
        specs: Optional[List[ContainerSpec]] = None,
        clock: Optional[SimClock] = None,
    ) -> "Watchdog":
        """Probe health on a simulated period, as scheduler events.

        Every ``interval`` simulated seconds the watchdog runs one
        supervision pass (container restarts for ``specs``, singleton-
        service failovers for everything registered via
        :meth:`register_service`) on ``clock`` — by default the first
        node's, standing in for the control-plane machine.  The probes
        interleave with whatever the fleet is doing purely by heap
        order; nothing scans the fleet between drive-loop steps.
        """
        watchdog = Watchdog(
            self,
            scheduler,
            clock if clock is not None else self._nodes[0].clock,
            interval,
            specs or [],
        )
        watchdog.start()
        return watchdog

    def stop_all(self) -> None:
        for container in self.all_containers():
            if container.running:
                container.stop()


class Watchdog:
    """Recurring orchestrator health probes on the event heap."""

    def __init__(
        self,
        orchestrator: Orchestrator,
        scheduler: Scheduler,
        clock: SimClock,
        interval: float,
        specs: List[ContainerSpec],
    ) -> None:
        if interval <= 0:
            raise ClusterError(f"probe interval must be positive: {interval}")
        self._orchestrator = orchestrator
        self._scheduler = scheduler
        self._clock = clock
        self._interval = interval
        self._specs = specs
        self._stopped = True
        self.ticks = 0
        self.restarts = 0
        self.failovers = 0

    def start(self) -> None:
        self._stopped = False
        self._schedule_next(self._clock.now + self._interval)

    def stop(self) -> None:
        """No further probes fire (the pending event is skipped)."""
        self._stopped = True

    def _schedule_next(self, due: float) -> None:
        self._scheduler.schedule(
            due, lambda: self._tick(due), label="watchdog:probe"
        )

    def _tick(self, due: float) -> None:
        if self._stopped:
            return
        self._clock.advance_to(due)
        self.ticks += 1
        for spec in self._specs:
            for replacement in self._orchestrator.supervise(spec).values():
                if replacement is not None:
                    self.restarts += 1
        for name, healthy in self._orchestrator.supervise_services().items():
            if not healthy:
                self.failovers += 1
        self._schedule_next(due + self._interval)
