"""Elastic, fault-tolerant container orchestration (paper challenge ❹).

Public clouds spawn and kill service containers as load changes; every
new secureTF container must be attested and provisioned before it may
join.  The orchestrator handles the mechanical part — placement,
lifecycle, failure handling — and exposes an ``on_start`` hook where the
secureTF platform layer attaches attestation + secret provisioning
(:mod:`repro.core.platform`), keeping the layering of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cluster.container import Container, ContainerState
from repro.cluster.node import Node
from repro.errors import ClusterError
from repro.runtime.scone import RuntimeConfig

#: Builds the runtime config for replica ``index`` placed on ``node``.
ConfigFactory = Callable[[Node, int], RuntimeConfig]

#: Called after a container starts (attestation/provisioning hook).
StartHook = Callable[[Container], None]


@dataclass
class ContainerSpec:
    """A scalable service: a name prefix plus a per-replica config."""

    name: str
    config_factory: ConfigFactory


class Orchestrator:
    """Places containers on nodes round-robin; supports elastic scaling."""

    def __init__(self, nodes: List[Node]) -> None:
        if not nodes:
            raise ClusterError("orchestrator needs at least one node")
        self._nodes = list(nodes)
        self._next_placement = 0
        self._replicas: Dict[str, List[Container]] = {}
        self.on_start: List[StartHook] = []

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes)

    def replicas(self, spec_name: str) -> List[Container]:
        """Running replicas of a service."""
        return [
            c for c in self._replicas.get(spec_name, []) if c.running
        ]

    def all_containers(self) -> List[Container]:
        return [c for group in self._replicas.values() for c in group]

    # ------------------------------------------------------------------

    def _place(self, node: Optional[Node]) -> Node:
        if node is not None:
            return node
        chosen = self._nodes[self._next_placement % len(self._nodes)]
        self._next_placement += 1
        return chosen

    def launch(self, spec: ContainerSpec, node: Optional[Node] = None) -> Container:
        """Start one replica (attestation hooks run before it is visible)."""
        group = self._replicas.setdefault(spec.name, [])
        index = len(group)
        target = self._place(node)
        container = Container(
            f"{spec.name}-{index}", target, spec.config_factory(target, index)
        )
        container.start()
        for hook in self.on_start:
            hook(container)
        group.append(container)
        return container

    def scale_to(self, spec: ContainerSpec, replicas: int) -> List[Container]:
        """Elastic scaling: launch or stop replicas to reach ``replicas``."""
        if replicas < 0:
            raise ClusterError(f"cannot scale to {replicas} replicas")
        current = self.replicas(spec.name)
        while len(current) < replicas:
            self.launch(spec)
            current = self.replicas(spec.name)
        while len(current) > replicas:
            current[-1].stop()
            current = self.replicas(spec.name)
        return current

    def fail_container(self, container: Container) -> None:
        """Inject a crash."""
        container.fail()

    def recover(self, spec: ContainerSpec) -> List[Container]:
        """Replace every failed replica with a fresh attested container."""
        replaced = []
        for container in list(self._replicas.get(spec.name, [])):
            if container.state is ContainerState.FAILED:
                self._replicas[spec.name].remove(container)
                replaced.append(self.launch(spec, node=container.node))
        return replaced

    def stop_all(self) -> None:
        for container in self.all_containers():
            if container.running:
                container.stop()
