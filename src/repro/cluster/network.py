"""The simulated LAN: latency, bandwidth, faults, and a Dolev-Yao adversary.

Endpoints are named addresses backed by synchronous request handlers.
Delivery runs on the global event-heap scheduler
(:class:`~repro._sim.scheduler.Scheduler`): a call is a **send event +
park/resume pair** rather than a nested synchronous walk —

    send:     fault/adversary checks on the caller's clock, then a
              delivery event scheduled at
              ``arrival = caller.now + rtt/2 + req_size/bw (+ spike)``
    deliver:  ``callee.advance_to(arrival)`` (no-op if the callee is
              already past it — a saturated callee delays its callers),
              charge the socket read, run the handler, then schedule
              the reply event at ``callee.now + rtt/2 + resp_size/bw``
    reply:    advance the caller to the reply time and resume it with
              the response

so timing is *identical* to the old per-node-clock walk, but a
256-node fleet costs O(events · log events) with no Python recursion
tied to call nesting: blocking callers park via
:meth:`~repro._sim.scheduler.Scheduler.run_until` (legacy drive loops
keep working unchanged), coroutine activities park stacklessly via
:meth:`call_async` + ``yield``.

Two interception layers run on every payload, in order:

- the **fault chain** (``Network.faults``): composable injectors — the
  seeded chaos plane of :mod:`repro.cluster.faults` — that may drop a
  message, add a latency spike (which simply shifts the delivery
  event), or duplicate its delivery.  Faults model the *cloud*
  misbehaving (paper challenge ❹: containers and links come and go), so
  they are counted separately from adversarial drops.
- the **adversary hook** (``Network.adversary``): sees (and may mutate,
  drop, or replay) every payload — the paper's threat model (§2.3) is
  an attacker who controls the network, and the test suite uses this
  hook to mount those attacks.

Lost messages raise :class:`~repro.errors.RpcTransportError` (the one
retryable RPC failure); ``NetworkStats`` counts only *wire-delivered*
bytes, so dropped traffic never inflates ``bytes_transferred``.
Duplicate accounting is symmetric on both legs: a duplicated request's
handler runs and its extra socket read *and* the discarded response's
socket write + bytes are charged, mirroring the extra-traffic counting
the response leg always had.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro._sim import probe
from repro._sim.clock import SimClock
from repro._sim.scheduler import Completion, Scheduler
from repro.enclave.cost_model import CostModel
from repro.errors import RpcError, RpcTransportError
from repro.runtime.syscall import SyscallInterface

#: handler(request_bytes) -> response_bytes, or a Completion that will
#: resolve with the response bytes later (a *deferred reply*: the
#: endpoint parks the caller while it does asynchronous work — e.g. the
#: serving router forwarding to a replica — and the reply leg runs when
#: the completion resolves, at the endpoint clock's then-current time).
Handler = Callable[[bytes], object]

#: adversary(src, dst, payload) -> payload or None (None = drop)
Adversary = Callable[[str, str, bytes], Optional[bytes]]


@dataclass
class FaultAction:
    """What the fault chain decided for one message leg."""

    drop: bool = False
    delay: float = 0.0
    duplicate: bool = False
    reason: str = ""

    def merge(self, other: Optional["FaultAction"]) -> "FaultAction":
        if other is None:
            return self
        return FaultAction(
            drop=self.drop or other.drop,
            delay=self.delay + other.delay,
            duplicate=self.duplicate or other.duplicate,
            # Keep every injector's reason: compound faults (e.g. a
            # partition drop AND an injected loss from separate plans)
            # must all surface in logs and RpcTransportError messages.
            reason="; ".join(r for r in (self.reason, other.reason) if r),
        )


#: fault injector: (src, dst, n_bytes, now) -> FaultAction or None
FaultInjector = Callable[[str, str, int, float], Optional[FaultAction]]


@dataclass
class NetworkStats:
    messages: int = 0
    bytes_transferred: int = 0
    dropped: int = 0
    tampered_detected: int = 0
    duplicated: int = 0
    delayed: int = 0


@dataclass
class _Endpoint:
    address: str
    clock: SimClock
    handler: Handler
    #: Syscall interface of the process behind the endpoint: delivery
    #: charges its recv/send I/O through that process's syscall plane
    #: (None for bare test handlers, which charge nothing).
    syscalls: Optional[SyscallInterface] = None


class Network:
    """A switched LAN connecting named endpoints."""

    def __init__(
        self, cost_model: CostModel, scheduler: Optional[Scheduler] = None
    ) -> None:
        self._model = cost_model
        #: The event core every delivery, timer, and probe of this
        #: simulation runs on.  Independent simulations coexist by
        #: owning independent schedulers (like independent clocks).
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self._endpoints: Dict[str, _Endpoint] = {}
        self._partitioned: Set[str] = set()
        self.adversary: Optional[Adversary] = None
        self.faults: List[FaultInjector] = []
        self.stats = NetworkStats()
        #: Distinguishes RPC client instances *within this network* so
        #: call IDs never collide, even when a replacement worker reuses
        #: a crashed worker's address.  Per-network (not process-global)
        #: so seeded simulations are byte-identical no matter how many
        #: ran earlier in the process.
        self._client_instances = itertools.count(1)

    def next_client_instance(self) -> int:
        """A network-unique RPC client instance number (call-ID salt)."""
        return next(self._client_instances)

    def register(
        self,
        address: str,
        clock: SimClock,
        handler: Handler,
        syscalls: Optional[SyscallInterface] = None,
    ) -> None:
        """Bind ``handler`` (running on ``clock``) to ``address``."""
        if address in self._endpoints:
            raise RpcError(f"address {address!r} is already registered")
        self._endpoints[address] = _Endpoint(address, clock, handler, syscalls)
        self.scheduler.register_clock(clock)

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def is_registered(self, address: str) -> bool:
        return address in self._endpoints

    # -- fault injection -------------------------------------------------

    def partition(self, address: str) -> None:
        """Make an endpoint unreachable (node failure / network split)."""
        self._partitioned.add(address)

    def heal(self, address: str) -> None:
        self._partitioned.discard(address)

    def _apply_faults(
        self, src: str, dst: str, n_bytes: int, now: float
    ) -> FaultAction:
        action = FaultAction()
        for injector in self.faults:
            action = action.merge(injector(src, dst, n_bytes, now))
        return action

    # -- transfer --------------------------------------------------------

    def _transfer_time(self, n_bytes: int) -> float:
        return self._model.lan_rtt / 2 + n_bytes / self._model.lan_bandwidth

    def call(
        self,
        src: str,
        src_clock: SimClock,
        dst: str,
        request: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
    ) -> bytes:
        """Blocking RPC from ``src`` to ``dst``; returns the response.

        The send half runs synchronously on the caller's clock; the
        caller then *parks*, draining the event heap (which may execute
        other nodes' deliveries and timers that come first) until its
        reply event resumes it.  Timing and side-effect order are
        byte-identical to the old nested synchronous walk.
        """
        completion = self.call_async(
            src,
            src_clock,
            dst,
            request,
            declared_request=declared_request,
            declared_response=declared_response,
        )
        return self.scheduler.run_until(completion)

    def call_async(
        self,
        src: str,
        src_clock: SimClock,
        dst: str,
        request: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
    ) -> Completion:
        """Send half of an RPC: returns the completion the reply event
        resolves (with the response bytes) after advancing the caller's
        clock to the reply time.  Coroutine activities ``yield`` it;
        :meth:`call` parks on it.

        Send-time failures (unknown endpoint, partition, request-leg
        drop) raise synchronously, exactly as the caller would observe
        them on a real socket write.
        """
        if self._endpoints.get(dst) is None or dst in self._partitioned \
                or src in self._partitioned:
            raise RpcTransportError(f"endpoint {dst!r} is unreachable from {src!r}")

        request_size = declared_request if declared_request is not None else len(request)
        action = self._apply_faults(src, dst, request_size, src_clock.now)
        if action.drop:
            self.stats.dropped += 1
            raise RpcTransportError(
                f"request from {src!r} to {dst!r} was lost"
                + (f" ({action.reason})" if action.reason else "")
            )
        if self.adversary is not None:
            mutated = self.adversary(src, dst, request)
            if mutated is None:
                self.stats.dropped += 1
                raise RpcTransportError(f"request from {src!r} to {dst!r} was lost")
            request = mutated

        self.stats.messages += 1
        self.stats.bytes_transferred += request_size
        if action.delay:
            self.stats.delayed += 1

        # A latency spike is not modelled time — it *is* the event's
        # position in the heap.
        arrival = src_clock.now + self._transfer_time(request_size) + action.delay
        completion = Completion(f"net:{src}->{dst}")
        self.scheduler.schedule(
            arrival,
            lambda: self._deliver(
                src,
                src_clock,
                dst,
                request,
                request_size,
                arrival,
                action,
                declared_response,
                completion,
            ),
            label=f"deliver:{src}->{dst}",
        )
        return completion

    def _deliver(
        self,
        src: str,
        src_clock: SimClock,
        dst: str,
        request: bytes,
        request_size: int,
        arrival: float,
        action: FaultAction,
        declared_response: Optional[int],
        completion: Completion,
    ) -> None:
        """The delivery event: handler execution on the callee's clock.

        Any failure from here on fails ``completion`` (resuming the
        parked caller with the error) rather than propagating into
        whichever drain loop happened to pop this event.
        """
        try:
            self._deliver_inner(
                src,
                src_clock,
                dst,
                request,
                request_size,
                arrival,
                action,
                declared_response,
                completion,
            )
        except BaseException as exc:  # noqa: BLE001 - route to the caller
            completion.fail(exc)

    def _deliver_inner(
        self,
        src: str,
        src_clock: SimClock,
        dst: str,
        request: bytes,
        request_size: int,
        arrival: float,
        action: FaultAction,
        declared_response: Optional[int],
        completion: Completion,
    ) -> None:
        # Re-resolve the endpoint: in a concurrent fleet another event
        # (a crash, a partition) may have fired while this message was
        # in flight.  Legacy blocking chains never interleave, so this
        # check is a no-op for them.
        endpoint = self._endpoints.get(dst)
        if endpoint is None or dst in self._partitioned:
            self.stats.dropped += 1
            completion.fail(
                RpcTransportError(
                    f"endpoint {dst!r} vanished while a message from "
                    f"{src!r} was in flight"
                )
            )
            return

        callee_idle = arrival - endpoint.clock.now
        endpoint.clock.advance_to(arrival)
        if probe.ACTIVE is not None and callee_idle > 0:
            # The callee sat idle until the request arrived: that gap is
            # network wait on the callee's clock, not compute.
            probe.ACTIVE.charge(endpoint.clock, "network_wait", callee_idle)
        if endpoint.syscalls is not None:
            # The server process reads the request off its socket: this
            # is real I/O through its syscall plane, on its clock.
            endpoint.syscalls.socket_recv(request_size)
        response = endpoint.handler(request)
        if action.duplicate:
            # The copy arrives too and is handled; its response is
            # discarded (the transport keeps the first).  At-most-once
            # semantics are the *endpoint's* job (call-ID dedup).
            self.stats.duplicated += 1
            self.stats.messages += 1
            self.stats.bytes_transferred += request_size
            if endpoint.syscalls is not None:
                endpoint.syscalls.socket_recv(request_size)
            dup_response = endpoint.handler(request)

            # Symmetric accounting: the duplicate's response is still
            # *sent* (and crosses the wire) before the caller's
            # transport discards it — charge the server's socket write
            # and count the extra traffic, like the response-duplicate
            # branch below always did.
            def charge_discarded(dup_bytes: bytes) -> None:
                dup_size = (
                    declared_response
                    if declared_response is not None
                    else len(dup_bytes)
                )
                if endpoint.syscalls is not None:
                    endpoint.syscalls.socket_send(dup_size)
                self.stats.messages += 1
                self.stats.bytes_transferred += dup_size

            if isinstance(dup_response, Completion):
                # A deferred endpoint answers the duplicate too (its
                # dedup window makes the second execution a cache hit);
                # the discarded wire traffic is charged when it does.
                dup_response.add_waiter(
                    lambda c: charge_discarded(c.value) if c.error is None else None
                )
            else:
                charge_discarded(dup_response)

        if isinstance(response, Completion):
            # Deferred reply: the endpoint parked this caller while it
            # performs asynchronous work (events on the same heap).  The
            # reply leg runs — on the endpoint's clock at resolve time —
            # when the endpoint settles the completion; a failure routes
            # to the caller exactly like a synchronous handler raise.
            def on_settled(settled: Completion) -> None:
                if settled.error is not None:
                    completion.fail(settled.error)
                    return
                try:
                    if self._endpoints.get(dst) is not endpoint \
                            or dst in self._partitioned:
                        # The endpoint died while the work was deferred:
                        # its reply never makes it onto the wire.
                        self.stats.dropped += 1
                        completion.fail(
                            RpcTransportError(
                                f"endpoint {dst!r} vanished before replying "
                                f"to {src!r}"
                            )
                        )
                        return
                    self._finish_reply(
                        src, src_clock, dst, endpoint, settled.value,
                        declared_response, completion,
                    )
                except BaseException as exc:  # noqa: BLE001 - route to caller
                    completion.fail(exc)

            response.add_waiter(on_settled)
            return

        self._finish_reply(
            src, src_clock, dst, endpoint, response, declared_response, completion
        )

    def _finish_reply(
        self,
        src: str,
        src_clock: SimClock,
        dst: str,
        endpoint: _Endpoint,
        response: bytes,
        declared_response: Optional[int],
        completion: Completion,
    ) -> None:
        """The reply leg: charge the send, roll response faults, schedule
        the reply event.  Runs inside the delivery event for synchronous
        handlers and at completion-resolve time for deferred ones."""
        response_size = (
            declared_response if declared_response is not None else len(response)
        )
        if endpoint.syscalls is not None:
            endpoint.syscalls.socket_send(response_size)
        r_action = self._apply_faults(dst, src, response_size, endpoint.clock.now)
        if r_action.drop:
            self.stats.dropped += 1
            # The caller's clock does NOT advance: from its point of
            # view the reply simply never lands (its retry layer owns
            # the backoff time).
            completion.fail(
                RpcTransportError(
                    f"response from {dst!r} to {src!r} was lost"
                    + (f" ({r_action.reason})" if r_action.reason else "")
                )
            )
            return
        if self.adversary is not None:
            mutated = self.adversary(dst, src, response)
            if mutated is None:
                self.stats.dropped += 1
                completion.fail(
                    RpcTransportError(f"response from {dst!r} to {src!r} was lost")
                )
                return
            response = mutated

        self.stats.messages += 1
        self.stats.bytes_transferred += response_size
        if r_action.duplicate:
            # A duplicated response is delivered twice on the wire but the
            # caller consumes one copy; count the extra traffic only.
            self.stats.duplicated += 1
            self.stats.messages += 1
            self.stats.bytes_transferred += response_size
        if r_action.delay:
            self.stats.delayed += 1

        reply_at = endpoint.clock.now + self._transfer_time(response_size) + r_action.delay
        self.scheduler.schedule(
            reply_at,
            lambda: self._resume_caller(src_clock, reply_at, response, completion),
            label=f"reply:{dst}->{src}",
        )

    def _resume_caller(
        self,
        src_clock: SimClock,
        reply_at: float,
        response: bytes,
        completion: Completion,
    ) -> None:
        """The reply event: land the response on the caller's clock."""
        caller_wait = reply_at - src_clock.now
        src_clock.advance_to(reply_at)
        if probe.ACTIVE is not None and caller_wait > 0:
            # Everything between the caller's send and the reply landing
            # — server occupancy plus both wire legs — is network wait
            # from the caller's point of view.
            probe.ACTIVE.charge(src_clock, "network_wait", caller_wait)
        completion.resolve(response)

    def barrier(self, clocks) -> float:
        """Advance all ``clocks`` to the max (synchronous round barrier)."""
        latest = max(clock.now for clock in clocks)
        for clock in clocks:
            waited = latest - clock.now
            clock.advance_to(latest)
            if probe.ACTIVE is not None and waited > 0:
                probe.ACTIVE.charge(clock, "network_wait", waited)
        return latest
