"""The simulated LAN: latency, bandwidth, faults, and a Dolev-Yao adversary.

Endpoints are named addresses backed by synchronous request handlers.
``Network.call`` implements RPC timing across per-node clocks:

    arrival   = max(caller.now + rtt/2 + req_size/bw, callee.now)
    callee.advance_to(arrival); response = handler(request)
    caller.advance_to(callee.now + rtt/2 + resp_size/bw)

so a saturated callee delays its callers, and parallel callers of
different nodes overlap — no threads required.

Two interception layers run on every payload, in order:

- the **fault chain** (``Network.faults``): composable injectors — the
  seeded chaos plane of :mod:`repro.cluster.faults` — that may drop a
  message, add a latency spike, or duplicate its delivery.  Faults model
  the *cloud* misbehaving (paper challenge ❹: containers and links come
  and go), so they are counted separately from adversarial drops.
- the **adversary hook** (``Network.adversary``): sees (and may mutate,
  drop, or replay) every payload — the paper's threat model (§2.3) is
  an attacker who controls the network, and the test suite uses this
  hook to mount those attacks.

Lost messages raise :class:`~repro.errors.RpcTransportError` (the one
retryable RPC failure); ``NetworkStats`` counts only *delivered* bytes,
so dropped traffic never inflates ``bytes_transferred``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro._sim import probe
from repro._sim.clock import SimClock
from repro.enclave.cost_model import CostModel
from repro.errors import RpcError, RpcTransportError
from repro.runtime.syscall import SyscallInterface

#: handler(request_bytes) -> response_bytes
Handler = Callable[[bytes], bytes]

#: adversary(src, dst, payload) -> payload or None (None = drop)
Adversary = Callable[[str, str, bytes], Optional[bytes]]


@dataclass
class FaultAction:
    """What the fault chain decided for one message leg."""

    drop: bool = False
    delay: float = 0.0
    duplicate: bool = False
    reason: str = ""

    def merge(self, other: Optional["FaultAction"]) -> "FaultAction":
        if other is None:
            return self
        return FaultAction(
            drop=self.drop or other.drop,
            delay=self.delay + other.delay,
            duplicate=self.duplicate or other.duplicate,
            reason=self.reason or other.reason,
        )


#: fault injector: (src, dst, n_bytes, now) -> FaultAction or None
FaultInjector = Callable[[str, str, int, float], Optional[FaultAction]]


@dataclass
class NetworkStats:
    messages: int = 0
    bytes_transferred: int = 0
    dropped: int = 0
    tampered_detected: int = 0
    duplicated: int = 0
    delayed: int = 0


@dataclass
class _Endpoint:
    address: str
    clock: SimClock
    handler: Handler
    #: Syscall interface of the process behind the endpoint: delivery
    #: charges its recv/send I/O through that process's syscall plane
    #: (None for bare test handlers, which charge nothing).
    syscalls: Optional[SyscallInterface] = None


class Network:
    """A switched LAN connecting named endpoints."""

    def __init__(self, cost_model: CostModel) -> None:
        self._model = cost_model
        self._endpoints: Dict[str, _Endpoint] = {}
        self._partitioned: Set[str] = set()
        self.adversary: Optional[Adversary] = None
        self.faults: List[FaultInjector] = []
        self.stats = NetworkStats()

    def register(
        self,
        address: str,
        clock: SimClock,
        handler: Handler,
        syscalls: Optional[SyscallInterface] = None,
    ) -> None:
        """Bind ``handler`` (running on ``clock``) to ``address``."""
        if address in self._endpoints:
            raise RpcError(f"address {address!r} is already registered")
        self._endpoints[address] = _Endpoint(address, clock, handler, syscalls)

    def unregister(self, address: str) -> None:
        self._endpoints.pop(address, None)

    def is_registered(self, address: str) -> bool:
        return address in self._endpoints

    # -- fault injection -------------------------------------------------

    def partition(self, address: str) -> None:
        """Make an endpoint unreachable (node failure / network split)."""
        self._partitioned.add(address)

    def heal(self, address: str) -> None:
        self._partitioned.discard(address)

    def _apply_faults(
        self, src: str, dst: str, n_bytes: int, now: float
    ) -> FaultAction:
        action = FaultAction()
        for injector in self.faults:
            action = action.merge(injector(src, dst, n_bytes, now))
        return action

    # -- transfer --------------------------------------------------------

    def _transfer_time(self, n_bytes: int) -> float:
        return self._model.lan_rtt / 2 + n_bytes / self._model.lan_bandwidth

    def call(
        self,
        src: str,
        src_clock: SimClock,
        dst: str,
        request: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
    ) -> bytes:
        """Synchronous RPC from ``src`` to ``dst``; returns the response."""
        endpoint = self._endpoints.get(dst)
        if endpoint is None or dst in self._partitioned or src in self._partitioned:
            raise RpcTransportError(f"endpoint {dst!r} is unreachable from {src!r}")

        request_size = declared_request if declared_request is not None else len(request)
        action = self._apply_faults(src, dst, request_size, src_clock.now)
        if action.drop:
            self.stats.dropped += 1
            raise RpcTransportError(
                f"request from {src!r} to {dst!r} was lost"
                + (f" ({action.reason})" if action.reason else "")
            )
        if self.adversary is not None:
            mutated = self.adversary(src, dst, request)
            if mutated is None:
                self.stats.dropped += 1
                raise RpcTransportError(f"request from {src!r} to {dst!r} was lost")
            request = mutated

        self.stats.messages += 1
        self.stats.bytes_transferred += request_size
        if action.delay:
            self.stats.delayed += 1

        arrival = src_clock.now + self._transfer_time(request_size) + action.delay
        callee_idle = arrival - endpoint.clock.now
        endpoint.clock.advance_to(arrival)
        if probe.ACTIVE is not None and callee_idle > 0:
            # The callee sat idle until the request arrived: that gap is
            # network wait on the callee's clock, not compute.
            probe.ACTIVE.charge(endpoint.clock, "network_wait", callee_idle)
        if endpoint.syscalls is not None:
            # The server process reads the request off its socket: this
            # is real I/O through its syscall plane, on its clock.
            endpoint.syscalls.socket_recv(request_size)
        response = endpoint.handler(request)
        if action.duplicate:
            # The copy arrives too and is handled; its response is
            # discarded (the transport keeps the first).  At-most-once
            # semantics are the *endpoint's* job (call-ID dedup).
            self.stats.duplicated += 1
            self.stats.messages += 1
            self.stats.bytes_transferred += request_size
            if endpoint.syscalls is not None:
                endpoint.syscalls.socket_recv(request_size)
            endpoint.handler(request)

        response_size = (
            declared_response if declared_response is not None else len(response)
        )
        if endpoint.syscalls is not None:
            endpoint.syscalls.socket_send(response_size)
        r_action = self._apply_faults(dst, src, response_size, endpoint.clock.now)
        if r_action.drop:
            self.stats.dropped += 1
            raise RpcTransportError(
                f"response from {dst!r} to {src!r} was lost"
                + (f" ({r_action.reason})" if r_action.reason else "")
            )
        if self.adversary is not None:
            mutated = self.adversary(dst, src, response)
            if mutated is None:
                self.stats.dropped += 1
                raise RpcTransportError(f"response from {dst!r} to {src!r} was lost")
            response = mutated

        self.stats.messages += 1
        self.stats.bytes_transferred += response_size
        if r_action.duplicate:
            # A duplicated response is delivered twice on the wire but the
            # caller consumes one copy; count the extra traffic only.
            self.stats.duplicated += 1
            self.stats.messages += 1
            self.stats.bytes_transferred += response_size
        if r_action.delay:
            self.stats.delayed += 1

        reply_at = endpoint.clock.now + self._transfer_time(response_size) + r_action.delay
        caller_wait = reply_at - src_clock.now
        src_clock.advance_to(reply_at)
        if probe.ACTIVE is not None and caller_wait > 0:
            # Everything between the caller's send and the reply landing
            # — server occupancy plus both wire legs — is network wait
            # from the caller's point of view.
            probe.ACTIVE.charge(src_clock, "network_wait", caller_wait)
        return response

    def barrier(self, clocks) -> float:
        """Advance all ``clocks`` to the max (synchronous round barrier)."""
        latest = max(clock.now for clock in clocks)
        for clock in clocks:
            waited = latest - clock.now
            clock.advance_to(latest)
            if probe.ACTIVE is not None and waited > 0:
                probe.ACTIVE.charge(clock, "network_wait", waited)
        return latest
