"""Parameter server + synchronous data-parallel training (Fig. 2, §5.4).

The distributed TensorFlow architecture the paper preserves: parameter
servers hold the model, workers pull weights, compute gradients on their
data shard, and push updates.  Both endpoints can run behind the network
shield (secure mode) or in cleartext (the "without network shield" and
native baselines of Fig. 8).

Synchronous rounds with per-node clocks: each worker's pull→compute→push
advances its own clock, the PS clock serializes the applies, and a
barrier ends the round — so adding workers shortens the round wall-clock
exactly as real synchronous data-parallelism does.

Fault tolerance (paper challenge ❹): a :class:`ParameterServer` built
with a checkpoint store snapshots weights *and* its RPC dedup window
after every committed update, so a replacement PS resumes at the exact
version the crashed one reached — a worker retrying a push against the
replacement hits the restored dedup window instead of double-applying.
:class:`SyncTrainer` accepts a retry policy (wired into every
worker→PS session) and a recovery supervisor (duck-typed; see
``TrainingJob``) that replaces crashed containers mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro._sim import probe
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.rpc import (
    PendingRpc,
    RpcClient,
    RpcServer,
    SecureConnection,
    SecureRpcClient,
    SecureRpcServer,
)
from repro.cluster.retry import RetryPolicy
from repro.cluster.sharding import GradientQuantizer, ShardMap, ShardTrainingStats
from repro.cluster.worker import TrainingWorker
from repro.crypto import encoding
from repro.errors import (
    CircuitOpenError,
    ClusterError,
    PolicyError,
    RpcTransportError,
    StaleConnectionError,
)
from repro.runtime import stats_registry
from repro.runtime.net_shield import NetworkShield
from repro.runtime.syscall import SyscallInterface
from repro.tensor.arrays import decode_array_dict, encode_array_dict


@dataclass
class PSCheckpoint:
    """A resumable parameter-server snapshot (weights + dedup window).

    The dedup entries travel with the weights because they are one
    atomic state: restoring weights at version ``v`` without the call
    IDs that produced ``v`` would let a retried push apply twice.
    """

    weights: Dict[str, np.ndarray]
    version: int
    updates_applied: int
    dedup: list


class InMemoryCheckpointStore:
    """Checkpoint store surviving container crashes (models durable disk).

    In the paper's deployment this is the file-system shield writing
    encrypted checkpoints to a persistent volume; here an in-process dict
    keyed by PS address stands in, since the simulated crash kills the
    *container*, not the host storage.
    """

    def __init__(self) -> None:
        self._snapshots: Dict[str, PSCheckpoint] = {}
        self.saves = 0
        #: Optional :class:`~repro.cluster.epoch.EpochGuard` over the
        #: ``ps`` role.  The store is the durable volume *shared* between
        #: a crashed PS and its replacement — the one place a zombie PS
        #: partitioned away from its workers can still destroy acked
        #: work by overwriting the replacement's checkpoints.  A fenced
        #: store rejects saves stamped with a stale epoch.
        self.guard = None
        #: Per-store-key guards for the sharded plane: each shard role
        #: (``ps-0`` … ``ps-{N-1}``) fences its own snapshot slot, so a
        #: zombie shard cannot clobber its replacement while the other
        #: shards' epochs are unaffected.  Falls back to :attr:`guard`.
        self.guards: Dict[str, object] = {}
        #: Cross-shard commit barrier: an append-only sequence of
        #: version vectors (store key -> checkpointed version).  A
        #: vector is appended only after *every* shard's snapshot for
        #: the round landed, so the latest vector always names a
        #: mutually-consistent resume point — a crash between per-shard
        #: saves leaves the previous vector intact (atomicity).
        self._vectors: List[Dict[str, int]] = []

    def _guard_for(self, address: str):
        return self.guards.get(address, self.guard)

    def save(
        self, address: str, snapshot: PSCheckpoint, epoch: Optional[int] = None
    ) -> None:
        guard = self._guard_for(address)
        if guard is not None:
            guard.check(epoch)
        self._snapshots[address] = snapshot
        self.saves += 1

    def load(self, address: str) -> Optional[PSCheckpoint]:
        return self._snapshots.get(address)

    def commit_vector(
        self,
        vector: Dict[str, int],
        epochs: Optional[Dict[str, Optional[int]]] = None,
    ) -> int:
        """Atomically commit a cross-shard version vector.

        Every shard's guard must admit its stamped epoch *before* the
        vector is appended — a barrier half-written by a zombie
        coordinator is rejected whole, never partially applied.
        Returns the barrier sequence number (1-based).
        """
        for key in sorted(vector):
            guard = self._guard_for(key)
            if guard is not None:
                guard.check(epochs.get(key) if epochs else None)
        self._vectors.append(dict(vector))
        return len(self._vectors)

    def latest_vector(self) -> Optional[Dict[str, int]]:
        """The most recent committed cross-shard version vector."""
        return dict(self._vectors[-1]) if self._vectors else None

    @property
    def barrier_commits(self) -> int:
        return len(self._vectors)


class ParameterServer:
    """Holds master weights; applies pushed gradients with SGD."""

    def __init__(
        self,
        node: Node,
        address: str,
        network: Network,
        learning_rate: float,
        shield: Optional[NetworkShield] = None,
        allowed_peers: Optional[List[str]] = None,
        checkpoint_store: Optional[InMemoryCheckpointStore] = None,
        syscalls: Optional["SyscallInterface"] = None,
        store_key: Optional[str] = None,
        quantizer: Optional[GradientQuantizer] = None,
    ) -> None:
        if learning_rate <= 0:
            raise ClusterError(f"learning rate must be positive: {learning_rate}")
        self.node = node
        self.address = address
        #: Decodes ``q{bits}``-encoded pushes; ``None`` accepts only
        #: float32 gradients.  Must match the workers' quantizer.
        self.quantizer = quantizer
        #: Per-shard training-plane counters, registered under this
        #: node's clock so ``collect_metrics`` finds them.
        self.shard_stats = ShardTrainingStats(
            shard=store_key if store_key is not None else address
        )
        stats_registry.register_training_stats(self.shard_stats, node.clock)
        #: Logical service identity in the checkpoint store.  Defaults to
        #: the network address; a replacement PS launched at a *new* pod
        #: address passes the crashed one's key so it resumes the same
        #: lineage (and so a zombie predecessor contends for the same
        #: snapshot slot — which is what the store's fence arbitrates).
        self.store_key = store_key if store_key is not None else address
        self.learning_rate = learning_rate
        self._weights: Dict[str, np.ndarray] = {}
        self._version = 0
        self._allowed = allowed_peers
        self.updates_applied = 0
        #: Leadership lease over the ``ps`` role (set by the recovery
        #: supervisor when fencing is on).  Its cached epoch is presented
        #: to the checkpoint store's guard on every save: a zombie PS
        #: keeps stamping its dead epoch and the store says no — the
        #: rejection propagates through ``on_committed``, which also
        #: rolls the call out of the dedup window, so the push that
        #: could not checkpoint never reads as committed.
        self.lease = None

        if shield is not None:
            self._server: RpcServer = SecureRpcServer(
                network, address, node, shield, require_client_cert=True
            )
        else:
            self._server = RpcServer(network, address, node, syscalls=syscalls)
        #: Checkpoint persistence I/O is charged through the same
        #: syscall plane the endpoint's socket traffic uses.
        self._syscalls = syscalls if syscalls is not None else self._server._syscalls
        self._server.register("pull", self._handle_pull)
        self._server.register("push", self._handle_push)
        self._server.start()

        self._store = checkpoint_store
        self._checkpointed_version = -1
        if self._store is not None:
            snapshot = self._store.load(self.store_key)
            if snapshot is not None:
                # A predecessor at this address checkpointed: resume at
                # its exact version, with its dedup window, so retried
                # pushes stay at-most-once across the restart.
                self._weights = {k: v.copy() for k, v in snapshot.weights.items()}
                self._version = snapshot.version
                self.updates_applied = snapshot.updates_applied
                self._server.dedup_restore(snapshot.dedup)
                self._checkpointed_version = snapshot.version
            self._server.on_committed = self._maybe_checkpoint

    # ------------------------------------------------------------------

    def initialize(self, weights: Dict[str, np.ndarray]) -> None:
        self._weights = {k: np.array(v, dtype=np.float32) for k, v in weights.items()}
        self._version = 1
        self._maybe_checkpoint()

    @property
    def weights(self) -> Dict[str, np.ndarray]:
        return dict(self._weights)

    @property
    def version(self) -> int:
        return self._version

    def _check_peer(self, peer: Optional[str]) -> None:
        if self._allowed is not None:
            if peer is None or peer not in self._allowed:
                raise PolicyError(
                    f"peer {peer!r} is not an authorized training worker"
                )

    def _handle_pull(self, payload: bytes, peer: Optional[str]) -> bytes:
        self._check_peer(peer)
        if not self._weights:
            raise ClusterError("parameter server has no initialized weights")
        with probe.span(
            self.node.clock, "ps.pull", attrs={"shard": self.store_key}
        ):
            self.shard_stats.pulls += 1
            return encoding.encode(
                {"version": self._version, "weights": encode_array_dict(self._weights)}
            )

    def _handle_push(self, payload: bytes, peer: Optional[str]) -> bytes:
        self._check_peer(peer)
        with probe.span(
            self.node.clock, "ps.push", attrs={"shard": self.store_key}
        ):
            return self._apply_push(payload)

    def _apply_push(self, payload: bytes) -> bytes:
        body = encoding.decode(payload)
        gradients = decode_array_dict(body["gradients"])
        wire_bytes = len(body["gradients"])
        if str(body.get("encoding", "")).startswith("q"):
            if self.quantizer is None:
                raise ClusterError(
                    "received quantized gradients but no quantizer is configured"
                )
            with probe.span(
                self.node.clock, "ps.dequantize", attrs={"shard": self.store_key}
            ):
                gradients = self.quantizer.dequantize(
                    gradients, body.get("scales", {})
                )
            self.shard_stats.quantized_pushes += 1
            float_bytes = sum(4 * g.size for g in gradients.values())
            self.shard_stats.gradient_bytes_saved += max(0, float_bytes - wire_bytes)
        self.shard_stats.pushes += 1
        self.shard_stats.gradient_bytes_in += wire_bytes
        # Apply SGD on the PS node's clock (this is real PS work).
        flops = 0
        for name, grad in gradients.items():
            if name not in self._weights:
                raise ClusterError(f"gradient for unknown weight {name!r}")
            if grad.shape != self._weights[name].shape:
                raise ClusterError(
                    f"gradient shape {grad.shape} mismatches weight "
                    f"{self._weights[name].shape} for {name!r}"
                )
            self._weights[name] = (
                self._weights[name] - self.learning_rate * grad
            ).astype(np.float32)
            flops += 2 * grad.size
        declared_flops = body.get("declared_flops", flops)
        self.node.clock.advance(
            declared_flops / self.node.cost_model.flops_per_second_full_tf
        )
        self._version += 1
        self.updates_applied += 1
        return encoding.encode({"version": self._version})

    def _maybe_checkpoint(self) -> None:
        """Snapshot state after a committed call that changed the weights."""
        if self._store is None or self._version == self._checkpointed_version:
            return
        snapshot = PSCheckpoint(
            weights={k: v.copy() for k, v in self._weights.items()},
            version=self._version,
            updates_applied=self.updates_applied,
            dedup=self._server.dedup_snapshot(),
        )
        # Persisting the snapshot is real file I/O: charge it through
        # the shared syscall plane (write + continuations + fsync-like
        # rename ordering live there), not as ad-hoc clock time.
        payload_bytes = (
            sum(int(w.nbytes) for w in snapshot.weights.values())
            + 64 * max(1, len(snapshot.dedup))
        )
        self._syscalls.write_file(
            f"/checkpoints/{self.address}.ckpt", b"", declared_size=payload_bytes
        )
        self._store.save(
            self.store_key,
            snapshot,
            epoch=self.lease.epoch if self.lease is not None else None,
        )
        self._checkpointed_version = self._version

    def stop(self) -> None:
        self._server.stop()

    def crash(self) -> None:
        """Simulated container crash: vanish mid-run, no clean teardown."""
        self._server.abort()


@dataclass
class TrainingResult:
    """Outcome of a synchronous training run."""

    steps: int
    final_loss: float
    wall_clock: float
    per_worker_time: Dict[str, float]
    #: Scheduler events executed during this run (deliveries, replies,
    #: backoff timers, probes) — the event core's work metric.
    simulated_events: int = 0


class SyncTrainer:
    """Drives synchronous data-parallel rounds over PS + workers.

    With ``retry`` set, every worker→PS session retries transport
    faults with backoff (and reconnects dead secure sessions); with
    ``recovery`` set (a duck-typed supervisor exposing ``tick``,
    ``worker_ok``, ``replace_worker``, ``ps_ok``, ``recover_ps``),
    crashed containers are replaced mid-run and the round continues.
    """

    #: PS-level recovery attempts per call (beyond in-connection retries).
    MAX_RECOVERIES_PER_CALL = 3

    def __init__(
        self,
        network: Network,
        ps: ParameterServer,
        workers: List[TrainingWorker],
        retry: Optional[RetryPolicy] = None,
        recovery: Optional[object] = None,
    ) -> None:
        if not workers:
            raise ClusterError("training needs at least one worker")
        self._network = network
        self._ps = ps
        self._workers = workers
        self._retry = retry
        self._recovery = recovery
        self._connections: Dict[str, Union[SecureConnection, RpcClient]] = {}

    def _connection(self, worker: TrainingWorker):
        """A (possibly shielded) session from a worker to the PS."""
        if worker.name in self._connections:
            return self._connections[worker.name]
        if worker.shield is not None:
            client = SecureRpcClient(
                self._network,
                worker.address,
                worker.node,
                worker.shield,
                retry=self._retry,
            )
            # The PS certificate subject is CAS-assigned
            # ("session/name-index"); authenticity comes from the trusted
            # root, so no exact-name pinning here.
            conn: Union[SecureConnection, RpcClient] = client.connect(
                self._ps.address, expected_server=None
            )
        else:
            conn = _PlainConnection(
                RpcClient(
                    self._network, worker.address, worker.node, retry=self._retry
                ),
                self._ps.address,
            )
        self._connections[worker.name] = conn
        return conn

    # -- recovery hooks --------------------------------------------------

    def _ensure_alive(self, slot: int) -> TrainingWorker:
        """The worker for ``slot``, replacing it first if it crashed."""
        worker = self._workers[slot]
        if self._recovery is None or self._recovery.worker_ok(worker):
            return worker
        replacement = self._recovery.replace_worker(worker)
        self._connections.pop(worker.name, None)
        self._workers[slot] = replacement
        return replacement

    def _set_ps(self, ps: ParameterServer) -> None:
        self._ps = ps
        # The endpoint is back: stop shedding calls to it.
        for conn in self._connections.values():
            conn._client.reset_breaker(ps.address)

    def _ps_call(self, worker: TrainingWorker, method: str, payload: bytes, **kw):
        """One PS call, recovering a crashed PS between attempts."""
        recoveries = 0
        while True:
            conn = self._connection(worker)
            try:
                return conn.call(method, payload, **kw)
            except (RpcTransportError, StaleConnectionError, CircuitOpenError):
                if self._recovery is None:
                    raise
                recoveries += 1
                if recoveries > self.MAX_RECOVERIES_PER_CALL:
                    raise
                if not self._recovery.ps_ok():
                    replacement = self._recovery.recover_ps()
                    if replacement is None:
                        raise
                    self._set_ps(replacement)
                # Either way the session state is suspect: rebuild the
                # connection (full re-handshake in secure mode).
                self._connections.pop(worker.name, None)

    def train(self, batches: List, steps: Optional[int] = None) -> TrainingResult:
        """Run synchronous rounds until batches (or ``steps``) run out.

        Batches are dealt round-robin to workers; each round processes
        ``len(workers)`` batches in parallel.
        """
        total_steps = min(steps, len(batches)) if steps is not None else len(batches)
        clocks = [w.node.clock for w in self._workers] + [self._ps.node.clock]
        start = max(clock.now for clock in clocks)
        events_before = self._network.scheduler.events_processed
        losses: List[float] = []

        declared = self._workers[0].declared_model_bytes

        index = 0
        round_index = 0
        while index < total_steps:
            # Round boundary: scheduled container crashes fire here (and
            # only here), so recovery traces are independent of how
            # retries shifted the clock within the previous round.
            if self._recovery is not None:
                self._recovery.tick(round_index)
            round_workers = []
            for slot in range(len(self._workers)):
                if index >= total_steps:
                    break
                round_workers.append((self._ensure_alive(slot), batches[index]))
                index += 1
            round_index += 1

            # Phase 1: every worker pulls the current weights.  Pulls are
            # grouped before any compute so that the (cheap) PS handler
            # work does not artificially serialize the round — on a real
            # cluster the pulls overlap the same way.
            for worker, _ in round_workers:
                with probe.span(
                    worker.node.clock,
                    "train.pull",
                    category="training",
                    attrs={"worker": worker.name, "round": round_index},
                ):
                    pulled = encoding.decode(
                        self._ps_call(worker, "pull", b"", declared_response=declared)
                    )
                    worker.load_weights(decode_array_dict(pulled["weights"]))

            # Phase 2: gradient computation, in parallel across nodes
            # (each worker advances only its own node's clock).
            round_grads = []
            for worker, (images, labels) in round_workers:
                with probe.span(
                    worker.node.clock,
                    "train.compute",
                    category="training",
                    attrs={"worker": worker.name, "round": round_index},
                ):
                    gradients, loss = worker.compute_gradients(images, labels)
                losses.append(loss)
                round_grads.append((worker, gradients))

            # Phase 3: pushes; the PS serializes the applies (sequential
            # in worker order, so float accumulation order — and hence
            # the final weights — is identical run to run).
            for worker, gradients in round_grads:
                push_payload = encoding.encode(
                    {
                        "gradients": encode_array_dict(gradients),
                        "declared_flops": 2 * declared // 4,
                    }
                )
                with probe.span(
                    worker.node.clock,
                    "train.push",
                    category="training",
                    attrs={"worker": worker.name, "round": round_index},
                ):
                    self._ps_call(worker, "push", push_payload, declared_request=declared)
            clocks = [w.node.clock for w in self._workers] + [self._ps.node.clock]
            self._network.barrier(clocks)

        wall = max(clock.now for clock in clocks) - start
        return TrainingResult(
            steps=total_steps,
            final_loss=float(np.mean(losses[-len(self._workers):])) if losses else float("nan"),
            wall_clock=wall,
            per_worker_time={w.name: w.node.clock.now for w in self._workers},
            simulated_events=self._network.scheduler.events_processed - events_before,
        )


class ShardedParameterService:
    """Weights partitioned across several parameter servers (Fig. 2).

    Distributed TensorFlow shards variables across PS tasks so no single
    server's memory or network link bottlenecks the model.  The
    partition is a deterministic :class:`~repro.cluster.sharding.ShardMap`
    (byte-balanced, oversized tensors row-split), so every worker and
    every restarted shard derives the identical assignment.  The service
    also coordinates the **cross-shard checkpoint commit barrier**: after
    each round it appends a version vector to the shared store, and a
    shard restarted by the orchestrator is verified against the latest
    committed vector before it serves.
    """

    def __init__(
        self,
        shards: List[ParameterServer],
        shard_map: Optional[ShardMap] = None,
        barrier_store: Optional[InMemoryCheckpointStore] = None,
    ) -> None:
        if not shards:
            raise ClusterError("sharded service needs at least one PS")
        self._shards = list(shards)
        self.shard_map = shard_map
        self.barrier_store = barrier_store

    @property
    def shards(self) -> List[ParameterServer]:
        return list(self._shards)

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard(self, index: int) -> ParameterServer:
        return self._shards[index]

    def replace_shard(self, index: int, ps: ParameterServer) -> None:
        """Swap in a restarted shard (same store key, new container)."""
        self._shards[index] = ps

    @property
    def active_shards(self) -> List[int]:
        """Shard indices that own weights (tail shards idle when the
        model has fewer pieces than shards)."""
        if self.shard_map is None:
            return list(range(len(self._shards)))
        return self.shard_map.active_shards

    def initialize(self, weights: Dict[str, np.ndarray]) -> None:
        if self.shard_map is None:
            self.shard_map = ShardMap.build(weights, len(self._shards))
        for index, partition in enumerate(self.shard_map.partition(weights)):
            if partition:
                self._shards[index].initialize(partition)

    def shard_of(self, name: str) -> ParameterServer:
        """The shard owning ``name`` (its first slice, if row-split)."""
        if self.shard_map is None:
            raise ClusterError("service is not initialized")
        return self._shards[self.shard_map.shards_of(name)[0]]

    @property
    def weights(self) -> Dict[str, np.ndarray]:
        if self.shard_map is None:
            raise ClusterError("service is not initialized")
        parts: Dict[str, np.ndarray] = {}
        for index in self.active_shards:
            parts.update(self._shards[index].weights)
        return self.shard_map.merge(parts)

    def partition_gradients(
        self, gradients: Dict[str, np.ndarray]
    ) -> Dict[str, Dict[str, np.ndarray]]:
        """Group a gradient dict by owning shard address (piece-keyed:
        a row-split variable appears as ``var#start:stop`` slices)."""
        if self.shard_map is None:
            raise ClusterError("service is not initialized")
        grouped: Dict[str, Dict[str, np.ndarray]] = {}
        for index, part in enumerate(self.shard_map.partition(gradients)):
            if part:
                grouped.setdefault(self._shards[index].address, {}).update(part)
        return grouped

    def commit_barrier(self) -> Optional[int]:
        """Commit the round's cross-shard version vector (if a shared
        durable store is attached and every shard has checkpointed)."""
        store = self.barrier_store
        if store is None or self.shard_map is None:
            return None
        vector: Dict[str, int] = {}
        epochs: Dict[str, Optional[int]] = {}
        for index in self.active_shards:
            ps = self._shards[index]
            if ps._checkpointed_version < 0:
                return None  # this round has no durable snapshot yet
            vector[ps.store_key] = ps._checkpointed_version
            epochs[ps.store_key] = ps.lease.epoch if ps.lease is not None else None
        seq = store.commit_vector(vector, epochs)
        coordinator = self._shards[self.active_shards[0]]
        coordinator.shard_stats.barrier_commits += 1
        return seq

    def verify_resume(self, index: int) -> None:
        """Check a restarted shard against the latest barrier vector: a
        restored snapshot *behind* the committed vector means durable
        state was lost — refuse to serve an inconsistent lineage."""
        store = self.barrier_store
        if store is None:
            return
        vector = store.latest_vector()
        if vector is None:
            return
        ps = self._shards[index]
        committed = vector.get(ps.store_key)
        if committed is not None and ps._checkpointed_version < committed:
            raise ClusterError(
                f"shard {ps.store_key!r} resumed at version "
                f"{ps._checkpointed_version} behind committed barrier "
                f"{committed}"
            )

    def stop(self) -> None:
        for shard in self._shards:
            shard.stop()


class ShardedSyncTrainer:
    """Synchronous data-parallel rounds against N weight shards.

    The round structure matches :class:`SyncTrainer` (pull, compute,
    push, barrier), but every PS interaction **fans out per shard**:
    the send halves of a worker's shard calls are issued back-to-back
    on its clock via ``begin_call`` (overlapped transfers riding the
    async syscall ring), then settled as heap events in shard order.
    Pushes stay serialized *across workers* — worker *i*'s fan-out
    settles before worker *i+1* issues — so each shard applies updates
    in worker order and the final weights are byte-identical run to
    run, chaos or not.  An optional :class:`GradientQuantizer`
    compresses push payloads (and their declared wire sizes, which is
    what the shield crypto and syscall ring charge for).
    """

    #: Shard-level recovery attempts per call (beyond in-connection retries).
    MAX_RECOVERIES_PER_CALL = 3

    def __init__(
        self,
        network: Network,
        service: ShardedParameterService,
        workers: List[TrainingWorker],
        retry: Optional[RetryPolicy] = None,
        recovery: Optional[object] = None,
        quantizer: Optional[GradientQuantizer] = None,
    ) -> None:
        if not workers:
            raise ClusterError("training needs at least one worker")
        self._network = network
        self._service = service
        self._workers = workers
        self._retry = retry
        self._recovery = recovery
        self._quantizer = quantizer
        # One session per (worker, shard address): secure record layers
        # are per-connection streams, so concurrent fan-out to distinct
        # shards never reorders a single session's records.
        self._connections: Dict[tuple, Union[SecureConnection, RpcClient]] = {}

    # -- connections -----------------------------------------------------

    def _connection(self, worker: TrainingWorker, ps: ParameterServer):
        key = (worker.name, ps.address)
        if key in self._connections:
            return self._connections[key]
        if worker.shield is not None:
            client = SecureRpcClient(
                self._network,
                worker.address,
                worker.node,
                worker.shield,
                retry=self._retry,
            )
            conn: Union[SecureConnection, RpcClient] = client.connect(
                ps.address, expected_server=None
            )
        else:
            conn = _PlainConnection(
                RpcClient(
                    self._network, worker.address, worker.node, retry=self._retry
                ),
                ps.address,
            )
        self._connections[key] = conn
        return conn

    def _drop_connections(self, worker: Optional[TrainingWorker] = None,
                          address: Optional[str] = None) -> None:
        for key in list(self._connections):
            if worker is not None and key[0] != worker.name:
                continue
            if address is not None and key[1] != address:
                continue
            del self._connections[key]

    # -- recovery hooks --------------------------------------------------

    def _ensure_alive(self, slot: int) -> TrainingWorker:
        worker = self._workers[slot]
        if self._recovery is None or self._recovery.worker_ok(worker):
            return worker
        replacement = self._recovery.replace_worker(worker)
        self._drop_connections(worker=worker)
        self._workers[slot] = replacement
        return replacement

    def _recover_shard(self, index: int) -> None:
        """Replace a dead shard via the supervisor (fence-first)."""
        if self._recovery is None:
            raise ClusterError(f"shard {index} is down and no recovery is wired")
        old = self._service.shard(index)
        if not self._recovery.shard_ok(index):
            replacement = self._recovery.recover_shard(index)
            if replacement is None:
                raise ClusterError(f"shard {index} could not be recovered")
            self._service.replace_shard(index, replacement)
            self._service.verify_resume(index)
            for conn in self._connections.values():
                conn._client.reset_breaker(replacement.address)
        self._drop_connections(address=old.address)

    def _shard_call(
        self,
        worker: TrainingWorker,
        index: int,
        method: str,
        payload: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
    ) -> bytes:
        """One blocking shard call, recovering a crashed shard between
        attempts (the sequential fallback under the fan-out)."""
        recoveries = 0
        while True:
            ps = self._service.shard(index)
            conn = self._connection(worker, ps)
            try:
                return conn.call(
                    method,
                    payload,
                    declared_request=declared_request,
                    declared_response=declared_response,
                )
            except (RpcTransportError, StaleConnectionError, CircuitOpenError):
                if self._recovery is None:
                    raise
                recoveries += 1
                if recoveries > self.MAX_RECOVERIES_PER_CALL:
                    raise
                self._recover_shard(index)

    def _fanout(
        self,
        worker: TrainingWorker,
        requests: List[tuple],
    ) -> Dict[int, bytes]:
        """Issue every shard call's send half now, settle in shard order.

        ``requests`` holds ``(shard_index, method, payload,
        declared_request, declared_response)``.  All send halves run at
        the worker's current clock (overlapped transfers); settling
        drives the heap to each reply.  A shard whose optimistic
        attempt *and* executor retries fail falls back to the blocking
        recovery path.
        """
        pending: List[tuple] = []
        for index, method, payload, dreq, dresp in requests:
            ps = self._service.shard(index)
            conn = self._connection(worker, ps)
            handle: Optional[PendingRpc]
            try:
                handle = conn.begin_call(
                    method, payload,
                    declared_request=dreq, declared_response=dresp,
                )
            except (RpcTransportError, StaleConnectionError, CircuitOpenError):
                handle = None
            pending.append((index, method, payload, dreq, dresp, handle))

        results: Dict[int, bytes] = {}
        for index, method, payload, dreq, dresp, handle in pending:
            if handle is not None:
                try:
                    results[index] = handle.settle()
                    continue
                except (RpcTransportError, StaleConnectionError, CircuitOpenError):
                    pass
            results[index] = self._shard_call(
                worker, index, method, payload,
                declared_request=dreq, declared_response=dresp,
            )
        return results

    # -- training --------------------------------------------------------

    def _declared_sizes(self, worker: TrainingWorker) -> Dict[int, tuple]:
        """Per-shard (pull, push) declared wire sizes: the shard's byte
        share scaled to the declared model, pushes shrunk by the
        quantizer's lattice width."""
        scale = worker.declared_model_bytes / max(
            1, sum(self._service.shard_map.shard_nbytes())
        )
        declared: Dict[int, tuple] = {}
        for index in self._service.active_shards:
            nbytes = self._service.shard_map.shard_nbytes()[index]
            pull = max(1, int(nbytes * scale))
            if self._quantizer is None:
                push = pull
            else:
                push = self._quantizer.declared_bytes(
                    pull, len(self._service.shard_map.keys_on(index))
                )
            declared[index] = (pull, push)
        return declared

    def _encode_push(
        self, gradients: Dict[str, np.ndarray], declared_flops: int, clock=None
    ) -> bytes:
        if self._quantizer is None:
            return encoding.encode(
                {
                    "gradients": encode_array_dict(gradients),
                    "declared_flops": declared_flops,
                }
            )
        if clock is not None:
            with probe.span(clock, "train.quantize", category="training"):
                quantized, scales = self._quantizer.quantize(gradients)
        else:
            quantized, scales = self._quantizer.quantize(gradients)
        return encoding.encode(
            {
                "gradients": encode_array_dict(quantized),
                "scales": scales,
                "encoding": f"q{self._quantizer.bits}",
                "declared_flops": declared_flops,
            }
        )

    def train(self, batches: List, steps: Optional[int] = None) -> TrainingResult:
        """Run synchronous sharded rounds until batches run out."""
        if self._service.shard_map is None:
            raise ClusterError("service must be initialized before training")
        total_steps = min(steps, len(batches)) if steps is not None else len(batches)
        shard_clocks = [s.node.clock for s in self._service.shards]
        clocks = [w.node.clock for w in self._workers] + shard_clocks
        start = max(clock.now for clock in clocks)
        events_before = self._network.scheduler.events_processed
        losses: List[float] = []

        declared = self._declared_sizes(self._workers[0])
        active = self._service.active_shards

        index = 0
        round_index = 0
        while index < total_steps:
            if self._recovery is not None:
                self._recovery.tick(round_index)
            round_workers = []
            for slot in range(len(self._workers)):
                if index >= total_steps:
                    break
                round_workers.append((self._ensure_alive(slot), batches[index]))
                index += 1
            round_index += 1

            # Phase 1: each worker pulls every shard's slice — the send
            # halves are issued back-to-back (overlapped transfers), the
            # replies settle as heap events, and the slices merge into
            # the full model.
            for worker, _ in round_workers:
                with probe.span(
                    worker.node.clock,
                    "train.pull",
                    category="training",
                    attrs={"worker": worker.name, "round": round_index},
                ):
                    pulls = self._fanout(
                        worker,
                        [
                            (k, "pull", b"", None, declared[k][0])
                            for k in active
                        ],
                    )
                    parts: Dict[str, np.ndarray] = {}
                    for k in active:
                        pulled = encoding.decode(pulls[k])
                        parts.update(decode_array_dict(pulled["weights"]))
                    worker.load_weights(self._service.shard_map.merge(parts))

            # Phase 2: gradient computation on each worker's own clock.
            round_grads = []
            for worker, (images, labels) in round_workers:
                with probe.span(
                    worker.node.clock,
                    "train.compute",
                    category="training",
                    attrs={"worker": worker.name, "round": round_index},
                ):
                    gradients, loss = worker.compute_gradients(images, labels)
                losses.append(loss)
                round_grads.append((worker, gradients))

            # Phase 3: pushes fan out per shard but stay serialized
            # across workers — each shard applies updates in worker
            # order, keeping float accumulation (and the final weights)
            # identical run to run regardless of fault timing.
            for worker, gradients in round_grads:
                groups = self._service.shard_map.partition(gradients)
                requests = []
                for k in active:
                    if not groups[k]:
                        continue
                    requests.append(
                        (
                            k,
                            "push",
                            self._encode_push(
                                groups[k],
                                2 * declared[k][0] // 4,
                                clock=worker.node.clock,
                            ),
                            declared[k][1],
                            None,
                        )
                    )
                with probe.span(
                    worker.node.clock,
                    "train.push",
                    category="training",
                    attrs={"worker": worker.name, "round": round_index},
                ):
                    self._fanout(worker, requests)

            # Round end: commit the cross-shard checkpoint barrier, then
            # the synchronous-round clock barrier.
            self._service.commit_barrier()
            shard_clocks = [s.node.clock for s in self._service.shards]
            clocks = [w.node.clock for w in self._workers] + shard_clocks
            self._network.barrier(clocks)

        wall = max(clock.now for clock in clocks) - start
        return TrainingResult(
            steps=total_steps,
            final_loss=float(np.mean(losses[-len(self._workers):]))
            if losses
            else float("nan"),
            wall_clock=wall,
            per_worker_time={w.name: w.node.clock.now for w in self._workers},
            simulated_events=self._network.scheduler.events_processed - events_before,
        )


class AsyncTrainer:
    """Asynchronous (Hogwild-style) PS training: no round barrier.

    Each worker loops pull → compute → push at its own pace; the PS
    applies updates as they arrive, so fast workers are never blocked by
    stragglers, at the cost of gradient staleness.  This is distributed
    TensorFlow's between-graph asynchronous mode, included here to show
    the stateful-computing substrate supports both disciplines.
    """

    def __init__(
        self,
        network: Network,
        ps: ParameterServer,
        workers: List[TrainingWorker],
    ) -> None:
        if not workers:
            raise ClusterError("training needs at least one worker")
        self._sync = SyncTrainer(network, ps, workers)
        self._network = network
        self._ps = ps
        self._workers = workers

    def train(self, batches: List, steps: Optional[int] = None) -> TrainingResult:
        """Run until batches (or ``steps``) are exhausted, no barriers.

        Implementation note: with one clock per node, events must be
        processed in rough timestamp order or the (sequential) Python
        loop serializes concurrent workers through the PS clock.  Each
        cycle therefore issues all pulls, then all computes, then all
        pushes — the same interleaving SyncTrainer uses — but *without*
        the end-of-round barrier: a fast worker's clock runs ahead and it
        simply trains on staler weights, which is async semantics.
        """
        total = min(steps, len(batches)) if steps is not None else len(batches)
        declared = self._workers[0].declared_model_bytes
        clocks = [w.node.clock for w in self._workers] + [self._ps.node.clock]
        start = max(clock.now for clock in clocks)
        events_before = self._network.scheduler.events_processed
        losses: List[float] = []

        index = 0
        while index < total:
            cycle = []
            for worker in self._workers:
                if index >= total:
                    break
                cycle.append((worker, batches[index]))
                index += 1
            for worker, _ in cycle:
                conn = self._sync._connection(worker)
                pulled = encoding.decode(
                    conn.call("pull", b"", declared_response=declared)
                )
                worker.load_weights(decode_array_dict(pulled["weights"]))
            grads = []
            for worker, (images, labels) in cycle:
                gradients, loss = worker.compute_gradients(images, labels)
                losses.append(loss)
                grads.append((worker, gradients))
            for worker, gradients in grads:
                conn = self._sync._connection(worker)
                conn.call(
                    "push",
                    encoding.encode(
                        {
                            "gradients": encode_array_dict(gradients),
                            "declared_flops": 2 * declared // 4,
                        }
                    ),
                    declared_request=declared,
                )
            # No barrier: clocks drift apart exactly as async training's do.

        wall = max(clock.now for clock in clocks) - start
        return TrainingResult(
            steps=total,
            final_loss=float(np.mean(losses[-len(self._workers):]))
            if losses
            else float("nan"),
            wall_clock=wall,
            per_worker_time={w.name: w.node.clock.now for w in self._workers},
            simulated_events=self._network.scheduler.events_processed - events_before,
        )


class _PlainConnection:
    """Adapter giving RpcClient the SecureConnection.call signature."""

    def __init__(self, client: RpcClient, dst: str) -> None:
        self._client = client
        self._dst = dst

    def call(
        self,
        method: str,
        payload: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
    ) -> bytes:
        return self._client.call(
            self._dst,
            method,
            payload,
            declared_request=declared_request,
            declared_response=declared_response,
        )

    def begin_call(
        self,
        method: str,
        payload: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
    ) -> PendingRpc:
        return self._client.begin_call(
            self._dst,
            method,
            payload,
            declared_request=declared_request,
            declared_response=declared_response,
        )
