"""Parameter server + synchronous data-parallel training (Fig. 2, §5.4).

The distributed TensorFlow architecture the paper preserves: parameter
servers hold the model, workers pull weights, compute gradients on their
data shard, and push updates.  Both endpoints can run behind the network
shield (secure mode) or in cleartext (the "without network shield" and
native baselines of Fig. 8).

Synchronous rounds with per-node clocks: each worker's pull→compute→push
advances its own clock, the PS clock serializes the applies, and a
barrier ends the round — so adding workers shortens the round wall-clock
exactly as real synchronous data-parallelism does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.rpc import (
    RpcClient,
    RpcServer,
    SecureConnection,
    SecureRpcClient,
    SecureRpcServer,
)
from repro.cluster.worker import TrainingWorker
from repro.crypto import encoding
from repro.errors import ClusterError, PolicyError
from repro.runtime.net_shield import NetworkShield
from repro.tensor.arrays import decode_array_dict, encode_array_dict


class ParameterServer:
    """Holds master weights; applies pushed gradients with SGD."""

    def __init__(
        self,
        node: Node,
        address: str,
        network: Network,
        learning_rate: float,
        shield: Optional[NetworkShield] = None,
        allowed_peers: Optional[List[str]] = None,
    ) -> None:
        if learning_rate <= 0:
            raise ClusterError(f"learning rate must be positive: {learning_rate}")
        self.node = node
        self.address = address
        self.learning_rate = learning_rate
        self._weights: Dict[str, np.ndarray] = {}
        self._version = 0
        self._allowed = allowed_peers
        self.updates_applied = 0

        if shield is not None:
            self._server: RpcServer = SecureRpcServer(
                network, address, node, shield, require_client_cert=True
            )
        else:
            self._server = RpcServer(network, address, node)
        self._server.register("pull", self._handle_pull)
        self._server.register("push", self._handle_push)
        self._server.start()

    # ------------------------------------------------------------------

    def initialize(self, weights: Dict[str, np.ndarray]) -> None:
        self._weights = {k: np.array(v, dtype=np.float32) for k, v in weights.items()}
        self._version = 1

    @property
    def weights(self) -> Dict[str, np.ndarray]:
        return dict(self._weights)

    @property
    def version(self) -> int:
        return self._version

    def _check_peer(self, peer: Optional[str]) -> None:
        if self._allowed is not None:
            if peer is None or peer not in self._allowed:
                raise PolicyError(
                    f"peer {peer!r} is not an authorized training worker"
                )

    def _handle_pull(self, payload: bytes, peer: Optional[str]) -> bytes:
        self._check_peer(peer)
        if not self._weights:
            raise ClusterError("parameter server has no initialized weights")
        return encoding.encode(
            {"version": self._version, "weights": encode_array_dict(self._weights)}
        )

    def _handle_push(self, payload: bytes, peer: Optional[str]) -> bytes:
        self._check_peer(peer)
        body = encoding.decode(payload)
        gradients = decode_array_dict(body["gradients"])
        # Apply SGD on the PS node's clock (this is real PS work).
        flops = 0
        for name, grad in gradients.items():
            if name not in self._weights:
                raise ClusterError(f"gradient for unknown weight {name!r}")
            if grad.shape != self._weights[name].shape:
                raise ClusterError(
                    f"gradient shape {grad.shape} mismatches weight "
                    f"{self._weights[name].shape} for {name!r}"
                )
            self._weights[name] = (
                self._weights[name] - self.learning_rate * grad
            ).astype(np.float32)
            flops += 2 * grad.size
        declared_flops = body.get("declared_flops", flops)
        self.node.clock.advance(
            declared_flops / self.node.cost_model.flops_per_second_full_tf
        )
        self._version += 1
        self.updates_applied += 1
        return encoding.encode({"version": self._version})

    def stop(self) -> None:
        self._server.stop()


@dataclass
class TrainingResult:
    """Outcome of a synchronous training run."""

    steps: int
    final_loss: float
    wall_clock: float
    per_worker_time: Dict[str, float]


class SyncTrainer:
    """Drives synchronous data-parallel rounds over PS + workers."""

    def __init__(
        self,
        network: Network,
        ps: ParameterServer,
        workers: List[TrainingWorker],
    ) -> None:
        if not workers:
            raise ClusterError("training needs at least one worker")
        self._network = network
        self._ps = ps
        self._workers = workers
        self._connections: Dict[str, Union[SecureConnection, RpcClient]] = {}

    def _connection(self, worker: TrainingWorker):
        """A (possibly shielded) session from a worker to the PS."""
        if worker.name in self._connections:
            return self._connections[worker.name]
        if worker.shield is not None:
            client = SecureRpcClient(
                self._network, worker.address, worker.node, worker.shield
            )
            # The PS certificate subject is CAS-assigned
            # ("session/name-index"); authenticity comes from the trusted
            # root, so no exact-name pinning here.
            conn: Union[SecureConnection, RpcClient] = client.connect(
                self._ps.address, expected_server=None
            )
        else:
            conn = _PlainConnection(
                RpcClient(self._network, worker.address, worker.node),
                self._ps.address,
            )
        self._connections[worker.name] = conn
        return conn

    def train(self, batches: List, steps: Optional[int] = None) -> TrainingResult:
        """Run synchronous rounds until batches (or ``steps``) run out.

        Batches are dealt round-robin to workers; each round processes
        ``len(workers)`` batches in parallel.
        """
        total_steps = min(steps, len(batches)) if steps is not None else len(batches)
        clocks = [w.node.clock for w in self._workers] + [self._ps.node.clock]
        start = max(clock.now for clock in clocks)
        losses: List[float] = []

        declared = self._workers[0].declared_model_bytes

        index = 0
        while index < total_steps:
            round_workers = []
            for worker in self._workers:
                if index >= total_steps:
                    break
                round_workers.append((worker, batches[index]))
                index += 1

            # Phase 1: every worker pulls the current weights.  Pulls are
            # grouped before any compute so that the (cheap) PS handler
            # work does not artificially serialize the round — on a real
            # cluster the pulls overlap the same way.
            for worker, _ in round_workers:
                conn = self._connection(worker)
                pulled = encoding.decode(
                    conn.call("pull", b"", declared_response=declared)
                )
                worker.load_weights(decode_array_dict(pulled["weights"]))

            # Phase 2: gradient computation, in parallel across nodes
            # (each worker advances only its own node's clock).
            round_grads = []
            for worker, (images, labels) in round_workers:
                gradients, loss = worker.compute_gradients(images, labels)
                losses.append(loss)
                round_grads.append((worker, gradients))

            # Phase 3: pushes; the PS serializes the applies.
            for worker, gradients in round_grads:
                conn = self._connection(worker)
                push_payload = encoding.encode(
                    {
                        "gradients": encode_array_dict(gradients),
                        "declared_flops": 2 * declared // 4,
                    }
                )
                conn.call("push", push_payload, declared_request=declared)
            self._network.barrier(clocks)

        wall = max(clock.now for clock in clocks) - start
        return TrainingResult(
            steps=total_steps,
            final_loss=float(np.mean(losses[-len(self._workers):])) if losses else float("nan"),
            wall_clock=wall,
            per_worker_time={w.name: w.node.clock.now for w in self._workers},
        )


class ShardedParameterService:
    """Weights partitioned across several parameter servers (Fig. 2).

    Distributed TensorFlow shards variables across PS tasks so no single
    server's memory or network link bottlenecks the model.  Variables
    are assigned round-robin by sorted name; pulls/pushes fan out to the
    owning shard.
    """

    def __init__(self, shards: List[ParameterServer]) -> None:
        if not shards:
            raise ClusterError("sharded service needs at least one PS")
        self._shards = shards
        self._assignment: Dict[str, ParameterServer] = {}

    @property
    def shards(self) -> List[ParameterServer]:
        return list(self._shards)

    def initialize(self, weights: Dict[str, np.ndarray]) -> None:
        partitions: List[Dict[str, np.ndarray]] = [
            {} for _ in self._shards
        ]
        for index, name in enumerate(sorted(weights)):
            shard = self._shards[index % len(self._shards)]
            self._assignment[name] = shard
            partitions[index % len(self._shards)][name] = weights[name]
        for shard, partition in zip(self._shards, partitions):
            shard.initialize(partition)

    def shard_of(self, name: str) -> ParameterServer:
        if name not in self._assignment:
            raise ClusterError(f"no shard owns weight {name!r}")
        return self._assignment[name]

    @property
    def weights(self) -> Dict[str, np.ndarray]:
        merged: Dict[str, np.ndarray] = {}
        for shard in self._shards:
            merged.update(shard.weights)
        return merged

    def partition_gradients(
        self, gradients: Dict[str, np.ndarray]
    ) -> Dict[str, Dict[str, np.ndarray]]:
        """Group a gradient dict by owning shard address."""
        grouped: Dict[str, Dict[str, np.ndarray]] = {}
        for name, grad in gradients.items():
            address = self.shard_of(name).address
            grouped.setdefault(address, {})[name] = grad
        return grouped

    def stop(self) -> None:
        for shard in self._shards:
            shard.stop()


class AsyncTrainer:
    """Asynchronous (Hogwild-style) PS training: no round barrier.

    Each worker loops pull → compute → push at its own pace; the PS
    applies updates as they arrive, so fast workers are never blocked by
    stragglers, at the cost of gradient staleness.  This is distributed
    TensorFlow's between-graph asynchronous mode, included here to show
    the stateful-computing substrate supports both disciplines.
    """

    def __init__(
        self,
        network: Network,
        ps: ParameterServer,
        workers: List[TrainingWorker],
    ) -> None:
        if not workers:
            raise ClusterError("training needs at least one worker")
        self._sync = SyncTrainer(network, ps, workers)
        self._network = network
        self._ps = ps
        self._workers = workers

    def train(self, batches: List, steps: Optional[int] = None) -> TrainingResult:
        """Run until batches (or ``steps``) are exhausted, no barriers.

        Implementation note: with one clock per node, events must be
        processed in rough timestamp order or the (sequential) Python
        loop serializes concurrent workers through the PS clock.  Each
        cycle therefore issues all pulls, then all computes, then all
        pushes — the same interleaving SyncTrainer uses — but *without*
        the end-of-round barrier: a fast worker's clock runs ahead and it
        simply trains on staler weights, which is async semantics.
        """
        total = min(steps, len(batches)) if steps is not None else len(batches)
        declared = self._workers[0].declared_model_bytes
        clocks = [w.node.clock for w in self._workers] + [self._ps.node.clock]
        start = max(clock.now for clock in clocks)
        losses: List[float] = []

        index = 0
        while index < total:
            cycle = []
            for worker in self._workers:
                if index >= total:
                    break
                cycle.append((worker, batches[index]))
                index += 1
            for worker, _ in cycle:
                conn = self._sync._connection(worker)
                pulled = encoding.decode(
                    conn.call("pull", b"", declared_response=declared)
                )
                worker.load_weights(decode_array_dict(pulled["weights"]))
            grads = []
            for worker, (images, labels) in cycle:
                gradients, loss = worker.compute_gradients(images, labels)
                losses.append(loss)
                grads.append((worker, gradients))
            for worker, gradients in grads:
                conn = self._sync._connection(worker)
                conn.call(
                    "push",
                    encoding.encode(
                        {
                            "gradients": encode_array_dict(gradients),
                            "declared_flops": 2 * declared // 4,
                        }
                    ),
                    declared_request=declared,
                )
            # No barrier: clocks drift apart exactly as async training's do.

        wall = max(clock.now for clock in clocks) - start
        return TrainingResult(
            steps=total,
            final_loss=float(np.mean(losses[-len(self._workers):]))
            if losses
            else float("nan"),
            wall_clock=wall,
            per_worker_time={w.name: w.node.clock.now for w in self._workers},
        )


class _PlainConnection:
    """Adapter giving RpcClient the SecureConnection.call signature."""

    def __init__(self, client: RpcClient, dst: str) -> None:
        self._client = client
        self._dst = dst

    def call(
        self,
        method: str,
        payload: bytes,
        declared_request: Optional[int] = None,
        declared_response: Optional[int] = None,
    ) -> bytes:
        return self._client.call(
            self._dst,
            method,
            payload,
            declared_request=declared_request,
            declared_response=declared_response,
        )
